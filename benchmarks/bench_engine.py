"""Micro-benchmarks for the simulation engine's instrumentation overhead.

Guards the zero-observer fast path against regression: replaying a trace
with no observers must skip all ``RequestRecord``/``MoveEvent`` construction
and therefore beat the fully-observed replay.  Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine.py --benchmark-only

The ``observed`` variants attach a history observer (every record retained),
a bounded footprint-series observer, and a RAM device model — the heaviest
realistic instrumentation load.
"""

import time

import pytest

from benchmarks.bench_artifact import record_metric
from repro.allocators import FirstFitAllocator
from repro.core import CostObliviousReallocator
from repro.engine import (
    DeviceObserver,
    FootprintSeriesObserver,
    HistoryObserver,
    SimulationEngine,
)
from repro.storage.devices import MainMemoryDevice
from repro.workloads import UniformSizes, churn_trace

TRACE = churn_trace(4000, UniformSizes(1, 64), target_live=150, seed=101)

# Audited (the default): the indexed overlap check is cheap enough that the
# fast-path guard runs in the same configuration the experiments ship.
ALLOCATORS = [
    ("first-fit", FirstFitAllocator),
    ("cost-oblivious", lambda: CostObliviousReallocator(epsilon=0.25)),
]


def _full_observers():
    return [
        HistoryObserver(),
        FootprintSeriesObserver(max_points=256),
        DeviceObserver(MainMemoryDevice()),
    ]


@pytest.mark.parametrize("name,factory", ALLOCATORS, ids=[n for n, _ in ALLOCATORS])
@pytest.mark.parametrize("mode", ["zero-observers", "fully-observed"])
def test_engine_replay_overhead(benchmark, name, factory, mode):
    def run_once():
        allocator = factory()
        observers = _full_observers() if mode == "fully-observed" else []
        SimulationEngine(allocator, observers).run(TRACE)
        return allocator

    allocator = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert allocator.stats.requests == len(TRACE)


@pytest.mark.parametrize("name,factory", ALLOCATORS, ids=[n for n, _ in ALLOCATORS])
def test_zero_observer_run_is_not_slower_than_fully_observed(name, factory):
    """The enforced guard: if the zero-observer replay ever stops being at
    least as fast as the fully-observed one, the fast path has regressed.
    In practice the gap is ~2x; the rounds are interleaved (so a load spike
    on a shared CI runner hits both variants) and best-of-5 is compared
    with generous slack, which keeps the assertion far from timer noise."""

    def timed(observer_factory):
        allocator = factory()
        engine = SimulationEngine(allocator, observer_factory())
        started = time.perf_counter()
        engine.run(TRACE)
        return time.perf_counter() - started

    bare = float("inf")
    observed = float("inf")
    for _ in range(5):
        bare = min(bare, timed(list))
        observed = min(observed, timed(_full_observers))
    record_metric("engine", f"{name}_zero_observer_best_seconds", round(bare, 6), "seconds")
    record_metric("engine", f"{name}_fully_observed_best_seconds", round(observed, 6), "seconds")
    assert bare <= observed * 1.25, (
        f"zero-observer replay ({bare:.4f}s) is not faster than the "
        f"fully-observed replay ({observed:.4f}s) for {name}"
    )


@pytest.mark.parametrize("name,factory", ALLOCATORS, ids=[n for n, _ in ALLOCATORS])
def test_disabled_telemetry_overhead_within_2_percent(name, factory):
    """The ISSUE guard: with telemetry importable but *disabled*, the
    zero-observer engine replay must stay within 2% of replaying the raw
    allocator directly (no engine wrapper).  The disabled path is a handful
    of attribute-is-None checks and shared no-op spans — constant per run,
    not per request.  Single timings of a ~50ms replay swing several percent
    on a loaded runner, so the assertion is on the *minimum paired ratio*
    over 9 back-to-back rounds: noise moves individual ratios both ways,
    but only genuine per-request overhead can hold every pair above 2%."""
    from repro.obs import Telemetry, use_telemetry

    def engine_run() -> float:
        allocator = factory()
        engine = SimulationEngine(allocator, [])
        started = time.perf_counter()
        engine.run(TRACE)
        return time.perf_counter() - started

    def raw_run() -> float:
        allocator = factory()
        started = time.perf_counter()
        allocator.run(TRACE)
        if hasattr(allocator, "finish_pending_work"):
            allocator.finish_pending_work()
        return time.perf_counter() - started

    # Force telemetry off for the measurement even if REPRO_TELEMETRY is
    # set in the environment; the allocators are constructed inside the
    # block so their counter bindings see the disabled session.
    with use_telemetry(Telemetry()):
        best_ratio = float("inf")
        engine_best = float("inf")
        raw_best = float("inf")
        for _ in range(9):
            raw = raw_run()
            measured = engine_run()
            best_ratio = min(best_ratio, measured / raw)
            raw_best = min(raw_best, raw)
            engine_best = min(engine_best, measured)
    record_metric(
        "engine", f"{name}_telemetry_off_engine_seconds", round(engine_best, 6), "seconds"
    )
    record_metric(
        "engine", f"{name}_raw_replay_seconds", round(raw_best, 6), "seconds"
    )
    record_metric(
        "engine", f"{name}_telemetry_off_best_overhead_ratio", round(best_ratio, 4), "ratio"
    )
    assert best_ratio <= 1.02, (
        f"engine replay with telemetry disabled is more than 2% slower than "
        f"the raw allocator replay in every one of 9 paired rounds for "
        f"{name} (best ratio {best_ratio:.4f})"
    )


@pytest.mark.parametrize("name,factory", ALLOCATORS, ids=[n for n, _ in ALLOCATORS])
def test_zero_observer_stats_match_fully_observed(name, factory):
    """Correctness guard: both paths must produce identical aggregates."""
    bare = factory()
    SimulationEngine(bare, []).run(TRACE)
    observed = factory()
    SimulationEngine(observed, _full_observers()).run(TRACE)
    assert bare.stats.max_footprint_ratio == observed.stats.max_footprint_ratio
    assert bare.stats.total_moved_volume == observed.stats.total_moved_volume
    assert bare.stats.allocated_sizes == observed.stats.allocated_sizes
    assert bare.stats.moved_sizes == observed.stats.moved_sizes
