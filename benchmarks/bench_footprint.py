"""E1 — footprint competitiveness vs epsilon (Theorem 2.1, Lemma 2.5)."""

from benchmarks.conftest import run_and_print


def test_e1_footprint_vs_epsilon(benchmark, quick_mode):
    result = run_and_print(benchmark, "E1", quick_mode)
    for row in result.rows:
        _variant, _eps, bound, footprint_ratio, reserved_ratio, _moves = row
        assert reserved_ratio <= bound + 1e-9
        assert footprint_ratio <= bound + 1e-9
