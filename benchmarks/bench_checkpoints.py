"""E5 — checkpoints needed per buffer flush (Lemma 3.3)."""

from benchmarks.conftest import run_and_print


def test_e5_checkpoints_per_flush(benchmark, quick_mode):
    result = run_and_print(benchmark, "E5", quick_mode)
    for row in result.rows:
        assert row[3] < 200  # max checkpoints per request stays far below object counts
