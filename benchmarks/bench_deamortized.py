"""E7 — worst-case per-update reallocation of the deamortized variant (Lemma 3.6)."""

from benchmarks.conftest import run_and_print


def test_e7_worst_case_update(benchmark, quick_mode):
    result = run_and_print(benchmark, "E7", quick_mode)
    assert result.data["deamortized (Sec. 3.3)"]["violations"] == 0
