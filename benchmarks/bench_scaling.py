"""E9 — throughput and moved volume as traces grow."""

from benchmarks.conftest import run_and_print


def test_e9_scaling(benchmark, quick_mode):
    result = run_and_print(benchmark, "E9", quick_mode)
    assert len({row[0] for row in result.rows}) == 3
