"""Shared helpers for the benchmark suite.

Every experiment benchmark runs its experiment exactly once under
``pytest-benchmark`` (timing the whole table regeneration) and prints the
resulting table, so ``pytest benchmarks/ --benchmark-only`` both times the
harness and emits the tables recorded in EXPERIMENTS.md.

Set ``REPRO_BENCH_FULL=1`` to regenerate the tables with full-size traces.

Benches record their headline numbers via
:mod:`benchmarks.bench_artifact`; at session end one ``BENCH_<name>.json``
per bench is written (to ``REPRO_BENCH_ARTIFACT_DIR``, default the current
directory) so CI can upload machine-readable results.
"""

import os
import sys
import time

import pytest

from benchmarks.bench_artifact import record_metric, write_artifacts


@pytest.fixture(scope="session")
def quick_mode() -> bool:
    """Whether benchmarks should use the quick trace sizes (the default)."""
    return os.environ.get("REPRO_BENCH_FULL", "") != "1"


def _caller_bench_name(depth: int = 2) -> str:
    """The bench name of the module ``depth`` frames up (``bench_`` stripped)."""
    module = sys._getframe(depth).f_globals.get("__name__", "bench")
    name = module.rsplit(".", 1)[-1]
    return name[len("bench_"):] if name.startswith("bench_") else name


def run_and_print(benchmark, experiment_id: str, quick: bool):
    """Run one registered experiment under the benchmark timer and print it."""
    from repro.harness import run_experiment

    started = time.perf_counter()
    result = benchmark.pedantic(
        run_experiment, args=(experiment_id,), kwargs={"quick": quick}, rounds=1, iterations=1
    )
    record_metric(
        _caller_bench_name(),
        f"{experiment_id.lower()}_elapsed_seconds",
        round(time.perf_counter() - started, 6),
        "seconds",
    )
    print()
    print(result.to_text())
    return result


def pytest_sessionfinish(session, exitstatus):
    """Flush the recorded bench metrics to BENCH_<name>.json artifacts."""
    for path in write_artifacts():
        print(f"bench artifact: {path}")
