"""Shared helpers for the benchmark suite.

Every experiment benchmark runs its experiment exactly once under
``pytest-benchmark`` (timing the whole table regeneration) and prints the
resulting table, so ``pytest benchmarks/ --benchmark-only`` both times the
harness and emits the tables recorded in EXPERIMENTS.md.

Set ``REPRO_BENCH_FULL=1`` to regenerate the tables with full-size traces.
"""

import os

import pytest


@pytest.fixture(scope="session")
def quick_mode() -> bool:
    """Whether benchmarks should use the quick trace sizes (the default)."""
    return os.environ.get("REPRO_BENCH_FULL", "") != "1"


def run_and_print(benchmark, experiment_id: str, quick: bool):
    """Run one registered experiment under the benchmark timer and print it."""
    from repro.harness import run_experiment

    result = benchmark.pedantic(
        run_experiment, args=(experiment_id,), kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    return result
