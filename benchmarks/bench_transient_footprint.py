"""E6 — footprint during flushes stays (1+O(eps))V + O(Delta) (Lemmas 3.1, 3.5)."""

from benchmarks.conftest import run_and_print


def test_e6_transient_footprint(benchmark, quick_mode):
    result = run_and_print(benchmark, "E6", quick_mode)
    assert all(row[-1] is True for row in result.rows)
