"""Micro-benchmarks: raw request throughput of each allocator.

Unlike the experiment benchmarks (which time a whole table regeneration once),
these use pytest-benchmark's statistical timing on a fixed churn trace so the
per-request overhead of the different algorithms can be compared run to run.

All contenders run **audited** (the default): overlap auditing is an indexed
O(log n) probe per placement, so these numbers track the configuration the
experiments actually ship.

Two tiers: the default ``small`` trace (120 live objects) measures constant
factors; ``REPRO_BENCH_FULL=1`` adds a ``large`` tier (10k live objects)
whose per-request times surface scaling regressions — any allocator whose
per-request cost grows with the live set shows up as a large/small time
ratio far above the other contenders'.
"""

import os

import pytest

from repro.allocators import (
    BestFitAllocator,
    BuddyAllocator,
    FirstFitAllocator,
    LoggingCompactingReallocator,
    SizeClassGapReallocator,
)
from repro.core import (
    CheckpointedReallocator,
    CostObliviousReallocator,
    DeamortizedReallocator,
)
from repro.workloads import UniformSizes, churn_trace

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

TRACES = {"small": churn_trace(1200, UniformSizes(1, 64), target_live=120, seed=101)}
if FULL:
    TRACES["large"] = churn_trace(30_000, UniformSizes(1, 64), target_live=10_000, seed=202)

CONTENDERS = [
    ("first-fit", FirstFitAllocator),
    ("best-fit", BestFitAllocator),
    ("buddy", BuddyAllocator),
    ("logging-compact", LoggingCompactingReallocator),
    ("size-class-gap", SizeClassGapReallocator),
    ("cost-oblivious", lambda: CostObliviousReallocator(epsilon=0.25)),
    ("checkpointed", lambda: CheckpointedReallocator(epsilon=0.25)),
    ("deamortized", lambda: DeamortizedReallocator(epsilon=0.25)),
]

TIERS = [
    "small",
    pytest.param(
        "large",
        marks=pytest.mark.skipif(not FULL, reason="set REPRO_BENCH_FULL=1 for the 10k-live tier"),
    ),
]


@pytest.mark.parametrize("tier", TIERS)
@pytest.mark.parametrize("name,factory", CONTENDERS, ids=[name for name, _ in CONTENDERS])
def test_churn_throughput(benchmark, tier, name, factory):
    trace = TRACES[tier]

    def run_once():
        allocator = factory()
        allocator.run(trace)
        return allocator

    allocator = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert allocator.stats.requests == len(trace)
