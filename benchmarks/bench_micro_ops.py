"""Micro-benchmarks: raw request throughput of each allocator.

Unlike the experiment benchmarks (which time a whole table regeneration once),
these use pytest-benchmark's statistical timing on a fixed churn trace so the
per-request overhead of the different algorithms can be compared run to run.
"""

import pytest

from repro.allocators import (
    BestFitAllocator,
    BuddyAllocator,
    FirstFitAllocator,
    LoggingCompactingReallocator,
    SizeClassGapReallocator,
)
from repro.core import (
    CheckpointedReallocator,
    CostObliviousReallocator,
    DeamortizedReallocator,
)
from repro.workloads import UniformSizes, churn_trace

TRACE = churn_trace(1200, UniformSizes(1, 64), target_live=120, seed=101)

CONTENDERS = [
    ("first-fit", lambda: FirstFitAllocator(audit=False)),
    ("best-fit", lambda: BestFitAllocator(audit=False)),
    ("buddy", lambda: BuddyAllocator(audit=False)),
    ("logging-compact", lambda: LoggingCompactingReallocator(audit=False)),
    ("size-class-gap", lambda: SizeClassGapReallocator(audit=False)),
    ("cost-oblivious", lambda: CostObliviousReallocator(epsilon=0.25, audit=False)),
    ("checkpointed", lambda: CheckpointedReallocator(epsilon=0.25, audit=False)),
    ("deamortized", lambda: DeamortizedReallocator(epsilon=0.25, audit=False)),
]


@pytest.mark.parametrize("name,factory", CONTENDERS, ids=[name for name, _ in CONTENDERS])
def test_churn_throughput(benchmark, name, factory):
    def run_once():
        allocator = factory()
        allocator.run(TRACE)
        return allocator

    allocator = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert allocator.stats.requests == len(TRACE)
