"""F1–F4 — the paper's illustrative figures regenerated from live structures."""

import pytest

from benchmarks.conftest import run_and_print


@pytest.mark.parametrize("figure", ["F1", "F2", "F3", "F4"])
def test_figures(benchmark, quick_mode, figure):
    result = run_and_print(benchmark, figure, quick_mode)
    assert result.rows
