"""The pre-block-index v2 decoder, preserved as a benchmark baseline.

This is the reader `repro.workloads.binary` shipped before the codec
raw-speed pass (bounded-buffer ``_RecordStream``, per-field method calls),
kept verbatim minus telemetry.  ``bench_trace_io`` decodes the same v2 file
through this module and through the live codec and asserts the live one is
at least 25% faster — a machine-independent throughput guard, since both
sides run on the same interpreter and hardware.

Not a public API; nothing outside the benchmarks should import this.
"""

import json
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator

from repro.workloads.base import Request

MAGIC = b"\x93RPTRACE"
LEGACY_VERSION = 2

_FLAG_ZLIB = 0x01

_TAG_END = 0x00
_TAG_INSERT_NEW = 0x01
_TAG_INSERT_REF = 0x02
_TAG_DELETE_REF = 0x03
_TAG_DELETE_NEW = 0x04

_CHUNK = 64 * 1024


class LegacyFormatError(ValueError):
    """A trace file is malformed: bad magic, truncated, or corrupt."""


class _RecordStream:
    """Bounded-buffer reader over a (possibly zlib-compressed) record body."""

    def __init__(self, handle, compressed, path):
        self._handle = handle
        self._path = path
        self._decompressor = zlib.decompressobj() if compressed else None
        self._buffer = b""
        self._pos = 0
        self._input_done = False

    def _fill(self, need):
        while len(self._buffer) - self._pos < need and not self._input_done:
            chunk = self._handle.read(_CHUNK)
            if not chunk:
                self._input_done = True
                if self._decompressor is not None:
                    try:
                        tail = self._decompressor.flush()
                    except zlib.error as error:
                        raise LegacyFormatError(
                            f"{self._path}: truncated or corrupt zlib record body ({error})"
                        ) from error
                    if not self._decompressor.eof:
                        raise LegacyFormatError(
                            f"{self._path}: truncated zlib record body "
                            "(compressed stream ends mid-block)"
                        )
                    if tail:
                        self._buffer = self._buffer[self._pos:] + tail
                        self._pos = 0
                break
            if self._decompressor is not None:
                try:
                    chunk = self._decompressor.decompress(chunk)
                except zlib.error as error:
                    raise LegacyFormatError(
                        f"{self._path}: corrupt zlib record body ({error})"
                    ) from error
            self._buffer = self._buffer[self._pos:] + chunk
            self._pos = 0

    def at_eof(self):
        self._fill(1)
        if len(self._buffer) - self._pos >= 1:
            return False
        if self._decompressor is not None and self._decompressor.unused_data:
            raise LegacyFormatError(
                f"{self._path}: trailing data after the compressed record body"
            )
        return True

    def read_exact(self, count, what):
        self._fill(count)
        if len(self._buffer) - self._pos < count:
            raise LegacyFormatError(
                f"{self._path}: truncated trace file (unexpected end of data "
                f"while reading {what})"
            )
        start = self._pos
        self._pos += count
        return self._buffer[start:self._pos]

    def read_varint(self, what):
        value = 0
        shift = 0
        while True:
            byte = self.read_exact(1, what)[0]
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 63:
                raise LegacyFormatError(
                    f"{self._path}: corrupt varint while reading {what} (over 9 bytes)"
                )


@dataclass
class LegacyHeader:
    version: int
    compressed: bool
    label: str
    metadata: Dict[str, Any] = field(default_factory=dict)


def _read_exact_from(handle, count, what, path):
    data = handle.read(count)
    if len(data) != count:
        raise LegacyFormatError(
            f"{path}: truncated trace file (unexpected end of data while reading {what})"
        )
    return data


def _read_varint_from(handle, what, path):
    value = 0
    shift = 0
    while True:
        byte = _read_exact_from(handle, 1, what, path)[0]
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value
        shift += 7
        if shift > 63:
            raise LegacyFormatError(
                f"{path}: corrupt varint while reading {what} (over 9 bytes)"
            )


def read_legacy_header(handle, path) -> LegacyHeader:
    magic = handle.read(len(MAGIC))
    if magic != MAGIC:
        raise LegacyFormatError(f"{path}: bad magic {magic!r}; not a v2 binary trace")
    version = _read_varint_from(handle, "format version", path)
    if version != LEGACY_VERSION:
        raise LegacyFormatError(
            f"{path}: unsupported binary trace version {version}; "
            f"this reader knows v{LEGACY_VERSION}"
        )
    flags = _read_exact_from(handle, 1, "flags", path)[0]
    if flags & ~_FLAG_ZLIB:
        raise LegacyFormatError(f"{path}: unknown flag bits 0x{flags:02x} in v2 header")
    header_length = _read_varint_from(handle, "header length", path)
    header_bytes = _read_exact_from(handle, header_length, "JSON header block", path)
    header = json.loads(header_bytes.decode("utf-8"))
    return LegacyHeader(
        version=version,
        compressed=bool(flags & _FLAG_ZLIB),
        label=str(header.get("label", "")),
        metadata=header.get("meta", {}),
    )


def iter_legacy_records(handle, header: LegacyHeader, path) -> Iterator[Request]:
    stream = _RecordStream(handle, compressed=header.compressed, path=path)
    bound: Dict[int, str] = {}
    free_ids: list = []
    next_id = 0
    previous_name = b""
    count = 0

    def read_name():
        nonlocal previous_name
        prefix_length = stream.read_varint("name prefix length")
        if prefix_length > len(previous_name):
            raise LegacyFormatError(
                f"{path}: record {count}: name prefix length {prefix_length} exceeds "
                f"the previous name's {len(previous_name)} bytes"
            )
        suffix_length = stream.read_varint("name suffix length")
        raw = previous_name[:prefix_length] + stream.read_exact(suffix_length, "name bytes")
        previous_name = raw
        return raw.decode("utf-8")

    def ref_name():
        name_id = stream.read_varint("name id")
        try:
            return bound[name_id]
        except KeyError:
            raise LegacyFormatError(
                f"{path}: record {count}: name id {name_id} references an unbound name "
                "(never inserted, or already deleted)"
            ) from None

    while True:
        if stream.at_eof():
            raise LegacyFormatError(
                f"{path}: truncated trace file (end of data before the END trailer; "
                f"{count} record(s) read)"
            )
        tag = stream.read_exact(1, "record tag")[0]
        if tag == _TAG_END:
            declared = stream.read_varint("END trailer record count")
            if declared != count:
                raise LegacyFormatError(
                    f"{path}: record count mismatch: END trailer declares {declared}, "
                    f"read {count}"
                )
            if not stream.at_eof():
                raise LegacyFormatError(f"{path}: trailing data after the END trailer")
            return
        count += 1
        if tag == _TAG_INSERT_NEW:
            name = read_name()
            if free_ids:
                name_id = free_ids.pop()
            else:
                name_id = next_id
                next_id += 1
            bound[name_id] = name
            yield Request.insert(name, stream.read_varint("insert size"))
        elif tag == _TAG_INSERT_REF:
            name = ref_name()
            yield Request.insert(name, stream.read_varint("insert size"))
        elif tag == _TAG_DELETE_REF:
            name_id = stream.read_varint("name id")
            try:
                name = bound.pop(name_id)
            except KeyError:
                raise LegacyFormatError(
                    f"{path}: record {count}: name id {name_id} references an unbound "
                    "name (never inserted, or already deleted)"
                ) from None
            free_ids.append(name_id)
            yield Request.delete(name)
        elif tag == _TAG_DELETE_NEW:
            yield Request.delete(read_name())
        else:
            raise LegacyFormatError(
                f"{path}: record {count}: unknown record tag 0x{tag:02x}"
            )


def iter_legacy_trace(path) -> Iterator[Request]:
    """Stream a plain (non-gzip) v2 file through the legacy decoder."""
    with open(path, "rb") as handle:
        header = read_legacy_header(handle, path)
        yield from iter_legacy_records(handle, header, path)
