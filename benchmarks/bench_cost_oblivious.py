"""E2 — cost obliviousness across cost functions (Theorem 2.1, Lemma 2.6)."""

from benchmarks.conftest import run_and_print


def test_e2_cost_obliviousness(benchmark, quick_mode):
    result = run_and_print(benchmark, "E2", quick_mode)
    for row in result.rows:
        for ratio in row[1:]:
            assert 0 < ratio < 60
