"""Trace I/O benchmarks: v1-vs-v2 file size, load throughput, and the
streaming peak-memory guard.

Two hard guards run on every invocation (no ``--benchmark-only`` needed):

* a synthetic churn trace saved as compressed v2 must be at most 25% of its
  v1 text size, and
* streaming replay through :class:`TraceFileSource` must complete with a
  small fraction of the peak memory that materialising the :class:`Trace`
  costs — i.e. the replay provably never holds the trace.

The default trace is 200k requests so CI stays fast; set
``REPRO_BENCH_FULL=1`` for the 1M-request version of the acceptance run::

    REPRO_BENCH_FULL=1 PYTHONPATH=src python -m pytest benchmarks/bench_trace_io.py -q
"""

import os
import tracemalloc

import pytest

from benchmarks.bench_artifact import record_metric
from repro.allocators import FirstFitAllocator
from repro.campaign import analytics_result, analyze_trace
from repro.engine import SimulationEngine
from repro.workloads import (
    TraceFileSource,
    UniformSizes,
    churn_trace,
    iter_trace,
    load_trace,
    save_trace,
)

REQUESTS = 1_000_000 if os.environ.get("REPRO_BENCH_FULL", "") == "1" else 200_000


@pytest.fixture(scope="module")
def trace_files(tmp_path_factory):
    """The benchmark trace saved once in every format."""
    base = tmp_path_factory.mktemp("traceio")
    trace = churn_trace(REQUESTS, UniformSizes(1, 64), target_live=400, seed=77)
    trace.metadata["seed"] = 77
    paths = {
        "v1": base / "churn.v1",
        "v2": base / "churn.v2",
        "v2z": base / "churn.v2z",
    }
    save_trace(trace, paths["v1"], version=1)
    save_trace(trace, paths["v2"], version=2)
    save_trace(trace, paths["v2z"], version=2, compress=True)
    return {"trace": trace, "paths": paths}


def test_v2_compressed_is_quarter_of_v1_size(trace_files):
    """The acceptance guard: compressed v2 <= 25% of the v1 text size."""
    sizes = {tag: os.path.getsize(path) for tag, path in trace_files["paths"].items()}
    print(
        f"\n{REQUESTS} requests: v1={sizes['v1']} bytes, v2={sizes['v2']} bytes "
        f"({sizes['v2'] / sizes['v1']:.1%}), v2z={sizes['v2z']} bytes "
        f"({sizes['v2z'] / sizes['v1']:.1%})"
    )
    record_metric("trace_io", "v1_bytes", sizes["v1"], "bytes")
    record_metric("trace_io", "v2_bytes", sizes["v2"], "bytes")
    record_metric("trace_io", "v2z_bytes", sizes["v2z"], "bytes")
    record_metric(
        "trace_io", "v2z_over_v1_ratio", round(sizes["v2z"] / sizes["v1"], 4), "ratio"
    )
    assert sizes["v2"] < sizes["v1"], "uncompressed v2 must already beat the text format"
    assert sizes["v2z"] <= 0.25 * sizes["v1"], (
        f"compressed v2 is {sizes['v2z'] / sizes['v1']:.1%} of v1 "
        f"({sizes['v2z']} vs {sizes['v1']} bytes); the format regressed past the "
        "25% budget"
    )


@pytest.mark.parametrize("tag", ["v1", "v2", "v2z"])
def test_load_throughput(benchmark, trace_files, tag):
    """Full materialising load, timed per format."""
    path = trace_files["paths"][tag]

    loaded = benchmark.pedantic(load_trace, args=(path,), rounds=1, iterations=1)
    assert len(loaded) == REQUESTS


@pytest.mark.parametrize("tag", ["v1", "v2z"])
def test_stream_throughput(benchmark, trace_files, tag):
    """Streaming scan (no materialisation), timed per format."""
    path = trace_files["paths"][tag]

    def scan():
        return sum(1 for _ in iter_trace(path))

    assert benchmark.pedantic(scan, rounds=1, iterations=1) == REQUESTS


def test_streaming_analytics_matches_materialised_within_memory_budget(trace_files):
    """The `repro trace analyze` guard: streaming analytics over a
    TraceFileSource must render byte-identical tables to the materialised
    load-then-analyze path at a small fraction of its peak memory."""
    path = trace_files["paths"]["v2"]

    tracemalloc.start()
    materialised = analyze_trace(load_trace(path))
    _, materialised_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    tracemalloc.start()
    streamed = analyze_trace(TraceFileSource(path))
    _, streaming_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    print(
        f"\npeak memory analyzing {REQUESTS} requests: "
        f"materialised={materialised_peak // 1024} KiB, "
        f"streaming={streaming_peak // 1024} KiB "
        f"({streaming_peak / materialised_peak:.1%})"
    )
    record_metric("trace_io", "materialised_peak_bytes", materialised_peak, "bytes")
    record_metric("trace_io", "streaming_peak_bytes", streaming_peak, "bytes")
    assert streamed == materialised
    assert analytics_result(streamed).to_text() == analytics_result(materialised).to_text()
    assert streaming_peak <= materialised_peak * 0.2, (
        f"streaming analytics peaked at {streaming_peak} bytes vs {materialised_peak} "
        "for the materialised path; the analyzer is buffering per-request state "
        "somewhere"
    )


def test_streaming_replay_never_materialises_the_trace(trace_files):
    """The peak-memory guard: replaying the v2 file through a streaming
    TraceFileSource must cost a small fraction of what load_trace costs,
    which is only possible if the replay never holds the request list."""
    path = trace_files["paths"]["v2z"]

    tracemalloc.start()
    trace = load_trace(path)
    _, materialised_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert len(trace) == REQUESTS
    del trace

    allocator = FirstFitAllocator()  # audited: the index adds O(live set) only
    tracemalloc.start()
    run = SimulationEngine(allocator).run(TraceFileSource(path))
    _, streaming_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    print(
        f"\npeak memory replaying {REQUESTS} requests: "
        f"materialised={materialised_peak // 1024} KiB, "
        f"streaming={streaming_peak // 1024} KiB "
        f"({streaming_peak / materialised_peak:.1%})"
    )
    assert run.requests == REQUESTS
    assert streaming_peak <= materialised_peak * 0.2, (
        f"streaming replay peaked at {streaming_peak} bytes vs {materialised_peak} "
        "for the materialised trace; the pipeline is buffering the trace somewhere"
    )
