"""Trace I/O benchmarks: file sizes, decode throughput, sharded replay, and
the streaming peak-memory guard.

Hard guards that run on every invocation (no ``--benchmark-only`` needed):

* a synthetic churn trace saved as compressed v2 must be at most 25% of its
  v1 text size;
* the block-indexed v3 encoding must stay within 110% of the v2 size;
* the live v2 decoder must be at least 25% faster than the pre-optimisation
  codec preserved in :mod:`benchmarks.legacy_codec` (same file, same
  machine, so the guard is machine-independent);
* a sharded ``--jobs`` analytics pass must be byte-identical to the serial
  one (the >= 2x speedup assertion additionally needs ``REPRO_BENCH_FULL=1``
  and at least four CPUs — fork/merge overhead swamps the small CI trace);
* streaming replay through :class:`TraceFileSource` must complete with a
  small fraction of the peak memory that materialising the :class:`Trace`
  costs — i.e. the replay provably never holds the trace.

The default trace is 200k requests so CI stays fast; set
``REPRO_BENCH_FULL=1`` for the 1M-request version of the acceptance run::

    REPRO_BENCH_FULL=1 PYTHONPATH=src python -m pytest benchmarks/bench_trace_io.py -q
"""

import os
import time
import tracemalloc

import pytest

from benchmarks.bench_artifact import record_metric
from benchmarks.legacy_codec import iter_legacy_trace
from repro.allocators import FirstFitAllocator
from repro.campaign import analytics_result, analyze_trace
from repro.engine import SimulationEngine, analyze_trace_parallel
from repro.engine.analytics import TraceAnalyticsObserver
from repro.workloads import (
    TraceFileSource,
    UniformSizes,
    churn_trace,
    iter_trace,
    load_trace,
    save_trace,
)

REQUESTS = 1_000_000 if os.environ.get("REPRO_BENCH_FULL", "") == "1" else 200_000


@pytest.fixture(scope="module")
def trace_files(tmp_path_factory):
    """The benchmark trace saved once in every format."""
    base = tmp_path_factory.mktemp("traceio")
    trace = churn_trace(REQUESTS, UniformSizes(1, 64), target_live=400, seed=77)
    trace.metadata["seed"] = 77
    paths = {
        "v1": base / "churn.v1",
        "v2": base / "churn.v2",
        "v2z": base / "churn.v2z",
        "v3": base / "churn.v3",
        "v3z": base / "churn.v3z",
    }
    save_trace(trace, paths["v1"], version=1)
    save_trace(trace, paths["v2"], version=2)
    save_trace(trace, paths["v2z"], version=2, compress=True)
    save_trace(trace, paths["v3"], version=3)
    save_trace(trace, paths["v3z"], version=3, compress=True)
    return {"trace": trace, "paths": paths}


def test_v2_compressed_is_quarter_of_v1_size(trace_files):
    """The acceptance guard: compressed v2 <= 25% of the v1 text size."""
    sizes = {tag: os.path.getsize(path) for tag, path in trace_files["paths"].items()}
    print(
        f"\n{REQUESTS} requests: v1={sizes['v1']} bytes, v2={sizes['v2']} bytes "
        f"({sizes['v2'] / sizes['v1']:.1%}), v2z={sizes['v2z']} bytes "
        f"({sizes['v2z'] / sizes['v1']:.1%})"
    )
    record_metric("trace_io", "v1_bytes", sizes["v1"], "bytes")
    record_metric("trace_io", "v2_bytes", sizes["v2"], "bytes")
    record_metric("trace_io", "v2z_bytes", sizes["v2z"], "bytes")
    record_metric(
        "trace_io", "v2z_over_v1_ratio", round(sizes["v2z"] / sizes["v1"], 4), "ratio"
    )
    assert sizes["v2"] < sizes["v1"], "uncompressed v2 must already beat the text format"
    assert sizes["v2z"] <= 0.25 * sizes["v1"], (
        f"compressed v2 is {sizes['v2z'] / sizes['v1']:.1%} of v1 "
        f"({sizes['v2z']} vs {sizes['v1']} bytes); the format regressed past the "
        "25% budget"
    )


def test_v3_within_size_budget_of_v2(trace_files):
    """The block index (snapshots + footer) must cost at most 10% over v2."""
    v2 = os.path.getsize(trace_files["paths"]["v2"])
    v3 = os.path.getsize(trace_files["paths"]["v3"])
    print(f"\n{REQUESTS} requests: v2={v2} bytes, v3={v3} bytes ({v3 / v2:.1%})")
    record_metric("trace_io", "v3_bytes", v3, "bytes")
    record_metric("trace_io", "v3_over_v2_ratio", round(v3 / v2, 4), "ratio")
    assert v3 <= 1.10 * v2, (
        f"v3 is {v3 / v2:.1%} of the v2 size ({v3} vs {v2} bytes); the block "
        "index overhead regressed past the 110% budget"
    )


@pytest.mark.parametrize("tag", ["v1", "v2", "v2z"])
def test_load_throughput(benchmark, trace_files, tag):
    """Full materialising load, timed per format."""
    path = trace_files["paths"][tag]

    loaded = benchmark.pedantic(load_trace, args=(path,), rounds=1, iterations=1)
    assert len(loaded) == REQUESTS


@pytest.mark.parametrize("tag", ["v1", "v2z", "v3", "v3z"])
def test_stream_throughput(benchmark, trace_files, tag):
    """Streaming scan (no materialisation), timed per format."""
    path = trace_files["paths"][tag]

    def scan():
        return sum(1 for _ in iter_trace(path))

    assert benchmark.pedantic(scan, rounds=1, iterations=1) == REQUESTS


def _best_scan_seconds(scan, rounds=3):
    """Best-of-N wall time of ``scan()`` (min damps scheduler noise)."""
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        count = scan()
        best = min(best, time.perf_counter() - started)
        assert count == REQUESTS
    return best


def test_decode_throughput_beats_legacy_codec(trace_files):
    """The codec guard: the live v2 decoder must be >= 1.25x the pre-PR one.

    Both decoders scan the same uncompressed v2 file on the same machine in
    the same process, so the ratio is hardware-independent; an absolute
    requests/sec figure is recorded for the artifact but never asserted.
    """
    path = trace_files["paths"]["v2"]
    legacy = _best_scan_seconds(lambda: sum(1 for _ in iter_legacy_trace(path)))
    live = _best_scan_seconds(lambda: sum(1 for _ in iter_trace(path)))
    speedup = legacy / live
    print(
        f"\nserial v2 decode of {REQUESTS} requests: legacy={REQUESTS / legacy:,.0f} req/s, "
        f"live={REQUESTS / live:,.0f} req/s ({speedup:.2f}x)"
    )
    record_metric("trace_io", "decode_requests_per_sec", round(REQUESTS / live), "req/s")
    record_metric(
        "trace_io", "decode_legacy_requests_per_sec", round(REQUESTS / legacy), "req/s"
    )
    record_metric("trace_io", "decode_speedup_vs_legacy", round(speedup, 3), "ratio")
    assert speedup >= 1.25, (
        f"the live decoder is only {speedup:.2f}x the legacy codec "
        "(guard: >= 1.25x); the raw-speed pass regressed"
    )


def test_sharded_analyze_identical_and_faster(trace_files):
    """Sharded ``--jobs 4`` analytics: byte-identical always; >= 2x the
    serial wall time when the full-size bench runs with enough CPUs."""
    path = str(trace_files["paths"]["v3"])
    jobs = 4

    started = time.perf_counter()
    serial = TraceAnalyticsObserver()
    for request in TraceFileSource(path):
        serial.observe(request)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    sharded = analyze_trace_parallel(path, jobs=jobs)
    sharded_seconds = time.perf_counter() - started

    assert sharded is not None, "the v3 bench trace must shard"
    assert sharded.export() == serial.export(), (
        "sharded analytics diverged from the serial scan"
    )
    speedup = serial_seconds / sharded_seconds
    print(
        f"\nsharded analyze of {REQUESTS} requests: serial={serial_seconds:.2f}s, "
        f"jobs={jobs}: {sharded_seconds:.2f}s ({speedup:.2f}x)"
    )
    record_metric("trace_io", "analyze_serial_seconds", round(serial_seconds, 3), "s")
    record_metric("trace_io", "analyze_sharded_seconds", round(sharded_seconds, 3), "s")
    record_metric("trace_io", "analyze_sharded_speedup", round(speedup, 3), "ratio")
    cpus = os.cpu_count() or 1
    if os.environ.get("REPRO_BENCH_FULL", "") == "1" and cpus >= jobs:
        assert speedup >= 2.0, (
            f"jobs={jobs} sharded analyze is only {speedup:.2f}x serial on "
            f"{cpus} CPUs (guard: >= 2x at full trace size)"
        )


@pytest.mark.parametrize("version", [2, 3])
def test_background_compression_no_slower_than_inline(trace_files, tmp_path, version):
    """The ISSUE 10 satellite guard: ``compress="background"`` must not be
    slower than inline compression (byte-identical output is pinned by
    tests/test_trace_background.py; this guards the *point* of the mode).

    Best-of-3 wall times on the same trace in the same process; a 10%
    grace absorbs scheduler noise — the worker thread overlaps zlib with
    record encoding, so the ratio sits at or below 1.0 in practice.
    """
    trace = trace_files["trace"]

    def save_seconds(compress, tag):
        best = float("inf")
        for _ in range(3):
            path = tmp_path / f"bg-{version}-{tag}.bin"
            started = time.perf_counter()
            save_trace(trace, path, version=version, compress=compress)
            best = min(best, time.perf_counter() - started)
        return best

    inline = save_seconds(True, "inline")
    background = save_seconds("background", "background")
    ratio = background / inline
    print(
        f"\nv{version} compressed save of {REQUESTS} requests: "
        f"inline={inline:.3f}s, background={background:.3f}s ({ratio:.2f}x)"
    )
    record_metric("trace_io", f"v{version}z_inline_save_seconds", round(inline, 3), "s")
    record_metric(
        "trace_io", f"v{version}z_background_save_seconds", round(background, 3), "s"
    )
    record_metric(
        "trace_io", f"v{version}z_background_over_inline", round(ratio, 3), "ratio"
    )
    assert ratio <= 1.10, (
        f"background compression is {ratio:.2f}x inline for v{version} "
        "(guard: <= 1.10x); the worker thread is adding overhead instead of "
        "hiding the zlib work"
    )


def test_streaming_analytics_matches_materialised_within_memory_budget(trace_files):
    """The `repro trace analyze` guard: streaming analytics over a
    TraceFileSource must render byte-identical tables to the materialised
    load-then-analyze path at a small fraction of its peak memory."""
    path = trace_files["paths"]["v2"]

    tracemalloc.start()
    materialised = analyze_trace(load_trace(path))
    _, materialised_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    tracemalloc.start()
    streamed = analyze_trace(TraceFileSource(path))
    _, streaming_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    print(
        f"\npeak memory analyzing {REQUESTS} requests: "
        f"materialised={materialised_peak // 1024} KiB, "
        f"streaming={streaming_peak // 1024} KiB "
        f"({streaming_peak / materialised_peak:.1%})"
    )
    record_metric("trace_io", "materialised_peak_bytes", materialised_peak, "bytes")
    record_metric("trace_io", "streaming_peak_bytes", streaming_peak, "bytes")
    assert streamed == materialised
    assert analytics_result(streamed).to_text() == analytics_result(materialised).to_text()
    assert streaming_peak <= materialised_peak * 0.2, (
        f"streaming analytics peaked at {streaming_peak} bytes vs {materialised_peak} "
        "for the materialised path; the analyzer is buffering per-request state "
        "somewhere"
    )


def test_streaming_replay_never_materialises_the_trace(trace_files):
    """The peak-memory guard: replaying the v2 file through a streaming
    TraceFileSource must cost a small fraction of what load_trace costs,
    which is only possible if the replay never holds the request list."""
    path = trace_files["paths"]["v2z"]

    tracemalloc.start()
    trace = load_trace(path)
    _, materialised_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert len(trace) == REQUESTS
    del trace

    allocator = FirstFitAllocator()  # audited: the index adds O(live set) only
    tracemalloc.start()
    run = SimulationEngine(allocator).run(TraceFileSource(path))
    _, streaming_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    print(
        f"\npeak memory replaying {REQUESTS} requests: "
        f"materialised={materialised_peak // 1024} KiB, "
        f"streaming={streaming_peak // 1024} KiB "
        f"({streaming_peak / materialised_peak:.1%})"
    )
    assert run.requests == REQUESTS
    assert streaming_peak <= materialised_peak * 0.2, (
        f"streaming replay peaked at {streaming_peak} bytes vs {materialised_peak} "
        "for the materialised trace; the pipeline is buffering the trace somewhere"
    )
