"""Guards for the indexed address space: audited replays must stay fast.

Two enforced assertions, both on first-fit churn replays:

* **Index vs pre-index audit.**  ``_LegacyScanSpace`` reinstates the seed's
  audit — a linear scan over every live extent per placement — on top of the
  current address space.  The indexed audit must beat it by at least 5x on a
  trace whose live set is large enough that the scan dominates (the captured
  pre-index baseline ratio; at the full 50k-live scale the gap is orders of
  magnitude, far too slow to time in CI).
* **Audit overhead.**  With the index, ``validate=True`` must cost no more
  than 2x the unaudited replay at scale (5k live by default, 50k with
  ``REPRO_BENCH_FULL=1``) — which is what lets benchmarks and campaign cells
  run audited by default.

Timings are best-of-N with the two variants interleaved, so a load spike on
a shared CI runner hits both sides.
"""

import os
import random
import time
from bisect import bisect_left, insort

import pytest

from benchmarks.bench_artifact import record_metric
from repro.allocators import FirstFitAllocator
from repro.storage.address_space import AddressSpace
from repro.storage.extent import Extent
from repro.storage.gap_index import GapIndex, _Node, _delete, _insert
from repro.workloads import UniformSizes, churn_trace

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

#: Trace for the legacy-vs-indexed ratio: big enough for the O(n) scan to
#: dominate, small enough that the legacy replay stays CI-friendly.
LEGACY_TRACE = churn_trace(12_000, UniformSizes(1, 64), target_live=4_000, seed=31)

#: Trace for the audited-vs-unaudited overhead guard.
SCALE_TRACE = (
    churn_trace(150_000, UniformSizes(1, 64), target_live=50_000, seed=32)
    if FULL
    else churn_trace(20_000, UniformSizes(1, 64), target_live=5_000, seed=32)
)


class _LegacyScanSpace(AddressSpace):
    """The pre-index audit: check a placement against every live extent."""

    def _find_overlap(self, extent, ignore=None):
        for name, existing in self._extents.items():
            if name == ignore:
                continue
            if existing.overlaps(extent):
                return name
        return None


def _timed_replay(trace, audit=True, space_class=None):
    allocator = FirstFitAllocator(audit=audit)
    if space_class is not None:
        allocator.space = space_class(validate=audit)
    started = time.perf_counter()
    allocator.run(trace)
    elapsed = time.perf_counter() - started
    assert allocator.stats.requests == len(trace)
    return elapsed, allocator


def test_indexed_audit_beats_the_legacy_scan_by_5x():
    indexed = legacy = float("inf")
    for _ in range(3):
        indexed = min(indexed, _timed_replay(LEGACY_TRACE)[0])
        legacy = min(legacy, _timed_replay(LEGACY_TRACE, space_class=_LegacyScanSpace)[0])
    print(
        f"\naudited first-fit replay ({len(LEGACY_TRACE)} requests, 4k live): "
        f"indexed={indexed:.3f}s legacy-scan={legacy:.3f}s ({legacy / indexed:.1f}x)"
    )
    record_metric("address_space", "indexed_audit_seconds", round(indexed, 6), "seconds")
    record_metric("address_space", "legacy_scan_seconds", round(legacy, 6), "seconds")
    record_metric(
        "address_space", "legacy_over_indexed_ratio", round(legacy / indexed, 2), "ratio"
    )
    assert legacy >= 5 * indexed, (
        f"indexed audit ({indexed:.3f}s) is less than 5x faster than the "
        f"pre-index linear scan ({legacy:.3f}s); the overlap index has regressed"
    )


def test_indexed_audit_and_legacy_scan_agree():
    """The speed guard is only meaningful if both audits accept the replay
    and produce identical results."""
    _, indexed = _timed_replay(LEGACY_TRACE)
    _, legacy = _timed_replay(LEGACY_TRACE, space_class=_LegacyScanSpace)
    assert indexed.footprint == legacy.footprint
    assert indexed.volume == legacy.volume
    indexed.space.verify_disjoint()


def test_audited_replay_within_2x_of_unaudited_at_scale():
    audited = unaudited = float("inf")
    for _ in range(3):
        audited = min(audited, _timed_replay(SCALE_TRACE, audit=True)[0])
        unaudited = min(unaudited, _timed_replay(SCALE_TRACE, audit=False)[0])
    live = "50k" if FULL else "5k"
    print(
        f"\nfirst-fit replay ({len(SCALE_TRACE)} requests, {live} live): "
        f"audited={audited:.3f}s unaudited={unaudited:.3f}s "
        f"({audited / unaudited:.2f}x)"
    )
    record_metric("address_space", "audited_replay_seconds", round(audited, 6), "seconds")
    record_metric("address_space", "unaudited_replay_seconds", round(unaudited, 6), "seconds")
    record_metric(
        "address_space", "audit_overhead_ratio", round(audited / unaudited, 3), "ratio"
    )
    assert audited <= 2 * unaudited, (
        f"audited replay ({audited:.3f}s) costs more than 2x the unaudited "
        f"one ({unaudited:.3f}s); auditing is no longer affordable by default"
    )


class _LegacyBisectGapIndex(GapIndex):
    """The pre-treap size order: a flat ``(length, start)`` bisect list.

    Both variants pay the identical address-treap cost, so the timing delta
    isolates the size structure: O(log n) treap descent vs O(log n) bisect
    probe plus an O(n) memmove per insert and delete.
    """

    def __init__(self):
        super().__init__()
        self._by_size = []

    def add(self, extent):
        node = _Node(extent.start, extent.length, self._rng.getrandbits(62))
        self._root = _insert(self._root, node)
        insort(self._by_size, (extent.length, extent.start))
        self._total += extent.length

    def _remove_known(self, start, length):
        self._root = _delete(self._root, start)
        del self._by_size[bisect_left(self._by_size, (length, start))]
        self._total -= length

    def best_fit(self, size):
        pos = bisect_left(self._by_size, (size,))
        return self._by_size[pos][1] if pos < len(self._by_size) else None

    def worst_fit(self, size):
        if not self._by_size or self._by_size[-1][0] < size:
            return None
        widest = self._by_size[-1][0]
        return self._by_size[bisect_left(self._by_size, (widest,))][1]


#: Live gap count for the size-structure guard: past the bisect/treap
#: crossover (~50k on CPython — below it the C memmove wins) by a wide
#: enough margin that the ratio is stable on shared runners.
GAP_COUNT = 400_000 if FULL else 200_000
GAP_OPS = 2_000


def _gap_churn(index_class, seed=7):
    """Build GAP_COUNT disjoint gaps, then time remove/add/best_fit churn."""
    rng = random.Random(seed)
    gaps = index_class()
    live = []
    for i in range(GAP_COUNT):
        length = rng.randrange(1, 64)
        gaps.add(Extent(i * 70, length))
        live.append((i * 70, length))
    started = time.perf_counter()
    for _ in range(GAP_OPS):
        slot = rng.randrange(len(live))
        start, _length = live[slot]
        gaps.remove(start)
        length = rng.randrange(1, 64)
        gaps.add(Extent(start, length))
        live[slot] = (start, length)
        gaps.best_fit(rng.randrange(1, 64))
    elapsed = time.perf_counter() - started
    assert len(gaps) == GAP_COUNT
    return elapsed


def test_size_treap_beats_the_bisect_list_at_scale():
    treap = legacy = float("inf")
    for _ in range(3):
        treap = min(treap, _gap_churn(GapIndex))
        legacy = min(legacy, _gap_churn(_LegacyBisectGapIndex))
    print(
        f"\ngap churn ({GAP_COUNT} live gaps, {GAP_OPS} remove/add/query ops): "
        f"treap={treap * 1000:.1f}ms bisect-list={legacy * 1000:.1f}ms "
        f"({legacy / treap:.2f}x)"
    )
    record_metric("gap_index", "size_treap_churn_seconds", round(treap, 6), "seconds")
    record_metric("gap_index", "bisect_list_churn_seconds", round(legacy, 6), "seconds")
    record_metric("gap_index", "bisect_over_treap_ratio", round(legacy / treap, 2), "ratio")
    # The measured ratio is ~2x at 200k gaps and grows with the gap count;
    # 1.2x is the lenient floor that still catches an accidental return to
    # O(n) mutations without flaking on noisy shared runners.
    assert legacy >= 1.2 * treap, (
        f"size-treap churn ({treap:.3f}s) is not faster than the legacy "
        f"bisect list ({legacy:.3f}s) at {GAP_COUNT} gaps; its O(log n) "
        "mutations have regressed"
    )


@pytest.mark.parametrize("mode", ["audited", "unaudited"])
def test_first_fit_replay_throughput(benchmark, mode):
    """Statistical timing of the scale trace for run-to-run comparison."""

    def run_once():
        _, allocator = _timed_replay(SCALE_TRACE, audit=mode == "audited")
        return allocator

    allocator = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert allocator.stats.requests == len(SCALE_TRACE)
