"""E3 — comparison against non-moving and cost-specific baselines."""

from benchmarks.conftest import run_and_print


def test_e3_baseline_comparison(benchmark, quick_mode):
    result = run_and_print(benchmark, "E3", quick_mode)
    summary = result.data["summary"]
    oblivious = next(v for k, v in summary.items() if k.startswith("cost-oblivious"))
    assert oblivious["churn_footprint"] <= 1.25 + 1e-9
    assert summary["first-fit"]["fragmentation_footprint"] > 5
