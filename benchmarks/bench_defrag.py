"""E4 — cost-oblivious defragmentation within (1+eps)V + Delta space (Thm 2.7)."""

from benchmarks.conftest import run_and_print


def test_e4_defragmentation(benchmark, quick_mode):
    result = run_and_print(benchmark, "E4", quick_mode)
    for outcome in result.data["outcomes"]:
        assert outcome["peak"] <= outcome["bound"] + 1e-9
