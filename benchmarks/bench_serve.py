"""Saturation benchmark for the live allocation service (``repro serve``).

The acceptance guard of ISSUE 10: 8 concurrent clients against one server
process must sustain at least **50%** of single-process batch-replay
throughput for the same total workload — while every session is durably
recorded (each ack only lands after the applied prefix is written to the
tenant's v3 trace and synced).  Both sides run on the same machine in the
same invocation, so the ratio is hardware-independent; the absolute
figures are recorded into ``BENCH_serve.json`` for the artifact.

The default load is 8 x 10k requests so CI stays fast; set
``REPRO_BENCH_FULL=1`` for the 8 x 50k acceptance run::

    REPRO_BENCH_FULL=1 PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -q
"""

import os
import time

import pytest

from benchmarks.bench_artifact import record_metric
from repro.allocators import FirstFitAllocator
from repro.engine import SimulationEngine
from repro.serve import ServeConfig, run_load, start_background
from repro.serve.client import load_pattern_trace
from repro.workloads import load_trace, trace_info

CLIENTS = 8
REQUESTS = 50_000 if os.environ.get("REPRO_BENCH_FULL", "") == "1" else 10_000

#: The acceptance bar: serve throughput >= 50% of batch replay.
MIN_SERVE_RATIO = 0.50


@pytest.fixture(scope="module")
def workloads():
    """The exact per-client traces the loader will send (same seeds)."""
    return [load_pattern_trace("churn", REQUESTS, seed) for seed in range(CLIENTS)]


def _batch_replay_seconds(workloads):
    """Single-process baseline: plain engine runs, one per workload."""
    best = float("inf")
    for _ in range(2):
        started = time.perf_counter()
        total = 0
        for trace in workloads:
            total += SimulationEngine(FirstFitAllocator()).run(trace).requests
        best = min(best, time.perf_counter() - started)
        assert total == CLIENTS * REQUESTS
    return best


def test_serve_sustains_half_of_batch_replay_throughput(tmp_path, workloads):
    baseline_seconds = _batch_replay_seconds(workloads)
    baseline_rps = CLIENTS * REQUESTS / baseline_seconds

    handle = start_background(
        ServeConfig(allocator="first_fit", trace_dir=str(tmp_path), label="bench")
    )
    try:
        report = run_load(
            handle.host,
            handle.port,
            clients=CLIENTS,
            requests=REQUESTS,
            pattern="churn",
            seed=0,
            batch=1000,
            window=8,
        )
    finally:
        results = handle.stop()
    assert report.errors == 0
    assert report.applied == report.sent == CLIENTS * REQUESTS

    serve_rps = report.requests_per_second
    ratio = serve_rps / baseline_rps
    print(
        f"\n{CLIENTS} clients x {REQUESTS} requests: "
        f"batch replay={baseline_rps:,.0f} req/s, "
        f"serve={serve_rps:,.0f} req/s ({ratio:.2f}x)"
    )
    record_metric("serve", "clients", CLIENTS, "count")
    record_metric("serve", "requests_per_client", REQUESTS, "count")
    record_metric("serve", "batch_replay_requests_per_sec", round(baseline_rps), "req/s")
    record_metric("serve", "serve_requests_per_sec", round(serve_rps), "req/s")
    record_metric("serve", "serve_over_batch_ratio", round(ratio, 3), "ratio")
    assert ratio >= MIN_SERVE_RATIO, (
        f"{CLIENTS} concurrent clients sustain only {ratio:.1%} of batch-replay "
        f"throughput ({serve_rps:,.0f} vs {baseline_rps:,.0f} req/s); the serve "
        f"path regressed past the {MIN_SERVE_RATIO:.0%} budget"
    )

    # The throughput only counts if durability held: every session left a
    # complete v3 trace that replays to the exact served state.
    assert len(results) == CLIENTS
    for index, (workload, result) in enumerate(
        zip(workloads, sorted(results, key=lambda r: int(r["tenant"].split("-")[-1])))
    ):
        path = tmp_path / f"bench-load-{index}.v3"
        assert trace_info(path).requests == REQUESTS
        offline = FirstFitAllocator()
        offline.run(workload)
        assert result["stats"]["footprint"] == offline.footprint
        assert result["stats"]["volume"] == offline.volume
    record_metric("serve", "sessions_recorded", len(results), "count")
