"""Campaign engine: serial vs parallel sweep wall-clock.

Times the same campaign matrix once serially and once over a worker pool and
prints the speedup, tracking how well the sweep scales with ``--jobs``.  The
quick run uses a small matrix; ``REPRO_BENCH_FULL=1`` sweeps a 100k-request
campaign per cell, where the fork/pickle overhead is negligible and the
speedup approaches the machine's core count.
"""

import os
import time

from benchmarks.bench_artifact import record_metric
from repro.campaign import CampaignSpec, campaign_table, run_campaign
from repro.metrics.report import ascii_table


def _spec(quick: bool) -> CampaignSpec:
    requests = 4000 if quick else 100_000
    return CampaignSpec.from_dict(
        {
            "name": "bench",
            "seed": 17,
            "workloads": [
                {"kind": "churn", "requests": requests, "target_live": 150},
                {"kind": "database", "requests": requests},
            ],
            "allocators": [
                {"kind": "cost_oblivious", "epsilon": 0.25},
                "first_fit",
            ],
            "costs": ["linear"],
            "devices": ["ram"],
        }
    )


def test_campaign_parallel_speedup(benchmark, quick_mode):
    spec = _spec(quick_mode)
    jobs = max(2, min(4, os.cpu_count() or 1))

    started = time.perf_counter()
    serial = run_campaign(spec, jobs=1)
    serial_elapsed = time.perf_counter() - started

    parallel = benchmark.pedantic(
        run_campaign, args=(spec,), kwargs={"jobs": jobs}, rounds=1, iterations=1
    )

    print()
    print(campaign_table(parallel).to_text())
    print()
    print(
        ascii_table(
            ["mode", "jobs", "cells", "wall-clock s", "speedup"],
            [
                ["serial", 1, len(serial.records), round(serial_elapsed, 2), 1.0],
                [
                    "parallel",
                    parallel.jobs,
                    len(parallel.records),
                    round(parallel.elapsed_seconds, 2),
                    round(serial_elapsed / max(parallel.elapsed_seconds, 1e-9), 2),
                ],
            ],
            title="campaign sweep: serial vs parallel",
        )
    )

    record_metric("campaign", "serial_elapsed_seconds", round(serial_elapsed, 6), "seconds")
    record_metric(
        "campaign", "parallel_elapsed_seconds", round(parallel.elapsed_seconds, 6), "seconds"
    )
    record_metric(
        "campaign",
        "parallel_speedup",
        round(serial_elapsed / max(parallel.elapsed_seconds, 1e-9), 3),
        "ratio",
    )

    def strip(records):
        nondeterministic = ("elapsed_seconds", "resources", "telemetry", "profile")
        return [
            {k: v for k, v in record.items() if k not in nondeterministic}
            for record in records
        ]

    assert strip(parallel.records) == strip(serial.records)
    assert all(record["status"] == "ok" for record in parallel.records)
    # Wall-clock speedup needs real cores and long enough cells to amortise
    # the pool start-up; only assert it on the full-size run.
    if not quick_mode and (os.cpu_count() or 1) > 1:
        assert parallel.elapsed_seconds < serial_elapsed
