"""Campaign engine: serial vs parallel sweep wall-clock.

Times the same campaign matrix once serially and once over a worker pool and
prints the speedup, tracking how well the sweep scales with ``--jobs``.  The
quick run uses a small matrix; ``REPRO_BENCH_FULL=1`` sweeps a 100k-request
campaign per cell, where the fork/pickle overhead is negligible and the
speedup approaches the machine's core count.
"""

import os
import time

from benchmarks.bench_artifact import record_metric
from repro.campaign import CampaignSpec, campaign_table, run_campaign
from repro.metrics.report import ascii_table


def _spec(quick: bool) -> CampaignSpec:
    requests = 4000 if quick else 100_000
    return CampaignSpec.from_dict(
        {
            "name": "bench",
            "seed": 17,
            "workloads": [
                {"kind": "churn", "requests": requests, "target_live": 150},
                {"kind": "database", "requests": requests},
            ],
            "allocators": [
                {"kind": "cost_oblivious", "epsilon": 0.25},
                "first_fit",
            ],
            "costs": ["linear"],
            "devices": ["ram"],
        }
    )


def test_campaign_parallel_speedup(benchmark, quick_mode):
    spec = _spec(quick_mode)
    jobs = max(2, min(4, os.cpu_count() or 1))

    started = time.perf_counter()
    serial = run_campaign(spec, jobs=1)
    serial_elapsed = time.perf_counter() - started

    parallel = benchmark.pedantic(
        run_campaign, args=(spec,), kwargs={"jobs": jobs}, rounds=1, iterations=1
    )

    print()
    print(campaign_table(parallel).to_text())
    print()
    print(
        ascii_table(
            ["mode", "jobs", "cells", "wall-clock s", "speedup"],
            [
                ["serial", 1, len(serial.records), round(serial_elapsed, 2), 1.0],
                [
                    "parallel",
                    parallel.jobs,
                    len(parallel.records),
                    round(parallel.elapsed_seconds, 2),
                    round(serial_elapsed / max(parallel.elapsed_seconds, 1e-9), 2),
                ],
            ],
            title="campaign sweep: serial vs parallel",
        )
    )

    record_metric("campaign", "serial_elapsed_seconds", round(serial_elapsed, 6), "seconds")
    record_metric(
        "campaign", "parallel_elapsed_seconds", round(parallel.elapsed_seconds, 6), "seconds"
    )
    record_metric(
        "campaign",
        "parallel_speedup",
        round(serial_elapsed / max(parallel.elapsed_seconds, 1e-9), 3),
        "ratio",
    )

    def strip(records):
        nondeterministic = ("elapsed_seconds", "resources", "telemetry", "profile")
        return [
            {k: v for k, v in record.items() if k not in nondeterministic}
            for record in records
        ]

    assert strip(parallel.records) == strip(serial.records)
    assert all(record["status"] == "ok" for record in parallel.records)
    # Wall-clock speedup needs real cores and long enough cells to amortise
    # the pool start-up; only assert it on the full-size run.
    if not quick_mode and (os.cpu_count() or 1) > 1:
        assert parallel.elapsed_seconds < serial_elapsed


def test_disabled_fault_injection_overhead_within_2_percent(tmp_path):
    """The ISSUE 9 guard: with ``repro.faults`` importable but *disarmed*,
    the journal append hot path (the queue's per-cell durability write,
    which carries two fault hooks) must stay within 2% of the identical
    code with the hooks stripped.  Same methodology as the telemetry
    guard in bench_engine: single ~10ms timings swing several percent on
    a loaded runner, so the assertion is on the *minimum paired ratio*
    over 9 interleaved rounds — only genuine per-append overhead can hold
    every pair above 2%."""
    import json as _json

    from repro.campaign.queue import CellJournal
    from repro.faults import deactivate_faults, fault_point

    deactivate_faults()
    record = {
        "index": 3,
        "cell_id": "churn,requests=4000/first_fit/linear/ram",
        "status": "ok",
        "max_footprint": 4096,
        "max_footprint_ratio": 1.31,
        "cost_ratio": 1.25,
        "total_moves": 210,
        "elapsed_seconds": 0.01,
    }
    appends = 300

    def hooked() -> float:
        path = tmp_path / "hooked.jsonl"
        with CellJournal(path) as journal:
            started = time.perf_counter()
            for _ in range(appends):
                journal.append(record)
            elapsed = time.perf_counter() - started
        path.unlink()
        return elapsed

    def raw() -> float:
        # CellJournal.append with the two fault hooks removed and nothing
        # else changed: same dumps/tell/write/flush/fsync per line.
        path = tmp_path / "raw.jsonl"
        with open(path, "a", encoding="utf-8") as handle:
            started = time.perf_counter()
            for _ in range(appends):
                line = _json.dumps(record, sort_keys=True, separators=(",", ":"))
                start = handle.tell()
                try:
                    handle.write(line + "\n")
                    handle.flush()
                    os.fsync(handle.fileno())
                except OSError:
                    handle.truncate(start)
                    raise
            elapsed = time.perf_counter() - started
        path.unlink()
        return elapsed

    best_ratio = float("inf")
    hooked_best = raw_best = float("inf")
    for _ in range(9):
        baseline = raw()
        measured = hooked()
        best_ratio = min(best_ratio, measured / baseline)
        raw_best = min(raw_best, baseline)
        hooked_best = min(hooked_best, measured)

    # The bare hook, disarmed, is one global load plus a None test.
    calls = 200_000
    started = time.perf_counter()
    for _ in range(calls):
        fault_point("queue.journal.append")
    ns_per_call = (time.perf_counter() - started) / calls * 1e9

    record_metric(
        "campaign", "journal_append_faults_off_seconds", round(hooked_best, 6), "seconds"
    )
    record_metric(
        "campaign", "journal_append_no_hooks_seconds", round(raw_best, 6), "seconds"
    )
    record_metric(
        "campaign",
        "faults_off_best_overhead_ratio",
        round(best_ratio, 4),
        "ratio",
    )
    record_metric(
        "campaign", "fault_point_disarmed_ns_per_call", round(ns_per_call, 1), "ns"
    )
    assert best_ratio <= 1.02, (
        f"journal appends with fault injection disarmed are more than 2% "
        f"slower than the hook-free equivalent in every one of 9 paired "
        f"rounds (best ratio {best_ratio:.4f})"
    )
