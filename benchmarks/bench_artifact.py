"""Machine-readable benchmark artifacts: ``BENCH_<name>.json``.

Every benchmark module records its headline numbers through
:func:`record_metric`; at the end of the pytest session the conftest calls
:func:`write_artifacts`, which writes one JSON file per bench so CI can
upload them and trend tooling can diff runs without scraping terminal
output.  The format is intentionally small and flat::

    {
      "format": "repro-bench-artifact",
      "version": 1,
      "bench": "engine",
      "git_rev": "5a520f6...",            # null outside a git checkout
      "env": {"python": "3.11.7", "platform": "linux", ...},
      "metrics": {
        "zero_observer_best_seconds": {"value": 0.021, "unit": "seconds"}
      }
    }

Artifacts land in ``REPRO_BENCH_ARTIFACT_DIR`` when set, else the current
working directory.  Everything here is stdlib-only and import-safe from any
bench module.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from typing import Any, Dict, List, Optional, Union

ARTIFACT_FORMAT = "repro-bench-artifact"
ARTIFACT_VERSION = 1

#: bench name -> metric name -> {"value": ..., "unit": ...}
_METRICS: Dict[str, Dict[str, Dict[str, Any]]] = {}


def record_metric(bench: str, metric: str, value: Union[int, float], unit: str) -> None:
    """Record one headline number for ``bench`` (last write per name wins)."""
    _METRICS.setdefault(bench, {})[metric] = {"value": value, "unit": unit}


def recorded_benches() -> List[str]:
    """The bench names that have recorded at least one metric, sorted."""
    return sorted(_METRICS)


def git_revision() -> Optional[str]:
    """The current git commit hash, or None outside a checkout."""
    try:
        output = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if output.returncode != 0:
        return None
    return output.stdout.strip() or None


def env_fingerprint() -> Dict[str, Any]:
    """Enough about the machine to interpret (not reproduce) the numbers."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "bench_full": os.environ.get("REPRO_BENCH_FULL", "") == "1",
    }


def write_artifacts(out_dir: Optional[str] = None) -> List[str]:
    """Write one ``BENCH_<name>.json`` per recorded bench; returns the paths."""
    if not _METRICS:
        return []
    if out_dir is None:
        out_dir = os.environ.get("REPRO_BENCH_ARTIFACT_DIR") or "."
    os.makedirs(out_dir, exist_ok=True)
    rev = git_revision()
    env = env_fingerprint()
    paths = []
    for bench in recorded_benches():
        document = {
            "format": ARTIFACT_FORMAT,
            "version": ARTIFACT_VERSION,
            "bench": bench,
            "git_rev": rev,
            "env": env,
            "metrics": _METRICS[bench],
        }
        path = os.path.join(out_dir, f"BENCH_{bench}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        paths.append(path)
    return paths


def reset_metrics() -> None:
    """Drop everything recorded so far (tests)."""
    _METRICS.clear()
