"""Ablations of the design choices DESIGN.md calls out.

Two knobs the paper's analysis fixes and our implementation exposes:

* the deamortized **work factor** (the paper's ``4/eps'``) — how much flush
  work each update performs.  Too small and flushes cannot finish before the
  tail buffer refills (forcing back-to-back flushes); larger values trade a
  bigger per-request burst for fewer outstanding flushes.
* the reallocator's **epsilon** — the footprint slack — which directly trades
  space against amortized moved volume (the E1 trade-off, measured here as a
  single ratio per epsilon for the record).
"""

import pytest

from repro.core import CostObliviousReallocator, DeamortizedReallocator
from repro.costs import LinearCost
from repro.metrics import ascii_table, run_trace
from repro.workloads import UniformSizes, churn_trace

TRACE = churn_trace(2000, UniformSizes(1, 64), target_live=150, seed=77)


def test_work_factor_ablation(benchmark):
    """Sweep the deamortized work factor and report burst vs flush backlog."""

    def sweep():
        rows = []
        for factor in (8.0, 32.0, 128.0, 512.0):
            allocator = DeamortizedReallocator(epsilon=0.25, work_factor=factor)
            metrics = run_trace(allocator, TRACE, cost_functions=(LinearCost(),))
            rows.append(
                [
                    factor,
                    metrics.max_request_moved_volume,
                    metrics.flushes,
                    round(metrics.cost_ratios["linear"], 2),
                    round(metrics.max_footprint_ratio, 3),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        ascii_table(
            ["work factor", "worst request moved volume", "flushes", "linear ratio", "max footprint/V"],
            rows,
            title="Ablation: deamortized work factor (paper: 4/eps')",
        )
    )
    worst_bursts = [row[1] for row in rows]
    assert worst_bursts == sorted(worst_bursts), "larger work factors allow larger bursts"


def test_epsilon_ablation(benchmark):
    """The space/move trade-off as a single table (complements E1)."""

    def sweep():
        rows = []
        for epsilon in (0.5, 0.25, 0.125, 0.0625):
            allocator = CostObliviousReallocator(epsilon=epsilon)
            metrics = run_trace(allocator, TRACE, cost_functions=(LinearCost(),))
            rows.append(
                [
                    epsilon,
                    round(metrics.max_footprint_ratio, 3),
                    round(metrics.cost_ratios["linear"], 2),
                    round(metrics.total_moved_volume / max(1, TRACE.total_inserted_volume), 2),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        ascii_table(
            ["epsilon", "max footprint/V", "linear ratio", "moved/inserted volume"],
            rows,
            title="Ablation: epsilon (space vs movement)",
        )
    )
    footprints = [row[1] for row in rows]
    assert footprints == sorted(footprints, reverse=True)
