"""E8 — the Lemma 3.7 lower-bound instance."""

from benchmarks.conftest import run_and_print


def test_e8_lower_bound(benchmark, quick_mode):
    result = run_and_print(benchmark, "E8", quick_mode)
    for (delta, _label), worst in result.data.items():
        assert worst["linear"] >= delta
