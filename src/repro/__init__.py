"""Cost-oblivious storage reallocation (Bender et al., PODS 2014).

A reference implementation of the paper's cost-oblivious storage
reallocators, the substrates they run on (simulated devices, block
translation layer, checkpointing), the baselines they are compared against,
and a benchmark harness that regenerates an experiment for every theorem,
lemma, and figure in the paper.

Quickstart
----------

>>> from repro import CostObliviousReallocator
>>> realloc = CostObliviousReallocator(epsilon=0.25)
>>> _ = realloc.insert("block-1", size=16)
>>> _ = realloc.insert("block-2", size=4)
>>> realloc.footprint <= 1.25 * realloc.volume + 1
True

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
experiment suite described in EXPERIMENTS.md.
"""

from repro.core import (
    Allocator,
    AllocationError,
    CostObliviousReallocator,
    CheckpointedReallocator,
    DeamortizedReallocator,
    Defragmenter,
    DefragmentationResult,
    check_invariants,
    render_layout,
)
from repro.costs import (
    CostFunction,
    LinearCost,
    ConstantCost,
    AffineCost,
    PowerCost,
    LogCost,
    RotatingDiskCost,
    SolidStateCost,
    MainMemoryCost,
    STANDARD_COST_SUITE,
)
from repro.engine import (
    FootprintSeriesObserver,
    GapHistogramObserver,
    HistoryObserver,
    Observer,
    PerClassOccupancyObserver,
    SimulationEngine,
    TraceAnalyticsObserver,
    TraceRecorderObserver,
)
from repro.metrics import run_trace
from repro.workloads import (
    Request,
    RequestSource,
    Trace,
    TraceFileSource,
    iter_trace,
    load_trace,
    save_trace,
    trace_info,
)

__version__ = "1.0.0"

__all__ = [
    "Allocator",
    "AllocationError",
    "CostObliviousReallocator",
    "CheckpointedReallocator",
    "DeamortizedReallocator",
    "Defragmenter",
    "DefragmentationResult",
    "check_invariants",
    "render_layout",
    "CostFunction",
    "LinearCost",
    "ConstantCost",
    "AffineCost",
    "PowerCost",
    "LogCost",
    "RotatingDiskCost",
    "SolidStateCost",
    "MainMemoryCost",
    "STANDARD_COST_SUITE",
    "FootprintSeriesObserver",
    "GapHistogramObserver",
    "HistoryObserver",
    "Observer",
    "PerClassOccupancyObserver",
    "SimulationEngine",
    "TraceAnalyticsObserver",
    "TraceRecorderObserver",
    "run_trace",
    "Request",
    "RequestSource",
    "Trace",
    "TraceFileSource",
    "iter_trace",
    "load_trace",
    "save_trace",
    "trace_info",
    "__version__",
]
