"""One place to turn durations, byte counts, and big numbers into text.

Campaign cell records round ``elapsed_seconds`` to six places, but the
report layers used to each reformat it their own way (``.2f`` here,
``.3f`` there).  Every human-facing view — ``sweep report``,
``trace analyze``/``info``, ``obs report``, the progress reporter — goes
through these helpers so the same quantity always reads the same.
"""

from __future__ import annotations

from typing import Union

Number = Union[int, float]


def format_duration(seconds: Number) -> str:
    """``123us`` / ``4.5ms`` / ``1.23s`` / ``2m03.4s`` — unit follows size."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 0.001:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60.0:
        return f"{seconds:.2f}s"
    minutes, rest = divmod(seconds, 60.0)
    return f"{int(minutes)}m{rest:04.1f}s"


def format_bytes(count: Number) -> str:
    """``512B`` / ``4.0KiB`` / ``1.5MiB`` — binary units, one decimal."""
    if count < 0:
        return "-" + format_bytes(-count)
    if count < 1024:
        return f"{count:.0f}B"
    value = float(count)
    for unit in ("KiB", "MiB", "GiB", "TiB"):
        value /= 1024.0
        if value < 1024.0 or unit == "TiB":
            return f"{value:.1f}{unit}"
    raise AssertionError("unreachable")


def format_count(count: Number) -> str:
    """``950`` / ``12.3k`` / ``4.5M`` — decimal units for event counts."""
    if count < 0:
        return "-" + format_count(-count)
    if count < 1000:
        # Small floats (e.g. fractional counter values) keep two decimals.
        if isinstance(count, float) and count != int(count):
            return f"{count:.2f}"
        return str(int(count))
    value = float(count)
    for unit in ("k", "M", "G", "T"):
        value /= 1000.0
        if value < 1000.0 or unit == "T":
            return f"{value:.1f}{unit}"
    raise AssertionError("unreachable")


def format_rate(per_second: Number) -> str:
    """A count per second (``1.2M/s``)."""
    return f"{format_count(per_second)}/s"
