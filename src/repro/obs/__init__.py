"""Observability: telemetry spans/counters, resource accounting, reports.

The telemetry substrate is deliberately tiny and stdlib-only so the hot
modules (``repro.storage``, ``repro.engine``, ``repro.workloads.binary``)
can import it without cycles and without cost: when telemetry is disabled
(the default) every entry point returns a shared no-op singleton, so the
instrumented fast paths stay fast paths.

Enable it for a process with ``REPRO_TELEMETRY=<path.jsonl>`` (or ``1`` for
an in-memory sink), programmatically with :func:`configure_telemetry`, or
per campaign run with ``repro sweep --telemetry``.
"""

from repro.obs.format import (  # noqa: F401
    format_bytes,
    format_count,
    format_duration,
    format_rate,
)
from repro.obs.report import (  # noqa: F401
    EVENT_KINDS,
    load_events,
    obs_report,
    validate_events,
)
from repro.obs.resources import (  # noqa: F401
    ResourceSnapshot,
    resource_record,
    snapshot_resources,
)
from repro.obs.telemetry import (  # noqa: F401
    NULL_COUNTER,
    NULL_SPAN,
    Counter,
    Gauge,
    JsonlSink,
    MemorySink,
    NullSink,
    Telemetry,
    configure_telemetry,
    get_telemetry,
    reset_telemetry,
    use_telemetry,
)

__all__ = [
    "Counter",
    "EVENT_KINDS",
    "Gauge",
    "JsonlSink",
    "MemorySink",
    "NULL_COUNTER",
    "NULL_SPAN",
    "NullSink",
    "ResourceSnapshot",
    "Telemetry",
    "configure_telemetry",
    "format_bytes",
    "format_count",
    "format_duration",
    "format_rate",
    "get_telemetry",
    "load_events",
    "obs_report",
    "reset_telemetry",
    "resource_record",
    "snapshot_resources",
    "use_telemetry",
    "validate_events",
]
