"""Load, validate, and render telemetry JSONL logs (``repro obs report``).

A telemetry log is self-contained: one JSON object per line, each with
``ev``/``name``/``t`` plus kind-specific fields (the schema lives in
:mod:`repro.obs.telemetry` and README's "Observability" section).  The
report is a pure view: span aggregates and a session timeline, counter
totals (counter events carry deltas, so summing per name is correct),
last-value gauges, and one section per campaign cell with its CPU/RSS
figures and span tree.

Module-level imports here must stay stdlib-only: ``repro.obs`` is imported
by the storage and trace-codec hot paths, so anything heavier would create
import cycles.  Table rendering is borrowed from ``repro.metrics.report``
lazily, at call time.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.format import format_bytes, format_count, format_duration

#: Every event kind a telemetry log may contain.
EVENT_KINDS = ("meta", "span", "counter", "gauge", "event", "abort", "resources")

#: Required kind-specific fields, checked by :func:`validate_events`.
_REQUIRED_FIELDS: Dict[str, Tuple[Tuple[str, type], ...]] = {
    "meta": (("attrs", dict),),
    "span": (("path", str), ("depth", int), ("start", (int, float)), ("dur", (int, float))),
    "counter": (("value", (int, float)),),
    "gauge": (("value", (int, float)),),
    "event": (),
    "abort": (("error", str), ("error_type", str)),
    "resources": (("fields", dict),),
}


def load_events(path: Union[str, os.PathLike]) -> List[Dict[str, Any]]:
    """Parse a telemetry JSONL file into a list of event dicts.

    Raises :class:`ValueError` (with the line number) on anything that is
    not one JSON object per line; blank lines are skipped.
    """
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{number}: not valid JSON: {error}") from error
            if not isinstance(event, dict):
                raise ValueError(
                    f"{path}:{number}: telemetry events are JSON objects, "
                    f"got {type(event).__name__}"
                )
            events.append(event)
    return events


def validate_events(events: Iterable[Dict[str, Any]]) -> List[str]:
    """Check events against the documented schema; returns the problems.

    An empty list means the log is schema-clean.  Unknown extra fields are
    allowed (the schema is open for forward compatibility); unknown event
    kinds, missing required fields, and wrongly-typed values are not.
    """
    problems: List[str] = []
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        kind = event.get("ev")
        if kind not in _REQUIRED_FIELDS:
            problems.append(f"{where}: unknown ev {kind!r} (known: {', '.join(EVENT_KINDS)})")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where} ({kind}): 'name' must be a string")
        if not isinstance(event.get("t"), (int, float)) or isinstance(event.get("t"), bool):
            problems.append(f"{where} ({kind}): 't' must be a number")
        for field, expected in _REQUIRED_FIELDS[kind]:
            value = event.get(field)
            if value is None or not isinstance(value, expected) or isinstance(value, bool):
                problems.append(
                    f"{where} ({kind} {event.get('name')!r}): missing or "
                    f"mistyped field {field!r}"
                )
        cell = event.get("cell")
        if cell is not None and not isinstance(cell, str):
            problems.append(f"{where} ({kind}): 'cell' must be a string when present")
    return problems


def format_metric(name: str, value: Union[int, float]) -> str:
    """Format a counter/gauge value by what its name says it measures."""
    if name.endswith("_seconds") or name.endswith(".seconds"):
        return format_duration(float(value))
    if name.endswith("_bytes") or name.endswith(".bytes"):
        return format_bytes(value)
    return format_count(value)


def _timeline_bar(start: float, duration: float, wall: float, width: int) -> str:
    offset = min(width - 1, int((start / wall) * width)) if wall > 0 else 0
    length = max(1, int((duration / wall) * width)) if wall > 0 else 1
    length = min(length, width - offset)
    return " " * offset + "#" * length + " " * (width - offset - length)


def _span_tree_lines(spans: List[Dict[str, Any]], limit: int = 40) -> List[str]:
    """Indented one-line-per-span rendering, in start order."""
    ordered = sorted(spans, key=lambda s: (s.get("start", 0.0), s.get("depth", 0)))
    lines = []
    for span in ordered[:limit]:
        depth = int(span.get("depth", 0))
        name = span.get("name", "?")
        note = f" [{span['error']}]" if span.get("error") else ""
        lines.append(
            f"  {'  ' * depth}{name}  {format_duration(float(span.get('dur', 0.0)))}"
            f" @ {format_duration(float(span.get('start', 0.0)))}{note}"
        )
    if len(ordered) > limit:
        lines.append(f"  ... {len(ordered) - limit} more span(s)")
    return lines


def obs_report(
    events: List[Dict[str, Any]],
    cell_filter: Optional[str] = None,
    width: int = 50,
) -> str:
    """Render a telemetry event list as the ``repro obs report`` view."""
    from repro.metrics.report import ascii_table

    spans = [e for e in events if e.get("ev") == "span"]
    counters = [e for e in events if e.get("ev") == "counter"]
    gauges = [e for e in events if e.get("ev") == "gauge"]
    aborts = [e for e in events if e.get("ev") == "abort"]
    resources = [e for e in events if e.get("ev") == "resources"]
    metas = [e for e in events if e.get("ev") == "meta"]

    parts: List[str] = [
        f"telemetry log: {len(events)} event(s) "
        f"({len(spans)} spans, {len(counters)} counters, {len(aborts)} aborts)"
    ]
    if metas:
        attrs = metas[0].get("attrs", {})
        parts.append(
            "session: "
            + "  ".join(f"{key}={attrs[key]}" for key in sorted(attrs))
        )

    # Span aggregates over every cell and the session alike.
    if spans:
        totals: Dict[str, List[float]] = {}
        for span in spans:
            totals.setdefault(str(span.get("path", span.get("name", "?"))), []).append(
                float(span.get("dur", 0.0))
            )
        rows = [
            [
                path,
                len(durations),
                format_duration(sum(durations)),
                format_duration(sum(durations) / len(durations)),
                format_duration(max(durations)),
            ]
            for path, durations in sorted(
                totals.items(), key=lambda item: -sum(item[1])
            )[:20]
        ]
        parts.append("")
        parts.append(
            ascii_table(
                ["span path", "calls", "total", "mean", "max"],
                rows,
                title="top spans by total time",
            )
        )

    # Timeline of session-level spans (cell spans are cell-relative).
    session_spans = [s for s in spans if "cell" not in s]
    if session_spans:
        wall = max(float(s.get("start", 0.0)) + float(s.get("dur", 0.0)) for s in session_spans)
        label_width = max(len(str(s.get("path", "?"))) for s in session_spans[:30])
        parts.append("")
        parts.append(f"session span timeline (wall {format_duration(wall)})")
        for span in sorted(session_spans, key=lambda s: s.get("start", 0.0))[:30]:
            start = float(span.get("start", 0.0))
            duration = float(span.get("dur", 0.0))
            bar = _timeline_bar(start, duration, wall, width)
            parts.append(
                f"{str(span.get('path', '?')).ljust(label_width)} |{bar}| "
                f"{format_duration(duration)}"
            )

    # Counter events carry deltas; summing per name gives true totals.
    sums: Dict[str, float] = {}
    for event in counters:
        sums[str(event.get("name", "?"))] = sums.get(str(event.get("name", "?")), 0) + event.get("value", 0)
    if counters:
        rows = [
            [name, format_metric(name, value), format_count(value)]
            for name, value in sorted(sums.items(), key=lambda item: -abs(item[1]))
        ]
        parts.append("")
        parts.append(ascii_table(["counter", "total", "raw"], rows, title="counter totals"))

    # Fault-injection section: what the chaos plan fired, which workers it
    # hit, and how much retrying/backoff the faults caused.
    plain_events = [e for e in events if e.get("ev") == "event"]
    injected = [e for e in plain_events if e.get("name") == "fault.injected"]
    worker_errors = [e for e in plain_events if e.get("name") == "queue.worker_error"]
    retries = sums.get("faults.retries", 0)
    backoff = sums.get("faults.backoff_seconds", 0.0)
    if injected or worker_errors or retries:
        parts.append("")
        parts.append(
            f"fault injection: {len(injected)} fault(s) fired, "
            f"{format_count(retries)} retr{'y' if retries == 1 else 'ies'}, "
            f"{format_duration(float(backoff))} total backoff"
        )
        by_fault: Dict[Tuple[str, str], Dict[str, Any]] = {}
        for event in injected:
            attrs = event.get("attrs") or {}
            key = (str(attrs.get("site", "?")), str(attrs.get("action", "?")))
            entry = by_fault.setdefault(key, {"count": 0, "pids": set()})
            entry["count"] += 1
            if attrs.get("pid") is not None:
                entry["pids"].add(attrs["pid"])
        for (site, action), entry in sorted(by_fault.items()):
            pids = ", ".join(str(pid) for pid in sorted(entry["pids"]))
            suffix = f" (pid {pids})" if pids else ""
            parts.append(f"  {site} {action} x{entry['count']}{suffix}")
        by_stage: Dict[Tuple[str, str], int] = {}
        for event in worker_errors:
            attrs = event.get("attrs") or {}
            key = (str(attrs.get("stage", "?")), str(attrs.get("worker", "?")))
            by_stage[key] = by_stage.get(key, 0) + 1
        for (stage, worker), count in sorted(by_stage.items()):
            parts.append(
                f"  worker {worker}: gave up at {stage} x{count} "
                "(retries exhausted; cell released for another worker)"
            )

    if gauges:
        last: Dict[str, Any] = {}
        for event in gauges:
            last[str(event.get("name", "?"))] = event.get("value", 0)
        rows = [[name, format_metric(name, value)] for name, value in sorted(last.items())]
        parts.append("")
        parts.append(ascii_table(["gauge", "last value"], rows, title="gauges (last value)"))

    for event in aborts:
        parts.append("")
        parts.append(
            f"ABORT {event.get('name', '?')}: {event.get('error_type', '?')}: "
            f"{event.get('error', '?')}"
        )

    # Per-cell sections: resources plus the cell's span tree.
    cell_ids: List[str] = []
    for event in events:
        cell = event.get("cell")
        if isinstance(cell, str) and cell not in cell_ids:
            cell_ids.append(cell)
    for cell_id in cell_ids:
        if cell_filter and cell_filter not in cell_id:
            continue
        parts.append("")
        parts.append(f"--- cell {cell_id} ---")
        for event in resources:
            if event.get("cell") == cell_id:
                fields = event.get("fields", {})
                parts.append(
                    f"  cpu {format_duration(fields.get('cpu_seconds', 0.0))}"
                    f" (user {format_duration(fields.get('cpu_user_seconds', 0.0))}"
                    f" / sys {format_duration(fields.get('cpu_system_seconds', 0.0))})"
                    f"  peak rss {format_bytes(fields.get('max_rss_kb', 0) * 1024)}"
                    f"  gc {fields.get('gc_collections', 0)} collection(s)"
                )
        cell_spans = [s for s in spans if s.get("cell") == cell_id]
        if cell_spans:
            parts.extend(_span_tree_lines(cell_spans))
        cell_counters = {
            str(e.get("name")): e.get("value", 0)
            for e in counters
            if e.get("cell") == cell_id
        }
        if cell_counters:
            summary = "  ".join(
                f"{name}={format_metric(name, value)}"
                for name, value in sorted(cell_counters.items())
            )
            parts.append(f"  counters: {summary}")
    return "\n".join(parts)
