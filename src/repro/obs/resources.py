"""Per-process resource accounting for campaign cells.

The executor snapshots before and after each cell and stores the diff in
the cell record (next to ``elapsed_seconds``), so ``results.json`` answers
"which cell ate the CPU/memory?" without re-running anything.

``resource.getrusage`` is POSIX-only; on platforms without it the CPU
times fall back to :func:`os.times` and ``max_rss_kb`` reports 0.  Note
that ``ru_maxrss`` is a process-lifetime *peak*: in a multiprocessing
pool a worker's later cells inherit the peak of its earlier ones, so
treat per-cell RSS as an upper bound, not an exact attribution.
"""

from __future__ import annotations

import gc
import os
import sys
from dataclasses import dataclass
from typing import Any, Dict

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX fallback
    _resource = None


@dataclass(frozen=True)
class ResourceSnapshot:
    """One point-in-time reading of the process's resource usage."""

    cpu_user: float
    cpu_system: float
    max_rss_kb: int
    gc_collections: int
    gc_collected: int
    gc_uncollectable: int


def snapshot_resources() -> ResourceSnapshot:
    """Read the current process's CPU time, peak RSS, and GC totals."""
    if _resource is not None:
        usage = _resource.getrusage(_resource.RUSAGE_SELF)
        cpu_user = usage.ru_utime
        cpu_system = usage.ru_stime
        max_rss = int(usage.ru_maxrss)
        if sys.platform == "darwin":
            # macOS reports ru_maxrss in bytes; Linux in kilobytes.
            max_rss //= 1024
    else:  # pragma: no cover - non-POSIX fallback
        times = os.times()
        cpu_user, cpu_system, max_rss = times.user, times.system, 0
    collections = collected = uncollectable = 0
    for generation in gc.get_stats():
        collections += generation.get("collections", 0)
        collected += generation.get("collected", 0)
        uncollectable += generation.get("uncollectable", 0)
    return ResourceSnapshot(
        cpu_user=cpu_user,
        cpu_system=cpu_system,
        max_rss_kb=max_rss,
        gc_collections=collections,
        gc_collected=collected,
        gc_uncollectable=uncollectable,
    )


def resource_record(before: ResourceSnapshot, after: ResourceSnapshot) -> Dict[str, Any]:
    """The JSON-serialisable ``resources`` field of a cell record.

    CPU and GC figures are deltas over the measured block; ``max_rss_kb``
    is the process peak at the end of it (peaks cannot be diffed).
    """
    cpu_user = max(0.0, after.cpu_user - before.cpu_user)
    cpu_system = max(0.0, after.cpu_system - before.cpu_system)
    return {
        "cpu_user_seconds": round(cpu_user, 6),
        "cpu_system_seconds": round(cpu_system, 6),
        "cpu_seconds": round(cpu_user + cpu_system, 6),
        "max_rss_kb": after.max_rss_kb,
        "gc_collections": after.gc_collections - before.gc_collections,
        "gc_collected": after.gc_collected - before.gc_collected,
        "gc_uncollectable": after.gc_uncollectable - before.gc_uncollectable,
    }
