"""Process-local telemetry: hierarchical spans, counters, gauges, JSONL sinks.

Design constraints, in order:

1. **Disabled must be free.**  Telemetry ships importable everywhere and off
   by default; ``bench_engine`` guards the zero-observer replay at <= 2%
   overhead with telemetry off.  Every entry point therefore collapses to a
   shared singleton when disabled: :meth:`Telemetry.span` returns
   :data:`NULL_SPAN` (an empty context manager), :meth:`Telemetry.counter`
   returns :data:`NULL_COUNTER` (whose ``value`` is pinned at 0), and no
   registry entry, event dict, or file is ever created.  Hot classes cache
   ``telemetry.counter(...)`` **at construction time only when enabled** and
   keep ``None`` otherwise, so their per-operation cost while off is a
   single attribute-is-None check.
2. **Stdlib only.**  This module is imported by the storage substrate and
   the binary trace codec; it must not import anything from ``repro``.
3. **One JSON object per line.**  Sinks receive plain dicts; the JSONL sink
   writes them verbatim, one per line, so any log is greppable and
   ``repro obs report`` can re-render it.

Event schema (every event carries ``ev``, ``name``, and ``t`` — seconds
since the telemetry session started, monotonic):

========== ============================================================
``ev``     extra fields
========== ============================================================
meta       ``attrs`` (pid, python, platform, unix_time)
span       ``path`` (slash-joined ancestry), ``depth``, ``start``, ``dur``,
           optional ``attrs``, optional ``error`` (exception class name)
counter    ``value`` (the delta accumulated since the previous flush)
gauge      ``value`` (last value set)
event      optional ``attrs``
abort      ``error``, ``error_type``
resources  ``fields`` (see :mod:`repro.obs.resources`)
========== ============================================================

Events re-emitted from a campaign cell additionally carry ``cell`` (the
cell id); their ``t``/``start`` are relative to that *cell's* session.
Counter events always carry deltas, so summing a log's counter events per
name yields correct totals no matter how many cells or flushes produced
them.
"""

from __future__ import annotations

import json
import os
import sys
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Union


# ----------------------------------------------------------------- primitives
class Counter:
    """A monotonic counter; hot paths bump ``.value`` directly."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: Union[int, float] = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A last-value-wins instrument (e.g. requests/sec of the latest run)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self.value})"


class _NullCounter:
    """The shared counter returned while disabled: accepts adds, stays 0."""

    __slots__ = ()
    name = "null"

    @property
    def value(self) -> int:
        return 0

    def add(self, amount: Union[int, float] = 1) -> None:
        pass


class _NullSpan:
    """The shared no-op context manager returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: Singletons handed out whenever telemetry is disabled.  Identity-testable:
#: the no-op tests assert these exact objects come back.
NULL_COUNTER = _NullCounter()
NULL_SPAN = _NullSpan()


# ---------------------------------------------------------------------- sinks
class NullSink:
    """Swallows every event (disabled telemetry)."""

    def emit(self, event: Dict[str, Any]) -> None:
        pass

    def close(self) -> None:
        pass


class MemorySink:
    """Buffers events in a list (campaign worker cells, tests)."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class JsonlSink:
    """Writes one JSON object per line to ``path`` (created eagerly)."""

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = str(path)
        self._handle = open(self.path, "w", encoding="utf-8")

    def emit(self, event: Dict[str, Any]) -> None:
        if self._handle is not None:
            self._handle.write(json.dumps(event, sort_keys=True, default=str) + "\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# ------------------------------------------------------------------ telemetry
class _Span:
    """A live span: times a block and emits one ``span`` event on exit."""

    __slots__ = ("_telemetry", "name", "attrs", "_start", "_depth")

    def __init__(self, telemetry: "Telemetry", name: str, attrs: Dict[str, Any]) -> None:
        self._telemetry = telemetry
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        telemetry = self._telemetry
        self._depth = len(telemetry._stack)
        telemetry._stack.append(self.name)
        self._start = telemetry.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        telemetry = self._telemetry
        duration = telemetry.now() - self._start
        # Truncate rather than pop: a child span that never exited (its
        # block raised past it) must not leave the ancestry poisoned.
        path = "/".join(telemetry._stack[: self._depth + 1])
        del telemetry._stack[self._depth:]
        fields: Dict[str, Any] = {
            "path": path,
            "depth": self._depth,
            "start": round(self._start, 6),
            "dur": round(duration, 6),
        }
        if self.attrs:
            fields["attrs"] = self.attrs
        if exc_type is not None:
            fields["error"] = exc_type.__name__
        telemetry.emit("span", self.name, **fields)
        return False


class Telemetry:
    """A process-local telemetry session (not thread-safe by design).

    A disabled instance (the default) is inert: no registry, no sink
    writes, shared no-op singletons from every factory method.
    """

    def __init__(self, enabled: bool = False, sink: Optional[Any] = None) -> None:
        self.enabled = bool(enabled)
        if sink is None:
            sink = MemorySink() if self.enabled else NullSink()
        self.sink = sink
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._stack: List[str] = []
        self._t0 = time.perf_counter()

    # ------------------------------------------------------------- plumbing
    def now(self) -> float:
        """Seconds since this telemetry session started (monotonic)."""
        return time.perf_counter() - self._t0

    def emit(self, ev: str, name: str, **fields: Any) -> None:
        """Emit one structured event to the sink (no-op while disabled)."""
        if not self.enabled:
            return
        event: Dict[str, Any] = {"ev": ev, "name": name, "t": round(self.now(), 6)}
        for key, value in fields.items():
            if value is not None:
                event[key] = value
        self.sink.emit(event)

    def ingest(self, event: Dict[str, Any]) -> None:
        """Forward an already-formed event dict (cell re-emission)."""
        if self.enabled:
            self.sink.emit(event)

    # ---------------------------------------------------------- instruments
    def counter(self, name: str) -> Counter:
        """The named counter (created on first use; NULL_COUNTER while off)."""
        if not self.enabled:
            return NULL_COUNTER  # type: ignore[return-value]
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def add(self, name: str, amount: Union[int, float] = 1) -> None:
        """Bump the named counter (cold-path convenience)."""
        if self.enabled:
            self.counter(name).value += amount

    def gauge(self, name: str, value: Union[int, float]) -> None:
        """Set the named gauge to ``value`` (last write wins)."""
        if not self.enabled:
            return
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        gauge.value = value

    def span(self, name: str, **attrs: Any) -> Union[_Span, _NullSpan]:
        """A timed context manager; nested spans form slash-joined paths."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Emit a point-in-time ``event`` record."""
        self.emit("event", name, attrs=attrs or None)

    def abort(self, name: str, error: BaseException) -> None:
        """Emit an ``abort`` event for a raising operation."""
        self.emit("abort", name, error=str(error), error_type=type(error).__name__)

    # ------------------------------------------------------------ snapshots
    def counter_values(self) -> Dict[str, Union[int, float]]:
        """Current counter values by name (empty while disabled)."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauge_values(self) -> Dict[str, Union[int, float]]:
        """Current gauge values by name (empty while disabled)."""
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def flush(self) -> None:
        """Emit every non-zero counter (as a delta) and gauge, then reset
        the counters — so repeated flushes never double-count."""
        if not self.enabled:
            return
        for name, counter in sorted(self._counters.items()):
            if counter.value:
                self.emit("counter", name, value=counter.value)
                counter.value = 0
        for name, gauge in sorted(self._gauges.items()):
            self.emit("gauge", name, value=gauge.value)

    def close(self) -> None:
        """Flush pending instrument values and close the sink."""
        self.flush()
        self.sink.close()


# ------------------------------------------------------------- current session
_CURRENT = Telemetry(enabled=False)


def get_telemetry() -> Telemetry:
    """The process-current telemetry session (disabled unless configured)."""
    return _CURRENT


def configure_telemetry(
    path: Optional[Union[str, os.PathLike]] = None,
    sink: Optional[Any] = None,
    enabled: bool = True,
) -> Telemetry:
    """Install (and return) a new process-current telemetry session.

    ``path`` selects a :class:`JsonlSink`; ``sink`` overrides it; with
    neither, an enabled session buffers into a :class:`MemorySink`.  The
    session-start ``meta`` event is emitted here, so logs are self-dating.
    """
    global _CURRENT
    if sink is None and path is not None:
        sink = JsonlSink(path)
    telemetry = Telemetry(enabled=enabled, sink=sink)
    if telemetry.enabled:
        telemetry.emit(
            "meta",
            "session",
            attrs={
                "pid": os.getpid(),
                "python": sys.version.split()[0],
                "platform": sys.platform,
                "unix_time": round(time.time(), 3),
            },
        )
    _CURRENT = telemetry
    return telemetry


def reset_telemetry() -> None:
    """Install a fresh disabled session (tests; does not close the old sink)."""
    global _CURRENT
    _CURRENT = Telemetry(enabled=False)


@contextmanager
def use_telemetry(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Temporarily make ``telemetry`` the process-current session."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = telemetry
    try:
        yield telemetry
    finally:
        _CURRENT = previous


def _activate_from_env() -> None:
    """Honor ``REPRO_TELEMETRY`` at import: a path means a JSONL sink, a
    bare truthy value means an in-memory sink.  Activation failures warn
    instead of breaking every ``repro`` import."""
    value = os.environ.get("REPRO_TELEMETRY", "")
    if not value or value == "0":
        return
    try:
        if value in ("1", "mem", "memory"):
            configure_telemetry(sink=MemorySink())
        else:
            configure_telemetry(path=value)
    except OSError as error:  # pragma: no cover - defensive
        print(f"repro: cannot activate REPRO_TELEMETRY={value!r}: {error}", file=sys.stderr)
        return
    # Nothing else owns this session (unlike `repro sweep --telemetry`,
    # which closes its own sink), so flush pending counters/gauges at
    # interpreter exit — otherwise an env-activated log has spans only.
    import atexit

    atexit.register(lambda: _CURRENT.close())


_activate_from_env()
