"""Adversarial request sequences from the paper's arguments and lower bounds."""

from __future__ import annotations

from typing import List, Optional

from repro.workloads.base import Request, Trace


def lower_bound_trace(delta: int, label: Optional[str] = None) -> Trace:
    """The Lemma 3.7 lower-bound instance.

    Insert one size-``delta`` object, then ``delta`` size-1 objects, then
    delete the large object.  Any reallocator maintaining a ``1.5 V``
    footprint must either move the large object (cost ``f(delta)``) or move
    ``Omega(delta)`` small objects when the large one is deleted (cost
    ``Omega(delta f(1)) ⊆ Omega(f(delta))`` for subadditive ``f``).
    """
    if delta < 1:
        raise ValueError("delta must be at least 1")
    requests: List[Request] = [Request.insert("big", delta)]
    requests.extend(Request.insert(f"small-{i}", 1) for i in range(delta))
    requests.append(Request.delete("big"))
    return Trace(requests, label or f"lower-bound(delta={delta})")


def large_then_small_trace(
    delta: int,
    rounds: int = 8,
    small_size: int = 1,
    label: Optional[str] = None,
) -> Trace:
    """Repeatedly delete large objects and refill with small ones.

    The counterexample from the Section 2 intuition: for logging-and-
    compacting under a *constant* cost function, every round forces a
    compaction that moves ``Theta(delta / small_size)`` small objects to
    recover the hole left by one large deletion, so the amortized cost per
    delete is ``Theta(delta)`` while the optimum is ``O(1)``.
    """
    if delta < 1 or rounds < 1 or small_size < 1 or small_size > delta:
        raise ValueError("invalid parameters")
    requests: List[Request] = []
    small_count = delta // small_size
    requests.extend(Request.insert(f"big-{r}", delta) for r in range(rounds))
    next_small = 0
    for r in range(rounds):
        requests.append(Request.delete(f"big-{r}"))
        for _ in range(small_count):
            requests.append(Request.insert(f"small-{next_small}", small_size))
            next_small += 1
    return Trace(requests, label or f"large-then-small(delta={delta},rounds={rounds})")


def repeated_large_delete_trace(
    delta: int,
    rounds: Optional[int] = None,
    label: Optional[str] = None,
) -> Trace:
    """Adversary for logging-and-compacting under constant (seek) costs.

    Each round inserts one size-``delta`` object, then one size-1 object, then
    deletes the large object again.  The large deletion leaves a hole in
    front of the growing population of small objects, so a logging-and-
    compacting allocator keeps compacting all of the small objects: under a
    constant cost function its reallocation cost per round is proportional to
    the number of small objects while the allocation cost per round is
    ``O(1)``, so the cost ratio grows linearly with ``delta`` — the Section 2
    counterexample.  (The default ``rounds = delta - 1`` keeps the small
    population just below ``delta`` so every round stays above the compaction
    threshold.)
    """
    if delta < 2:
        raise ValueError("delta must be at least 2")
    if rounds is None:
        rounds = delta - 1
    if rounds < 1:
        raise ValueError("rounds must be at least 1")
    requests: List[Request] = []
    for r in range(rounds):
        requests.append(Request.insert(f"big-{r}", delta))
        requests.append(Request.insert(f"small-{r}", 1))
        requests.append(Request.delete(f"big-{r}"))
    return Trace(requests, label or f"repeated-large-delete(delta={delta},rounds={rounds})")


def small_flood_trace(
    max_exponent: int,
    small_count: Optional[int] = None,
    label: Optional[str] = None,
) -> Trace:
    """Adversary for the size-class-gap scheme under linear (bandwidth) costs.

    One object of every power-of-two size from ``2**max_exponent`` down to 2
    is inserted first (so every size class is occupied and tightly packed),
    followed by a long flood of size-1 insertions.  In the size-class-gap
    scheme each small insertion that finds no slack displaces one object from
    each larger class; amortized over the flood the moved volume per unit
    inserted is ``Theta(log Delta)``, so its linear-cost competitive ratio
    grows with ``log Delta`` — whereas the cost-oblivious reallocator's stays
    a constant independent of ``Delta``.
    """
    if max_exponent < 1:
        raise ValueError("max_exponent must be at least 1")
    if small_count is None:
        small_count = 4 << max_exponent
    requests: List[Request] = [
        Request.insert(f"seed-{exponent}", 1 << exponent)
        for exponent in range(max_exponent, 0, -1)
    ]
    requests.extend(Request.insert(f"unit-{i}", 1) for i in range(small_count))
    return Trace(requests, label or f"small-flood(k={max_exponent},n={small_count})")


def descending_powers_trace(
    max_exponent: int,
    waves: int = 4,
    label: Optional[str] = None,
) -> Trace:
    """Adversary for the size-class-gap scheme under linear (bandwidth) costs.

    Each wave inserts one object of every power-of-two size from the largest
    down to the smallest and then deletes them all.  Inserting a smaller
    class when every larger class sits flush against it displaces one object
    from *each* larger class, so the moved volume per insert is
    ``Theta(Delta)`` and the linear-cost ratio grows like ``log Delta`` —
    while the cost-oblivious reallocator stays at a constant.
    """
    if max_exponent < 1 or waves < 1:
        raise ValueError("invalid parameters")
    requests: List[Request] = []
    for wave in range(waves):
        names = []
        for exponent in range(max_exponent, -1, -1):
            name = f"w{wave}-e{exponent}"
            requests.append(Request.insert(name, 1 << exponent))
            names.append(name)
        for name in names:
            requests.append(Request.delete(name))
    return Trace(requests, label or f"descending-powers(k={max_exponent},waves={waves})")


def fragmentation_attack_trace(
    pairs: int,
    small_size: int = 1,
    large_size: int = 64,
    label: Optional[str] = None,
) -> Trace:
    """Classic fragmentation attack against non-moving allocators.

    Insert alternating small/large objects, then delete all the large ones
    and insert one object slightly larger than ``large_size``: none of the
    holes can hold it, so a non-moving allocator's footprint stays near the
    peak even though the live volume collapsed.
    """
    if pairs < 1 or small_size < 1 or large_size < small_size:
        raise ValueError("invalid parameters")
    requests: List[Request] = []
    for i in range(pairs):
        requests.append(Request.insert(f"small-{i}", small_size))
        requests.append(Request.insert(f"large-{i}", large_size))
    for i in range(pairs):
        requests.append(Request.delete(f"large-{i}"))
    requests.append(Request.insert("straggler", large_size + 1))
    return Trace(requests, label or f"fragmentation(pairs={pairs})")


def sawtooth_trace(
    peak_objects: int,
    rounds: int = 4,
    size: int = 8,
    keep_fraction: float = 0.25,
    label: Optional[str] = None,
) -> Trace:
    """Volume repeatedly ramps up to a peak and collapses to a floor.

    Exercises how quickly each allocator's footprint tracks a shrinking
    volume — the regime where non-moving allocators are provably stuck and
    reallocators must keep paying to stay tight.
    """
    if peak_objects < 4 or rounds < 1 or not 0 < keep_fraction < 1:
        raise ValueError("invalid parameters")
    requests: List[Request] = []
    next_id = 0
    live: List[int] = []
    keep = max(1, int(peak_objects * keep_fraction))
    for _ in range(rounds):
        while len(live) < peak_objects:
            requests.append(Request.insert(next_id, size))
            live.append(next_id)
            next_id += 1
        while len(live) > keep:
            victim = live.pop(0)
            requests.append(Request.delete(victim))
    for victim in live:
        requests.append(Request.delete(victim))
    return Trace(requests, label or f"sawtooth(peak={peak_objects},rounds={rounds})")
