"""Request and trace datatypes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, List, Optional, Protocol, Sequence, Tuple

INSERT = "insert"
DELETE = "delete"


class RequestSource(Protocol):
    """Anything that can feed requests to a replay, one at a time.

    The streaming counterpart of :class:`Trace`: ``Allocator.run``, the
    :class:`~repro.engine.SimulationEngine`, and ``repro.metrics.run_trace``
    accept any object satisfying this protocol, so a multi-million-request
    replay (e.g. a :class:`~repro.workloads.replay.TraceFileSource` over an
    on-disk v2 file) never has to materialise its trace.  Iteration must be
    repeatable: each ``iter()`` yields the same requests from the start.
    A :class:`Trace` satisfies the protocol trivially.
    """

    label: str

    def __iter__(self) -> Iterator["Request"]: ...


@dataclass(frozen=True)
class Request:
    """One online request: insert an object of a given size, or delete it."""

    op: str
    name: Hashable
    size: int = 0

    def __post_init__(self) -> None:
        if self.op not in (INSERT, DELETE):
            raise ValueError(f"unknown op {self.op!r}")
        if self.op == INSERT and self.size < 1:
            raise ValueError("insert requests need a positive size")

    @property
    def is_insert(self) -> bool:
        return self.op == INSERT

    @property
    def is_delete(self) -> bool:
        return self.op == DELETE

    @staticmethod
    def insert(name: Hashable, size: int) -> "Request":
        return Request(INSERT, name, size)

    @staticmethod
    def delete(name: Hashable) -> "Request":
        return Request(DELETE, name)


class Trace:
    """An ordered sequence of requests plus convenience statistics.

    ``metadata`` is a free-form dict carried alongside the requests (seed,
    generator parameters, provenance); the v1 trace file format round-trips
    it, and campaign workloads stamp it with their spec entry.
    """

    def __init__(
        self,
        requests: Iterable[Request],
        label: str = "trace",
        metadata: Optional[dict] = None,
    ) -> None:
        self.requests: List[Request] = list(requests)
        self.label = label
        self.metadata: dict = dict(metadata) if metadata else {}
        self._validate()

    def _validate(self) -> None:
        live = {}
        for index, request in enumerate(self.requests):
            if request.is_insert:
                if request.name in live:
                    raise ValueError(
                        f"request {index}: {request.name!r} inserted while active"
                    )
                live[request.name] = request.size
            else:
                if request.name not in live:
                    raise ValueError(
                        f"request {index}: {request.name!r} deleted while inactive"
                    )
                del live[request.name]

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __getitem__(self, index):
        return self.requests[index]

    @property
    def num_inserts(self) -> int:
        return sum(1 for r in self.requests if r.is_insert)

    @property
    def num_deletes(self) -> int:
        return sum(1 for r in self.requests if r.is_delete)

    @property
    def delta(self) -> int:
        """Largest object size appearing in the trace."""
        return max((r.size for r in self.requests if r.is_insert), default=0)

    @property
    def total_inserted_volume(self) -> int:
        return sum(r.size for r in self.requests if r.is_insert)

    def volume_profile(self) -> List[int]:
        """Live volume after each request."""
        live = {}
        profile = []
        for request in self.requests:
            if request.is_insert:
                live[request.name] = request.size
            else:
                del live[request.name]
            profile.append(sum(live.values()))
        return profile

    def peak_volume(self) -> int:
        profile = self.volume_profile()
        return max(profile) if profile else 0

    def final_live_objects(self) -> List[Tuple[Hashable, int]]:
        """Objects still active after the whole trace."""
        live = {}
        for request in self.requests:
            if request.is_insert:
                live[request.name] = request.size
            else:
                del live[request.name]
        return list(live.items())

    def prefix(self, count: int, label: Optional[str] = None) -> "Trace":
        """A shorter trace consisting of the first ``count`` requests that is
        still well-formed (dangling deletes cannot occur in a prefix)."""
        return Trace(self.requests[:count], label or f"{self.label}[:{count}]", metadata=self.metadata)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Trace {self.label!r} requests={len(self.requests)} "
            f"inserts={self.num_inserts} deletes={self.num_deletes}>"
        )


def trace_from_pairs(pairs: Sequence[Tuple[str, Hashable, int]], label: str = "trace") -> Trace:
    """Build a trace from ``("insert"|"delete", name, size)`` tuples."""
    requests = []
    for op, name, size in pairs:
        if op == INSERT:
            requests.append(Request.insert(name, size))
        else:
            requests.append(Request.delete(name))
    return Trace(requests, label=label)
