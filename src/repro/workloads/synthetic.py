"""Synthetic online workloads."""

from __future__ import annotations

import random
from typing import List, Optional

from repro.workloads.base import Request, Trace
from repro.workloads.sizes import DatabaseBlockSizes, SizeDistribution, UniformSizes


def churn_trace(
    num_requests: int,
    sizes: Optional[SizeDistribution] = None,
    target_live: int = 200,
    seed: int = 0,
    delete_fraction: float = 0.5,
    label: Optional[str] = None,
) -> Trace:
    """Steady-state churn: a warm-up of inserts, then a mix of inserts and
    deletes that keeps roughly ``target_live`` objects active.

    This is the workhorse workload for the footprint and cost experiments:
    the live volume stays roughly constant while a large multiple of it flows
    through the allocator.
    """
    sizes = sizes if sizes is not None else UniformSizes(1, 64)
    rng = random.Random(seed)
    requests: List[Request] = []
    live: List[int] = []
    next_id = 0
    for _ in range(num_requests):
        want_delete = live and (
            len(live) > target_live or (len(live) > target_live // 4 and rng.random() < delete_fraction)
        )
        if want_delete:
            victim = live.pop(rng.randrange(len(live)))
            requests.append(Request.delete(victim))
        else:
            next_id += 1
            requests.append(Request.insert(next_id, sizes(rng)))
            live.append(next_id)
    return Trace(requests, label or f"churn({sizes.name},n={num_requests})")


def grow_then_shrink_trace(
    num_objects: int,
    sizes: Optional[SizeDistribution] = None,
    seed: int = 0,
    order: str = "random",
    label: Optional[str] = None,
) -> Trace:
    """Insert ``num_objects`` objects, then delete all of them.

    ``order`` controls the deletion order: ``"fifo"`` (oldest first),
    ``"lifo"`` (newest first) or ``"random"``.  FIFO deletion against a
    non-moving allocator is the classic fragmentation generator.
    """
    sizes = sizes if sizes is not None else UniformSizes(1, 64)
    rng = random.Random(seed)
    requests = [Request.insert(i, sizes(rng)) for i in range(num_objects)]
    victims = list(range(num_objects))
    if order == "lifo":
        victims.reverse()
    elif order == "random":
        rng.shuffle(victims)
    elif order != "fifo":
        raise ValueError(f"unknown deletion order {order!r}")
    requests.extend(Request.delete(name) for name in victims)
    return Trace(requests, label or f"grow-shrink({sizes.name},{order},n={num_objects})")


def sliding_window_trace(
    num_objects: int,
    window: int,
    sizes: Optional[SizeDistribution] = None,
    seed: int = 0,
    label: Optional[str] = None,
) -> Trace:
    """FIFO lifetime: every object lives for exactly ``window`` insertions.

    Models a log-structured or queue-like workload where data expires in
    arrival order — the friendliest case for logging-and-compacting and the
    most adversarial for naive free-list reuse.
    """
    sizes = sizes if sizes is not None else UniformSizes(1, 64)
    rng = random.Random(seed)
    requests: List[Request] = []
    for index in range(num_objects):
        requests.append(Request.insert(index, sizes(rng)))
        if index >= window:
            requests.append(Request.delete(index - window))
    for index in range(max(0, num_objects - window), num_objects):
        requests.append(Request.delete(index))
    return Trace(requests, label or f"window({window},n={num_objects})")


def database_trace(
    num_requests: int,
    block: int = 64,
    working_set: int = 400,
    seed: int = 0,
    label: Optional[str] = None,
) -> Trace:
    """Block-translation-layer traffic of a B-tree-style storage engine.

    Node rewrites are modelled as delete-then-insert pairs of a fresh block
    whose compressed size differs slightly, node splits as an extra insert,
    and merges as an extra delete — the pattern that motivates reallocation
    in TokuDB-style engines.
    """
    sizes = DatabaseBlockSizes(block)
    rng = random.Random(seed)
    requests: List[Request] = []
    live: List[int] = []
    next_id = 0

    def fresh_insert() -> None:
        nonlocal next_id
        next_id += 1
        requests.append(Request.insert(next_id, sizes(rng)))
        live.append(next_id)

    while len(requests) < num_requests:
        if len(live) < working_set // 2:
            fresh_insert()
            continue
        roll = rng.random()
        if roll < 0.55 and live:
            # Node rewrite: the block is freed and rewritten at a new size.
            victim = live.pop(rng.randrange(len(live)))
            requests.append(Request.delete(victim))
            fresh_insert()
        elif roll < 0.75:
            # Node split: one extra block appears.
            fresh_insert()
        elif roll < 0.9 and len(live) > working_set // 2:
            # Node merge: one block disappears.
            victim = live.pop(rng.randrange(len(live)))
            requests.append(Request.delete(victim))
        else:
            fresh_insert()
        if len(live) > working_set * 2:
            victim = live.pop(rng.randrange(len(live)))
            requests.append(Request.delete(victim))
    return Trace(requests[:num_requests], label or f"database(block={block},n={num_requests})")
