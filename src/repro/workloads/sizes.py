"""Object-size distributions used by the synthetic workload generators."""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Sequence


class SizeDistribution(ABC):
    """Draws object sizes; each generator owns a seeded RNG for determinism."""

    name = "sizes"

    @abstractmethod
    def sample(self, rng: random.Random) -> int:
        """Return one object size (a positive integer)."""

    def __call__(self, rng: random.Random) -> int:
        size = self.sample(rng)
        if size < 1:
            raise ValueError(f"{self.name} produced a non-positive size {size}")
        return size


class FixedSizes(SizeDistribution):
    """Every object has the same size."""

    def __init__(self, size: int = 1) -> None:
        if size < 1:
            raise ValueError("size must be positive")
        self.size = size
        self.name = f"fixed({size})"

    def sample(self, rng: random.Random) -> int:
        return self.size


class UniformSizes(SizeDistribution):
    """Sizes uniform over ``[low, high]``."""

    def __init__(self, low: int = 1, high: int = 64) -> None:
        if not 1 <= low <= high:
            raise ValueError("need 1 <= low <= high")
        self.low = low
        self.high = high
        self.name = f"uniform({low},{high})"

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.low, self.high)


class PowerOfTwoSizes(SizeDistribution):
    """Sizes are powers of two with geometrically decreasing probability."""

    def __init__(self, min_exponent: int = 0, max_exponent: int = 8) -> None:
        if not 0 <= min_exponent <= max_exponent:
            raise ValueError("need 0 <= min_exponent <= max_exponent")
        self.min_exponent = min_exponent
        self.max_exponent = max_exponent
        self.name = f"pow2({min_exponent},{max_exponent})"

    def sample(self, rng: random.Random) -> int:
        exponent = self.min_exponent
        while exponent < self.max_exponent and rng.random() < 0.5:
            exponent += 1
        return 1 << exponent


class ZipfSizes(SizeDistribution):
    """Heavy-tailed sizes: mostly small objects, rare huge ones.

    ``P(size = k)`` is proportional to ``k ** -alpha`` for ``k`` in
    ``[1, max_size]``.
    """

    def __init__(self, alpha: float = 1.5, max_size: int = 1024) -> None:
        if alpha <= 0 or max_size < 1:
            raise ValueError("alpha must be positive and max_size >= 1")
        self.alpha = alpha
        self.max_size = max_size
        self.name = f"zipf({alpha:g},{max_size})"
        weights = [k ** -alpha for k in range(1, max_size + 1)]
        total = sum(weights)
        self._cumulative = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cumulative.append(acc)

    def sample(self, rng: random.Random) -> int:
        u = rng.random()
        lo, hi = 0, len(self._cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo + 1


class BimodalSizes(SizeDistribution):
    """Two populations: frequent small objects and occasional large ones.

    This is the regime where the cost function matters most — large deletions
    followed by small insertions is exactly the pattern the paper's lower
    bound (Lemma 3.7) and the logging-compaction counterexample exploit.
    """

    def __init__(
        self,
        small: int = 4,
        large: int = 512,
        large_fraction: float = 0.05,
    ) -> None:
        if small < 1 or large < small or not 0 <= large_fraction <= 1:
            raise ValueError("invalid bimodal parameters")
        self.small = small
        self.large = large
        self.large_fraction = large_fraction
        self.name = f"bimodal({small},{large})"

    def sample(self, rng: random.Random) -> int:
        if rng.random() < self.large_fraction:
            return self.large
        return self.small


class DatabaseBlockSizes(SizeDistribution):
    """Block sizes as produced by a B-tree-style storage engine.

    Mostly leaf nodes of a nominal block size (with +-25% jitter from
    compression), some internal nodes at a quarter of that, and a small
    fraction of large overflow/blob blocks — loosely modelled on the block
    translation traffic of TokuDB-style engines that motivated the paper.
    """

    def __init__(self, block: int = 64, overflow_factor: int = 16) -> None:
        if block < 4 or overflow_factor < 1:
            raise ValueError("block must be >= 4 and overflow_factor >= 1")
        self.block = block
        self.overflow_factor = overflow_factor
        self.name = f"dbblocks({block})"

    def sample(self, rng: random.Random) -> int:
        roll = rng.random()
        if roll < 0.70:  # compressed leaf node
            jitter = rng.uniform(0.75, 1.25)
            return max(1, int(self.block * jitter))
        if roll < 0.95:  # internal node
            return max(1, self.block // 4)
        # overflow / blob block
        return self.block * rng.randint(2, self.overflow_factor)


def default_distributions() -> Sequence[SizeDistribution]:
    """The distributions exercised by the benchmark suite."""
    return (
        UniformSizes(1, 64),
        PowerOfTwoSizes(0, 8),
        ZipfSizes(1.5, 512),
        BimodalSizes(4, 512, 0.05),
        DatabaseBlockSizes(64),
    )
