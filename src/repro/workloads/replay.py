"""Trace recording and replay: four on-disk formats, one streaming core.

Four coexisting formats are readable, with transparent detection (plus a
transparent gzip container around any of them):

* **v3** (binary, seekable): like v2 but the records are grouped into
  self-contained blocks with live-object snapshots and a footer index of
  block offsets, so the trace can be seeked to any block and sharded
  across worker processes (see :mod:`repro.workloads.binary` and
  :func:`repro.workloads.binary.read_block_index`).  Written by
  ``save_trace(..., version=3[, compress=True])``.

* **v2** (binary, see :mod:`repro.workloads.binary`): magic + version
  header, varint-encoded records with an interned name table, optional zlib
  compression of the record body, and a JSON label/metadata block.  Written
  by ``save_trace(..., version=2[, compress=True])``; the default binary
  format for large (multi-million-request) traces.

* **v1** (text, written by default) starts with a ``# repro-trace v1``
  header line followed by optional ``# label <quoted>`` and ``# meta
  <json>`` lines, then one request per line::

        # repro-trace v1
        # label churn%20demo
        # meta {"seed": 7}
        I <quoted-name> <size>
        D <quoted-name>

  Object names and the label are percent-encoded (``urllib.parse.quote``
  with no safe characters), so names containing whitespace, newlines, ``#``
  or ``%`` round-trip exactly.

* **v0** (the historical format, still readable and writable) has no
  version header — just an optional leading ``# trace <label>`` comment and
  raw ``I name size`` / ``D name`` lines split on whitespace.  Because
  names are written raw, ``save_trace(..., version=0)`` refuses names or
  labels containing whitespace with a clear error instead of silently
  corrupting the file the way the original writer did.

Header lines (label / metadata) are recognised in the leading comment block
of a text trace; later ``#`` lines are skipped as comments, except
header-lookalikes (``# label`` / ``# meta`` / ``# trace``), which are
rejected loudly rather than silently dropped.  Names are
stringified on save in every format: a trace whose names are the integers
``1, 2, ...`` loads back with the string names ``"1", "2", ...``.

Streaming
---------

:func:`load_trace` materialises a full :class:`Trace`.  For traces too
large to hold in memory, :func:`iter_trace` yields requests one at a time
and :class:`TraceFileSource` wraps a file as a re-iterable
:class:`~repro.workloads.base.RequestSource` that ``Allocator.run``, the
:class:`~repro.engine.SimulationEngine`, and ``repro.metrics.run_trace``
accept in place of a ``Trace``.  :func:`trace_info` computes a file's
summary statistics (counts, delta, peak live volume) in one streaming pass,
and the full analytics bundle (``repro trace analyze``) streams the same
way through :class:`~repro.engine.analytics.TraceAnalyticsObserver`.  The
write direction streams too: every writer returned by
:func:`open_trace_writer` is usable as a context manager, and the
``trace_recorder`` engine observer pipes a live replay straight into one.
"""

from __future__ import annotations

import gzip
import io
import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Union
from urllib.parse import quote, unquote

from repro.workloads.base import Request, Trace
from repro.workloads.binary import (
    DEFAULT_BLOCK_RECORDS,
    BinaryTraceWriter,
    TraceFormatError,
    iter_binary_records,
    read_binary_header,
    read_block_index,
    MAGIC as _V2_MAGIC,
)

#: Version written by :func:`save_trace` when none is requested.
TRACE_FORMAT_VERSION = 1
#: All format versions :func:`load_trace` / :func:`iter_trace` understand.
KNOWN_TRACE_VERSIONS = (0, 1, 2, 3)

_V1_HEADER = "# repro-trace v1"
_GZIP_MAGIC = b"\x1f\x8b"


# -------------------------------------------------------------------- writers
class _WriterContextMixin:
    """``with open_trace_writer(...) as writer:`` support for every format:
    a clean exit closes (committing the trailer/metadata), an exception
    aborts so a partial file is left truncation-detectable, never silently
    valid."""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def _check_v0_token(token: str, what: str, path) -> str:
    if token != token.strip() or any(ch.isspace() for ch in token):
        raise ValueError(
            f"cannot save {what} {token!r} to {path} in the v0 trace format: "
            "it contains whitespace and would be misparsed on load; "
            "save with version=1 (the default) instead"
        )
    if not token:
        raise ValueError(f"cannot save an empty {what} to {path} in the v0 trace format")
    return token


class _TextTraceWriterV0(_WriterContextMixin):
    """Streaming writer for the legacy headerless text format."""

    def __init__(self, path, label: str = "trace", metadata: Optional[dict] = None) -> None:
        if metadata:
            raise ValueError("the v0 trace format cannot carry metadata; use version=1")
        if "\n" in label or "\r" in label:
            raise ValueError(f"cannot save label {label!r} with newlines in v0 format")
        self.path = path
        self.count = 0
        self._handle = open(path, "w", encoding="utf-8")
        self._handle.write(f"# trace {label}\n")

    def write(self, request: Request) -> None:
        name = _check_v0_token(str(request.name), "object name", self.path)
        if request.is_insert:
            self._handle.write(f"I {name} {request.size}\n")
        else:
            self._handle.write(f"D {name}\n")
        self.count += 1

    def close(self) -> None:
        self._handle.close()

    def abort(self) -> None:
        self._handle.close()


class _TextTraceWriterV1(_WriterContextMixin):
    """Streaming writer for the percent-encoded v1 text format."""

    def __init__(self, path, label: str = "trace", metadata: Optional[dict] = None) -> None:
        self.path = path
        self.count = 0
        self._handle = open(path, "w", encoding="utf-8")
        self._handle.write(_V1_HEADER + "\n")
        self._handle.write(f"# label {quote(label, safe='')}\n")
        if metadata:
            self._handle.write(f"# meta {json.dumps(metadata, sort_keys=True)}\n")

    def write(self, request: Request) -> None:
        name = quote(str(request.name), safe="")
        if not name:
            raise ValueError(
                f"cannot save an object with an empty name to {self.path}: "
                "the line-oriented trace format needs a non-empty name field"
            )
        if request.is_insert:
            self._handle.write(f"I {name} {request.size}\n")
        else:
            self._handle.write(f"D {name}\n")
        self.count += 1

    def close(self) -> None:
        self._handle.close()

    def abort(self) -> None:
        self._handle.close()


def open_trace_writer(
    path: Union[str, os.PathLike],
    version: int = TRACE_FORMAT_VERSION,
    label: str = "trace",
    metadata: Optional[Dict[str, Any]] = None,
    compress: Union[bool, str] = False,
    block_records: int = DEFAULT_BLOCK_RECORDS,
):
    """Open a streaming trace writer (``.write(request)`` / ``.close()``).

    This is the single write path for every format: :func:`save_trace` and
    ``repro trace convert`` both go through it.  ``compress`` is only
    meaningful for the binary formats (v2: one zlib stream over the body,
    v3: zlib per block so the file stays seekable); pass
    ``compress="background"`` to run the zlib work on a writer thread that
    overlaps a CPU-bound producer (byte-identical output — see
    :class:`~repro.workloads.binary.BinaryTraceWriter`).  ``block_records``
    sets the v3 block size.
    """
    if compress and version not in (2, 3):
        raise ValueError(
            f"compression is only supported by the binary formats, not v{version}; "
            "pass version=2 or 3 (or convert with --format v2/v3 --compress)"
        )
    if version == 0:
        return _TextTraceWriterV0(path, label=label, metadata=metadata)
    if version == 1:
        return _TextTraceWriterV1(path, label=label, metadata=metadata)
    if version in (2, 3):
        return BinaryTraceWriter(
            path,
            label=label,
            metadata=metadata,
            compress=compress,
            version=version,
            block_records=block_records,
        )
    raise ValueError(
        f"unknown trace format version {version!r}; known: "
        + ", ".join(str(v) for v in KNOWN_TRACE_VERSIONS)
    )


def save_trace(
    trace: Trace,
    path: Union[str, os.PathLike],
    metadata: Optional[Dict[str, Any]] = None,
    version: int = TRACE_FORMAT_VERSION,
    compress: Union[bool, str] = False,
    block_records: int = DEFAULT_BLOCK_RECORDS,
) -> None:
    """Write ``trace`` to ``path`` in the requested format version.

    ``metadata`` (JSON-serialisable dict) is merged over ``trace.metadata``
    and stored in the v1/v2/v3 header; requesting ``version=0`` with
    metadata is an error since v0 has nowhere to put it.  ``compress=True``
    (binary formats only) zlib-compresses the record body — one stream for
    v2, per block for v3 so the file stays seekable.
    """
    merged = dict(trace.metadata)
    if metadata:
        merged.update(metadata)
    if version == 0 and trace.metadata and not metadata:
        # v0 has no metadata block; a trace that merely *carries* metadata
        # can still be saved (dropping it), but explicitly passing metadata
        # to a v0 save is a caller error handled by the writer.
        merged = {}
    writer = open_trace_writer(
        path,
        version=version,
        label=trace.label,
        metadata=merged or None,
        compress=compress,
        block_records=block_records,
    )
    try:
        for request in trace:
            writer.write(request)
        # close() is inside the guard: the v2 compressor buffers most bytes
        # until close, so that is where a full disk actually surfaces.
        writer.close()
    except BaseException:
        writer.abort()
        raise


# -------------------------------------------------------------------- readers
class _SafeGzipHandle(io.BufferedIOBase):
    """A gzip read handle whose failures are loud trace errors.

    The gzip module raises a bare ``EOFError`` when the container is
    truncated (and ``zlib.error``/``BadGzipFile`` on corruption) — none of
    which are the :class:`TraceFormatError` the trace readers promise, so
    a clipped ``.gz`` trace used to surface as a traceback with no file
    path.  Translating here, once, covers every read path: ``iter_trace``,
    ``load_trace``, ``trace_info``, and the streaming analyzers.
    """

    def __init__(self, path) -> None:
        self._handle = gzip.open(path, "rb")
        self._path = path

    def _translate(self, error) -> TraceFormatError:
        return TraceFormatError(
            f"{self._path}: truncated or corrupt gzip container ({error})"
        )

    def read(self, size=-1):
        try:
            return self._handle.read(size)
        except (EOFError, zlib.error, gzip.BadGzipFile) as error:
            raise self._translate(error) from error

    def read1(self, size=-1):
        try:
            return self._handle.read1(size)
        except (EOFError, zlib.error, gzip.BadGzipFile) as error:
            raise self._translate(error) from error

    def readinto(self, buffer):
        try:
            return self._handle.readinto(buffer)
        except (EOFError, zlib.error, gzip.BadGzipFile) as error:
            raise self._translate(error) from error

    def readable(self) -> bool:
        return True

    def seekable(self) -> bool:
        return self._handle.seekable()

    def seek(self, offset, whence=io.SEEK_SET):
        try:
            return self._handle.seek(offset, whence)
        except (EOFError, zlib.error, gzip.BadGzipFile) as error:
            raise self._translate(error) from error

    def tell(self):
        return self._handle.tell()

    def close(self) -> None:
        self._handle.close()
        super().close()


def _open_container(path):
    """Open ``path`` for binary reading, unwrapping a gzip container.

    Returns ``(handle, container)`` where ``container`` is ``"gzip"`` or
    ``"plain"`` and ``handle`` is positioned at offset 0 of the (inner)
    trace bytes.
    """
    handle = open(path, "rb")
    try:
        head = handle.read(2)
    except OSError:
        handle.close()
        raise
    if head == _GZIP_MAGIC:
        handle.close()
        return _SafeGzipHandle(path), "gzip"
    if head == _GZIP_MAGIC[:1]:
        # A lone 0x1f first byte is a gzip container clipped inside its own
        # magic; without this check it would fall through to the text reader
        # and silently parse as an empty trace.
        handle.close()
        raise TraceFormatError(
            f"{path}: truncated or corrupt gzip container (file ends inside "
            "the gzip magic)"
        )
    handle.seek(0)
    return handle, "plain"


@dataclass
class _TraceShape:
    """Where a trace file's records live and what its header said."""

    container: str  # "plain" or "gzip"
    version: int  # 0, 1, or 2
    compressed: bool  # v2 zlib body flag
    label: str
    metadata: Dict[str, Any] = field(default_factory=dict)
    header_lines: int = 0  # leading text lines consumed by the header scan


def _scan_text_header(text_handle, path) -> _TraceShape:
    """Read the leading comment block of a text trace (v0 or v1).

    Leaves ``text_handle`` positioned at the first record line (header
    lines already consumed).
    """
    start = text_handle.tell()
    first = text_handle.readline()
    stripped = first.strip()
    if stripped.startswith("# repro-trace ") and stripped != _V1_HEADER:
        raise TraceFormatError(
            f"{path}:1: unsupported trace format {stripped!r}; this reader knows "
            "v0, v1, and the binary v2 container"
        )
    shape = _TraceShape(
        container="plain",
        version=1 if stripped == _V1_HEADER else 0,
        compressed=False,
        label="",
        header_lines=1,
    )
    if shape.version == 0:
        if stripped.startswith("# trace "):
            shape.label = stripped[len("# trace "):]
        else:
            # Not a header line: the first line is already a record (or a
            # plain comment) — hand it back to the record scan.
            shape.header_lines = 0
            text_handle.seek(start)
        return shape
    while True:
        position = text_handle.tell()
        line = text_handle.readline()
        stripped = line.strip()
        if stripped.startswith("# label "):
            shape.label = unquote(stripped[len("# label "):].strip())
        elif stripped.startswith("# meta "):
            try:
                metadata = json.loads(stripped[len("# meta "):])
            except json.JSONDecodeError as error:
                raise TraceFormatError(
                    f"{path}:{shape.header_lines + 1}: malformed metadata JSON: {error}"
                ) from error
            if not isinstance(metadata, dict):
                raise TraceFormatError(
                    f"{path}:{shape.header_lines + 1}: trace metadata must be a JSON "
                    f"object, got {type(metadata).__name__}"
                )
            shape.metadata = metadata
        elif not line or not stripped or stripped.startswith("#"):
            if not line:
                return shape
        else:
            text_handle.seek(position)
            return shape
        shape.header_lines += 1


def _text_handle(handle):
    return io.TextIOWrapper(handle, encoding="utf-8")


def _probe(path) -> "_TraceShape":
    """Detect the container, format version, and header of ``path``."""
    handle, container = _open_container(path)
    try:
        magic = handle.read(len(_V2_MAGIC))
        if magic == b"" and container == "plain":
            raise TraceFormatError(
                f"{path}: empty file; a valid trace always carries at least a header "
                "(v0 '# trace' line, v1 '# repro-trace v1' line, or the v2 magic)"
            )
        if magic == _V2_MAGIC:
            handle.seek(0)
            header = read_binary_header(handle, path)
            return _TraceShape(
                container=container,
                version=header.version,
                compressed=header.compressed,
                label=header.label,
                metadata=header.metadata,
            )
        if magic[:1] == _V2_MAGIC[:1]:
            raise TraceFormatError(
                f"{path}: bad magic {magic!r}; looks like a binary trace but is not "
                "a v2 file this reader understands"
            )
        handle.seek(0)
        try:
            text = _text_handle(handle)
            if container == "gzip" and text.read(1) == "":
                raise TraceFormatError(
                    f"{path}: empty file; a valid trace always carries at least a "
                    "header (v0 '# trace' line, v1 '# repro-trace v1' line, or the "
                    "v2 magic)"
                )
            text.seek(0)
            shape = _scan_text_header(text, path)
        except UnicodeDecodeError as error:
            raise TraceFormatError(
                f"{path}: not a valid trace: neither the v2 binary magic nor "
                f"decodable text ({error})"
            ) from error
        shape.container = container
        return shape
    finally:
        handle.close()


def _parse_record(line: str, line_number: int, path, decode) -> Request:
    parts = line.split()
    if parts[0] == "I":
        if len(parts) != 3:
            raise ValueError(f"{path}:{line_number}: malformed insert {line!r}")
        try:
            size = int(parts[2])
        except ValueError:
            raise ValueError(f"{path}:{line_number}: malformed insert {line!r}") from None
        return Request.insert(decode(parts[1]), size)
    if parts[0] == "D":
        if len(parts) != 2:
            raise ValueError(f"{path}:{line_number}: malformed delete {line!r}")
        return Request.delete(decode(parts[1]))
    raise ValueError(f"{path}:{line_number}: unknown record {line!r}")


def _iter_text_records(text_handle, shape: _TraceShape, path) -> Iterator[Request]:
    decode = unquote if shape.version == 1 else str
    line_number = shape.header_lines
    try:
        for raw in text_handle:
            line_number += 1
            line = raw.strip()
            if not line or line.startswith("#"):
                # Header lines must lead the file (the streaming header scan
                # reads only the leading comment block); refusing them here
                # beats silently dropping a label or metadata that the old
                # whole-file reader would have honoured.
                if line.startswith(("# label ", "# meta ")) or (
                    shape.version == 0 and line.startswith("# trace ")
                ):
                    raise TraceFormatError(
                        f"{path}:{line_number}: header line {line.split()[1]!r} after "
                        "the first record; header lines are only recognised at the "
                        "top of the file — re-save or `repro trace convert` it"
                    )
                continue
            yield _parse_record(line, line_number, path, decode)
    except UnicodeDecodeError as error:
        raise TraceFormatError(
            f"{path}:{line_number + 1}: not a valid text trace (undecodable bytes: {error})"
        ) from error


class TraceFileSource:
    """A re-iterable, streaming :class:`~repro.workloads.base.RequestSource`
    over a trace file in any known format (v0 / v1 / v2, optionally inside a
    gzip container).

    The header (format version, label, metadata) is read eagerly at
    construction time; each ``iter()`` re-opens the file and yields
    :class:`Request` objects one at a time, so replaying a 10M-request
    trace never materialises it.  ``len()`` is intentionally *not*
    provided — a request count would need a full pass; use
    :func:`trace_info` when you want one.
    """

    def __init__(self, path: Union[str, os.PathLike], label: str = "") -> None:
        self.path = path
        self._shape = _probe(path)
        self.version = self._shape.version
        self.container = self._shape.container
        self.compressed = self._shape.compressed
        self.label = label or self._shape.label or os.path.basename(str(path))
        self.metadata: Dict[str, Any] = dict(self._shape.metadata)

    def __iter__(self) -> Iterator[Request]:
        handle, _ = _open_container(self.path)
        try:
            if self.version >= 2:
                header = read_binary_header(handle, self.path)
                yield from iter_binary_records(handle, header, self.path)
            else:
                text = _text_handle(handle)
                shape = _scan_text_header(text, self.path)
                yield from _iter_text_records(text, shape, self.path)
        finally:
            handle.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TraceFileSource {str(self.path)!r} v{self.version}"
            f"{' zlib' if self.compressed else ''}"
            f"{' gzip' if self.container == 'gzip' else ''}>"
        )


def iter_trace(path: Union[str, os.PathLike]) -> Iterator[Request]:
    """Yield the requests of a trace file one at a time (any known format).

    Streaming counterpart of :func:`load_trace`: peak memory is bounded by
    the read buffer (plus, for v2, the live-scoped name table — one entry
    per simultaneously live object), never by the trace length.
    """
    return iter(TraceFileSource(path))


def load_trace(path: Union[str, os.PathLike], label: str = "") -> Trace:
    """Read a trace previously written by :func:`save_trace` (v0, v1, or v2).

    The format is detected from the file's first bytes (a gzip container
    around any format is unwrapped transparently); object names come back
    as strings and sizes as integers.  An explicit ``label`` argument
    overrides whatever the file header carries.  An empty file is rejected
    with a clear :class:`ValueError` — no writer ever produces one.
    """
    source = TraceFileSource(path, label=label)
    return Trace(source, label=source.label, metadata=source.metadata)


@dataclass
class TraceInfo:
    """Summary of a trace file, computed in one streaming pass."""

    path: str
    file_bytes: int
    container: str
    version: int
    compressed: bool
    label: str
    metadata: Dict[str, Any]
    requests: int
    inserts: int
    deletes: int
    distinct_names: int
    delta: int
    peak_volume: int
    final_volume: int
    total_inserted_volume: int
    #: v3 only: number of blocks in the footer index (0 otherwise).
    blocks: int = 0
    #: v3 only: records in the largest block (the writer's block size).
    block_records: int = 0
    #: True when the file can be seeked to any block (plain-container v3).
    seekable: bool = False

    @property
    def format_description(self) -> str:
        parts = [f"v{self.version}", "binary" if self.version >= 2 else "text"]
        if self.compressed:
            parts.append("zlib blocks" if self.version == 3 else "zlib body")
        if self.container == "gzip":
            parts.append("gzip container")
        return f"{parts[0]} ({', '.join(parts[1:])})"


def trace_info(path: Union[str, os.PathLike]) -> TraceInfo:
    """Characterise a trace file without materialising it.

    Streams the file once, tracking the live-object map (memory is bounded
    by the number of *simultaneously live* objects plus distinct names, not
    the request count) to compute counts, delta, and peak live volume.
    """
    source = TraceFileSource(path)
    requests = inserts = deletes = 0
    delta = 0
    volume = 0
    peak_volume = 0
    total_inserted = 0
    live: Dict[str, int] = {}
    names: set = set()
    for request in source:
        requests += 1
        names.add(request.name)
        if request.is_insert:
            inserts += 1
            total_inserted += request.size
            if request.size > delta:
                delta = request.size
            volume += request.size - live.get(request.name, 0)
            live[request.name] = request.size
            if volume > peak_volume:
                peak_volume = volume
        else:
            deletes += 1
            volume -= live.pop(request.name, 0)
    blocks = 0
    block_records = 0
    seekable = False
    if source.version == 3 and source.container == "plain":
        index = read_block_index(path)
        if index is not None:
            blocks = len(index.blocks)
            block_records = max((b.records for b in index.blocks), default=0)
            seekable = True
    return TraceInfo(
        path=str(path),
        file_bytes=os.path.getsize(path),
        container=source.container,
        version=source.version,
        compressed=source.compressed,
        label=source.label,
        metadata=source.metadata,
        requests=requests,
        inserts=inserts,
        deletes=deletes,
        distinct_names=len(names),
        delta=delta,
        peak_volume=peak_volume,
        final_volume=volume,
        total_inserted_volume=total_inserted,
        blocks=blocks,
        block_records=block_records,
        seekable=seekable,
    )
