"""Plain-text trace recording and replay, with a versioned header.

Two on-disk formats are supported:

* **v1** (written by default) starts with a ``# repro-trace v1`` header line
  followed by optional ``# label <quoted>`` and ``# meta <json>`` lines, then
  one request per line::

        # repro-trace v1
        # label churn%20demo
        # meta {"seed": 7}
        I <quoted-name> <size>
        D <quoted-name>

  Object names and the label are percent-encoded (``urllib.parse.quote`` with
  no safe characters), so names containing whitespace, newlines, ``#`` or
  ``%`` round-trip exactly.

* **v0** (the historical format, still readable and writable) has no version
  header — just an optional ``# trace <label>`` comment and raw ``I name
  size`` / ``D name`` lines split on whitespace.  Because names are written
  raw, ``save_trace(..., version=0)`` refuses names or labels containing
  whitespace with a clear error instead of silently corrupting the file the
  way the original writer did.

Names are stringified on save in both formats: a trace whose names are the
integers ``1, 2, ...`` loads back with the string names ``"1", "2", ...``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional, Union
from urllib.parse import quote, unquote

from repro.workloads.base import Request, Trace

#: Version written by :func:`save_trace` when none is requested.
TRACE_FORMAT_VERSION = 1

_V1_HEADER = "# repro-trace v1"


def _check_v0_token(token: str, what: str, path: Union[str, os.PathLike]) -> str:
    if token != token.strip() or any(ch.isspace() for ch in token):
        raise ValueError(
            f"cannot save {what} {token!r} to {path} in the v0 trace format: "
            "it contains whitespace and would be misparsed on load; "
            "save with version=1 (the default) instead"
        )
    if not token:
        raise ValueError(f"cannot save an empty {what} to {path} in the v0 trace format")
    return token


def save_trace(
    trace: Trace,
    path: Union[str, os.PathLike],
    metadata: Optional[Dict[str, Any]] = None,
    version: int = TRACE_FORMAT_VERSION,
) -> None:
    """Write ``trace`` to ``path`` in the one-request-per-line text format.

    ``metadata`` (JSON-serialisable dict) is stored in the v1 header and comes
    back as ``trace.metadata`` on load; requesting ``version=0`` with metadata
    is an error since v0 has nowhere to put it.
    """
    if version == 0:
        if metadata:
            raise ValueError("the v0 trace format cannot carry metadata; use version=1")
        if "\n" in trace.label or "\r" in trace.label:
            raise ValueError(f"cannot save label {trace.label!r} with newlines in v0 format")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(f"# trace {trace.label}\n")
            for request in trace:
                name = _check_v0_token(str(request.name), "object name", path)
                if request.is_insert:
                    handle.write(f"I {name} {request.size}\n")
                else:
                    handle.write(f"D {name}\n")
        return
    if version != 1:
        raise ValueError(f"unknown trace format version {version!r}; known: 0, 1")
    merged = dict(trace.metadata)
    if metadata:
        merged.update(metadata)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(_V1_HEADER + "\n")
        handle.write(f"# label {quote(trace.label, safe='')}\n")
        if merged:
            handle.write(f"# meta {json.dumps(merged, sort_keys=True)}\n")
        for request in trace:
            name = quote(str(request.name), safe="")
            if not name:
                raise ValueError(
                    f"cannot save an object with an empty name to {path}: "
                    "the line-oriented trace format needs a non-empty name field"
                )
            if request.is_insert:
                handle.write(f"I {name} {request.size}\n")
            else:
                handle.write(f"D {name}\n")


def load_trace(path: Union[str, os.PathLike], label: str = "") -> Trace:
    """Read a trace previously written by :func:`save_trace` (v0 or v1).

    The format is detected from the first line; object names come back as
    strings and sizes as integers.  An explicit ``label`` argument overrides
    whatever the file header carries.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if lines and lines[0].strip() == _V1_HEADER:
        return _parse_v1(lines, path, label)
    if lines and lines[0].strip().startswith("# repro-trace "):
        raise ValueError(
            f"{path}:1: unsupported trace format {lines[0].strip()!r}; "
            f"this reader knows v0 and v1"
        )
    return _parse_v0(lines, path, label)


def _parse_record(line: str, line_number: int, path, decode) -> Request:
    parts = line.split()
    if parts[0] == "I":
        if len(parts) != 3:
            raise ValueError(f"{path}:{line_number}: malformed insert {line!r}")
        return Request.insert(decode(parts[1]), int(parts[2]))
    if parts[0] == "D":
        if len(parts) != 2:
            raise ValueError(f"{path}:{line_number}: malformed delete {line!r}")
        return Request.delete(decode(parts[1]))
    raise ValueError(f"{path}:{line_number}: unknown record {line!r}")


def _parse_v0(lines, path, label: str) -> Trace:
    requests = []
    trace_label = label or os.path.basename(str(path))
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            if line.startswith("# trace ") and not label:
                trace_label = line[len("# trace "):]
            continue
        requests.append(_parse_record(line, line_number, path, decode=str))
    return Trace(requests, label=trace_label)


def _parse_v1(lines, path, label: str) -> Trace:
    requests = []
    trace_label = label or os.path.basename(str(path))
    metadata: Dict[str, Any] = {}
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if line_number == 1 or not line:
            continue
        if line.startswith("#"):
            if line.startswith("# label ") and not label:
                trace_label = unquote(line[len("# label "):].strip())
            elif line.startswith("# meta "):
                try:
                    metadata = json.loads(line[len("# meta "):])
                except json.JSONDecodeError as error:
                    raise ValueError(
                        f"{path}:{line_number}: malformed metadata JSON: {error}"
                    ) from error
                if not isinstance(metadata, dict):
                    raise ValueError(
                        f"{path}:{line_number}: trace metadata must be a JSON object, "
                        f"got {type(metadata).__name__}"
                    )
            continue
        requests.append(_parse_record(line, line_number, path, decode=unquote))
    return Trace(requests, label=trace_label, metadata=metadata)
