"""Plain-text trace recording and replay.

Traces are stored one request per line::

    I <name> <size>
    D <name>

so they can be generated once, inspected with standard tools, diffed, and
replayed bit-for-bit across machines.
"""

from __future__ import annotations

import os
from typing import Union

from repro.workloads.base import Request, Trace


def save_trace(trace: Trace, path: Union[str, os.PathLike]) -> None:
    """Write ``trace`` to ``path`` in the one-request-per-line text format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# trace {trace.label}\n")
        for request in trace:
            if request.is_insert:
                handle.write(f"I {request.name} {request.size}\n")
            else:
                handle.write(f"D {request.name}\n")


def load_trace(path: Union[str, os.PathLike], label: str = "") -> Trace:
    """Read a trace previously written by :func:`save_trace`.

    Object names are read back as strings; sizes as integers.
    """
    requests = []
    trace_label = label or os.path.basename(str(path))
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                if line.startswith("# trace ") and not label:
                    trace_label = line[len("# trace "):]
                continue
            parts = line.split()
            if parts[0] == "I":
                if len(parts) != 3:
                    raise ValueError(f"{path}:{line_number}: malformed insert {line!r}")
                requests.append(Request.insert(parts[1], int(parts[2])))
            elif parts[0] == "D":
                if len(parts) != 2:
                    raise ValueError(f"{path}:{line_number}: malformed delete {line!r}")
                requests.append(Request.delete(parts[1]))
            else:
                raise ValueError(f"{path}:{line_number}: unknown record {line!r}")
    return Trace(requests, label=trace_label)
