"""The binary trace container: compact, streamable, optionally compressed.

Layout of a v2 file::

    magic        8 bytes   b"\\x93RPTRACE" (first byte non-ASCII so text
                           parsers bail out immediately)
    version      varint    2
    flags        1 byte    bit 0: record body is one zlib stream
    header len   varint    byte length of the JSON header block
    header       bytes     UTF-8 JSON: {"label": str, "meta": {...}}
    body         records   (zlib-compressed as a whole when flagged)

The body is a sequence of varint-encoded records over a *live-scoped
interned name table*: an insert binds its name to an integer id (the most
recently freed id, else the next fresh one — writer and reader mirror the
same LIFO rule), a delete references the id and frees it again.  Ids are
therefore bounded by the peak number of simultaneously *live* objects, so
they stay one or two bytes even in traces with millions of distinct names —
and so does the table itself, which is what keeps both ends of the pipe
streaming.  Name bytes are *front-coded*: each name-carrying record stores
the byte length it shares with the previously written name plus the new
suffix, which collapses the ``obj-000123``-style names synthetic workloads
generate to a couple of bytes.

    0x01  INSERT, new name:   varint shared-prefix-len, varint suffix-len,
                              suffix bytes, varint size   (binds an id)
    0x02  INSERT, live name:  varint name-id, varint size (id stays bound;
                              only produced for degenerate double-inserts)
    0x03  DELETE, live name:  varint name-id              (frees the id)
    0x04  DELETE, other name: varint shared-prefix-len, varint suffix-len,
                              suffix bytes                (binds nothing)
    0x00  END trailer:        varint total record count

The END trailer makes truncation detectable: a reader that hits EOF before
the trailer (or whose record count disagrees with it) reports a truncated
file instead of silently yielding a prefix.  All varints are unsigned
LEB128.

v3: seekable blocks
-------------------

A v3 file shares the magic/flags/header layout (version varint 3; flag
bit 0 now means *per-block* zlib) but groups records into self-contained
**blocks** that each restart the interned-name table::

    0x05  BLOCK:  varint record-count      records encoded in this block
                  varint entry-count       objects live at block entry
                  varint snapshot-len      byte length of the snapshot
                  snapshot                 entry-count x (front-coded name,
                                           varint size), sorted by UTF-8
                                           name bytes, front-coded from ""
                  varint body-len          on-disk body bytes
                  body                     records (zlib-compressed per
                                           block when flagged)

    0x00  END:    varint total record count
                  varint block count
                  block count x (varint offset, varint record-count)
                    - offset of the 0x05 tag: absolute for the first
                      block, delta from the previous offset after that
                  8 bytes   little-endian absolute offset of the END tag
                  8 bytes   footer magic b"\\x93RPT3IDX"

Each block re-binds the snapshot names to ids ``0..entry_count-1`` in
snapshot order (next fresh id = entry_count, free-id pool empty) and
front-codes record names starting from the *last* snapshot name, so a
block can be decoded knowing nothing but its own bytes.  The fixed-size
trailer lets a reader seek straight to the footer, then to any block —
that is what :func:`read_block_index` and sharded parallel replay build
on.  Truncation stays loud: every byte before the trailer is needed to
reach the END record, the footer must agree with the blocks actually
read, and the trailer offset must point back at the END tag.

Everything here is streaming: :class:`BinaryTraceWriter` and
:func:`iter_binary_records` hold an I/O buffer plus per-*live*-object state
(the id table and free-id stack, and for v3 one block's worth of bytes),
never anything proportional to the trace length or the number of distinct
names.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.faults.injector import fault_point, fault_write
from repro.obs.telemetry import get_telemetry
from repro.workloads.base import DELETE, INSERT, Request

#: First bytes of every binary trace file.
MAGIC = b"\x93RPTRACE"
#: The container version written when none is requested.
BINARY_FORMAT_VERSION = 2
#: Every binary container version this module reads.
KNOWN_BINARY_VERSIONS = (2, 3)
#: Records per v3 block when the writer is not told otherwise.
DEFAULT_BLOCK_RECORDS = 65536

_FLAG_ZLIB = 0x01

_TAG_END = 0x00
_TAG_INSERT_NEW = 0x01
_TAG_INSERT_REF = 0x02
_TAG_DELETE_REF = 0x03
_TAG_DELETE_NEW = 0x04
_TAG_BLOCK = 0x05

_FOOTER_MAGIC = b"\x93RPT3IDX"
_TRAILER_LEN = 8 + len(_FOOTER_MAGIC)

_CHUNK = 64 * 1024

# Hot-loop aliases: one LOAD_GLOBAL each instead of attribute lookups per
# record.  Requests are built via object.__new__ so the decode loop pays no
# dataclass __init__/__post_init__ frames; the loop re-checks what those
# would have (op is fixed, insert sizes are validated explicitly).
_new_request = object.__new__
_set_attr = object.__setattr__


class TraceFormatError(ValueError):
    """A trace file is malformed: bad magic, truncated, or corrupt."""


def encode_varint(value: int) -> bytes:
    """Unsigned LEB128 encoding of ``value`` (which must be >= 0)."""
    if value < 0:
        raise ValueError(f"varints are unsigned, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


# --------------------------------------------------------------------- reader
class _BodySource:
    """Chunked supplier of decompressed v2 body bytes for the decode loop."""

    __slots__ = ("_handle", "_path", "_decompressor", "_input_done", "raw_bytes")

    def __init__(self, handle, compressed: bool, path) -> None:
        self._handle = handle
        self._path = path
        self._decompressor = zlib.decompressobj() if compressed else None
        self._input_done = False
        self.raw_bytes = 0  # compressed/on-disk body bytes consumed

    def next_chunk(self) -> bytes:
        """The next chunk of (decompressed) body bytes; ``b""`` at the end."""
        decompressor = self._decompressor
        while not self._input_done:
            chunk = self._handle.read(_CHUNK)
            self.raw_bytes += len(chunk)
            if not chunk:
                self._input_done = True
                if decompressor is not None:
                    try:
                        tail = decompressor.flush()
                    except zlib.error as error:
                        raise TraceFormatError(
                            f"{self._path}: truncated or corrupt zlib record body ({error})"
                        ) from error
                    # flush() does not verify stream completeness; a clipped
                    # final block or checksum only shows up as eof == False.
                    if not decompressor.eof:
                        raise TraceFormatError(
                            f"{self._path}: truncated zlib record body "
                            "(compressed stream ends mid-block)"
                        )
                    if tail:
                        return tail
                return b""
            if decompressor is not None:
                try:
                    chunk = decompressor.decompress(chunk)
                except zlib.error as error:
                    raise TraceFormatError(
                        f"{self._path}: corrupt zlib record body ({error})"
                    ) from error
                if not chunk:
                    continue  # compressed input consumed, no output yet
            return chunk
        return b""

    def check_no_trailing(self) -> None:
        """After the END trailer: any further body or container bytes are an error."""
        if self.next_chunk():
            raise TraceFormatError(f"{self._path}: trailing data after the END trailer")
        if self._decompressor is not None and self._decompressor.unused_data:
            raise TraceFormatError(
                f"{self._path}: trailing data after the compressed record body"
            )


@dataclass
class BinaryHeader:
    """The decoded fixed header of a binary (v2/v3) trace file."""

    version: int
    compressed: bool
    label: str
    metadata: Dict[str, Any] = field(default_factory=dict)


# These two header helpers intentionally mirror the body decode loop's
# bounds checks: the header and the v3 block structure must be read
# byte-exactly from the raw handle (no buffered overshoot), while the
# record decode is specialised for bulk buffered input on the hot path.
# Keep their guards and error wording in sync.
def _read_exact_from(handle, count: int, what: str, path) -> bytes:
    data = handle.read(count)
    if len(data) != count:
        raise TraceFormatError(
            f"{path}: truncated trace file (unexpected end of data while reading {what})"
        )
    return data


def _read_varint_from(handle, what: str, path) -> int:
    value = 0
    shift = 0
    while True:
        byte = _read_exact_from(handle, 1, what, path)[0]
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value
        shift += 7
        if shift > 63:
            raise TraceFormatError(
                f"{path}: corrupt varint while reading {what} (over 9 bytes)"
            )


def read_binary_header(handle, path) -> BinaryHeader:
    """Decode the binary header from ``handle`` (positioned at offset 0).

    The header is read byte-exactly, so ``handle`` is left positioned at the
    first body byte.  Raises :class:`TraceFormatError` on bad magic, an
    unknown version, or a malformed header block.
    """
    magic = handle.read(len(MAGIC))
    if magic != MAGIC:
        raise TraceFormatError(
            f"{path}: bad magic {magic!r}; not a v2/v3 binary trace"
        )
    version = _read_varint_from(handle, "format version", path)
    if version not in KNOWN_BINARY_VERSIONS:
        raise TraceFormatError(
            f"{path}: unsupported binary trace version {version}; "
            f"this reader knows v2 and v3"
        )
    flags = _read_exact_from(handle, 1, "flags", path)[0]
    if flags & ~_FLAG_ZLIB:
        raise TraceFormatError(
            f"{path}: unknown flag bits 0x{flags:02x} in v{version} header"
        )
    header_length = _read_varint_from(handle, "header length", path)
    header_bytes = _read_exact_from(handle, header_length, "JSON header block", path)
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise TraceFormatError(
            f"{path}: malformed v{version} JSON header block: {error}"
        ) from error
    if not isinstance(header, dict):
        raise TraceFormatError(
            f"{path}: v{version} header block must be a JSON object, "
            f"got {type(header).__name__}"
        )
    metadata = header.get("meta", {})
    if not isinstance(metadata, dict):
        raise TraceFormatError(
            f"{path}: v{version} trace metadata must be a JSON object, "
            f"got {type(metadata).__name__}"
        )
    return BinaryHeader(
        version=version,
        compressed=bool(flags & _FLAG_ZLIB),
        label=str(header.get("label", "")),
        metadata=metadata,
    )


def _decode_varint_slow(buf, pos: int, first: int, path, count: int):
    """Continuation of an inline varint decode whose first byte had the
    high bit set.  Raises IndexError past the end of ``buf`` (the caller's
    refill/truncation logic handles it)."""
    value = first & 0x7F
    shift = 7
    while True:
        byte = buf[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if byte < 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            raise TraceFormatError(
                f"{path}: record {count}: corrupt varint (over 9 bytes)"
            )


def iter_binary_records(handle, header: BinaryHeader, path) -> Iterator[Request]:
    """Yield the requests of a v2/v3 body one at a time (bounded memory).

    ``handle`` must be positioned at the first body byte (where
    :func:`read_binary_header` leaves it).  Verifies the END trailer and the
    record count, so truncated and over-long files raise
    :class:`TraceFormatError` instead of yielding a silent prefix.
    """
    if header.version == 3:
        yield from _iter_v3_records(handle, header, path)
        return

    source = _BodySource(handle, compressed=header.compressed, path=path)
    bound: Dict[int, str] = {}  # live name-id bindings
    free_ids: List[int] = []  # LIFO pool mirroring the writer's id assignment
    next_id = 0
    previous_name = b""  # front-coding state
    count = 0
    buf = b""
    pos = 0

    # One iteration decodes one record from the local buffer with inline
    # varint fast paths; running off the buffer raises IndexError, the
    # record is rewound, the buffer refilled, and the record retried.
    # State (count, bindings, front-coding) is only touched after a record
    # decodes completely, so a retry never replays a half-applied record.
    while True:
        record_start = pos
        try:
            tag = buf[pos]
            pos += 1
            if tag == _TAG_INSERT_NEW or tag == _TAG_DELETE_NEW:
                prefix = buf[pos]
                pos += 1
                if prefix >= 0x80:
                    prefix, pos = _decode_varint_slow(buf, pos, prefix, path, count)
                suffix_len = buf[pos]
                pos += 1
                if suffix_len >= 0x80:
                    suffix_len, pos = _decode_varint_slow(buf, pos, suffix_len, path, count)
                end = pos + suffix_len
                if end > len(buf):
                    raise IndexError
                suffix = buf[pos:end]
                pos = end
                if tag == _TAG_INSERT_NEW:
                    size = buf[pos]
                    pos += 1
                    if size >= 0x80:
                        size, pos = _decode_varint_slow(buf, pos, size, path, count)
                else:
                    size = 0
            elif tag == _TAG_DELETE_REF or tag == _TAG_INSERT_REF:
                name_id = buf[pos]
                pos += 1
                if name_id >= 0x80:
                    name_id, pos = _decode_varint_slow(buf, pos, name_id, path, count)
                if tag == _TAG_INSERT_REF:
                    size = buf[pos]
                    pos += 1
                    if size >= 0x80:
                        size, pos = _decode_varint_slow(buf, pos, size, path, count)
            elif tag == _TAG_END:
                declared = buf[pos]
                pos += 1
                if declared >= 0x80:
                    declared, pos = _decode_varint_slow(buf, pos, declared, path, count)
            else:
                raise TraceFormatError(
                    f"{path}: record {count + 1}: unknown record tag 0x{tag:02x}"
                )
        except IndexError:
            chunk = source.next_chunk()
            if not chunk:
                raise TraceFormatError(
                    f"{path}: truncated trace file (end of data before the END "
                    f"trailer; {count} record(s) read)"
                ) from None
            buf = buf[record_start:] + chunk
            pos = 0
            continue

        # The record decoded completely; apply it.
        if tag == _TAG_INSERT_NEW:
            count += 1
            if prefix:
                if prefix > len(previous_name):
                    raise TraceFormatError(
                        f"{path}: record {count}: name prefix length {prefix} exceeds "
                        f"the previous name's {len(previous_name)} bytes"
                    )
                raw = previous_name[:prefix] + suffix
            else:
                raw = suffix
            previous_name = raw
            try:
                name = raw.decode("utf-8")
            except UnicodeDecodeError as error:
                raise TraceFormatError(
                    f"{path}: record {count}: undecodable name: {error}"
                ) from error
            if free_ids:
                bound[free_ids.pop()] = name
            else:
                bound[next_id] = name
                next_id += 1
            if size < 1:
                raise TraceFormatError(
                    f"{path}: record {count}: insert with non-positive size {size}"
                )
            request = _new_request(Request)
            _set_attr(request, "op", INSERT)
            _set_attr(request, "name", name)
            _set_attr(request, "size", size)
            yield request
        elif tag == _TAG_DELETE_REF:
            count += 1
            try:
                name = bound.pop(name_id)
            except KeyError:
                raise TraceFormatError(
                    f"{path}: record {count}: name id {name_id} references an unbound "
                    "name (never inserted, or already deleted)"
                ) from None
            free_ids.append(name_id)
            request = _new_request(Request)
            _set_attr(request, "op", DELETE)
            _set_attr(request, "name", name)
            _set_attr(request, "size", 0)
            yield request
        elif tag == _TAG_INSERT_REF:
            count += 1
            try:
                name = bound[name_id]
            except KeyError:
                raise TraceFormatError(
                    f"{path}: record {count}: name id {name_id} references an unbound "
                    "name (never inserted, or already deleted)"
                ) from None
            if size < 1:
                raise TraceFormatError(
                    f"{path}: record {count}: insert with non-positive size {size}"
                )
            request = _new_request(Request)
            _set_attr(request, "op", INSERT)
            _set_attr(request, "name", name)
            _set_attr(request, "size", size)
            yield request
        elif tag == _TAG_DELETE_NEW:
            count += 1
            if prefix:
                if prefix > len(previous_name):
                    raise TraceFormatError(
                        f"{path}: record {count}: name prefix length {prefix} exceeds "
                        f"the previous name's {len(previous_name)} bytes"
                    )
                raw = previous_name[:prefix] + suffix
            else:
                raw = suffix
            previous_name = raw
            try:
                name = raw.decode("utf-8")
            except UnicodeDecodeError as error:
                raise TraceFormatError(
                    f"{path}: record {count}: undecodable name: {error}"
                ) from error
            request = _new_request(Request)
            _set_attr(request, "op", DELETE)
            _set_attr(request, "name", name)
            _set_attr(request, "size", 0)
            yield request
        else:  # _TAG_END
            if declared != count:
                raise TraceFormatError(
                    f"{path}: record count mismatch: END trailer declares {declared}, "
                    f"read {count}"
                )
            if pos != len(buf):
                raise TraceFormatError(
                    f"{path}: trailing data after the END trailer"
                )
            source.check_no_trailing()
            # Cold path: counters are pushed once per completed file, so the
            # per-record decode loop never touches telemetry.
            telemetry = get_telemetry()
            if telemetry.enabled:
                telemetry.add("trace_io.decode_records", count)
                telemetry.add("trace_io.decode_bytes", source.raw_bytes)
                telemetry.add("trace_io.decode_files")
            return


# ------------------------------------------------------------------ v3 reader
def _decode_snapshot(
    data: bytes, entry_count: int, path, block: int
) -> Tuple[List[str], List[int], bytes]:
    """Decode a block-entry snapshot: ``(names, sizes, last_raw_name)``.

    Names must be strictly increasing in UTF-8 byte order (that is what
    makes the writer/reader id assignment deterministic and front-coding
    effective); the returned ``last_raw_name`` seeds record front-coding.
    """
    names: List[str] = []
    sizes: List[int] = []
    pos = 0
    prev: Optional[bytes] = None
    raw = b""
    where = f"block {block} snapshot"
    try:
        for _ in range(entry_count):
            prefix = data[pos]
            pos += 1
            if prefix >= 0x80:
                prefix, pos = _decode_varint_slow(data, pos, prefix, path, block)
            suffix_len = data[pos]
            pos += 1
            if suffix_len >= 0x80:
                suffix_len, pos = _decode_varint_slow(data, pos, suffix_len, path, block)
            end = pos + suffix_len
            if end > len(data):
                raise IndexError
            if prefix > len(raw):
                raise TraceFormatError(
                    f"{path}: {where}: name prefix length {prefix} exceeds "
                    f"the previous name's {len(raw)} bytes"
                )
            raw = raw[:prefix] + data[pos:end]
            pos = end
            size = data[pos]
            pos += 1
            if size >= 0x80:
                size, pos = _decode_varint_slow(data, pos, size, path, block)
            if prev is not None and raw <= prev:
                raise TraceFormatError(
                    f"{path}: {where}: entries not in sorted name order"
                )
            if size < 1:
                raise TraceFormatError(
                    f"{path}: {where}: live object with non-positive size {size}"
                )
            prev = raw
            try:
                names.append(raw.decode("utf-8"))
            except UnicodeDecodeError as error:
                raise TraceFormatError(
                    f"{path}: {where}: undecodable name: {error}"
                ) from error
            sizes.append(size)
    except IndexError:
        raise TraceFormatError(
            f"{path}: truncated trace file (unexpected end of data while "
            f"reading {where})"
        ) from None
    if pos != len(data):
        raise TraceFormatError(f"{path}: {where}: trailing bytes after the entries")
    return names, sizes, raw


def _decode_block_records(
    body: bytes, names: List[str], previous_name: bytes, expected: int, path, block: int
) -> Iterator[Request]:
    """Yield exactly ``expected`` requests from one in-memory block body.

    The interned-name table starts as the snapshot ``names`` bound to ids
    ``0..len(names)-1``; front-coding starts from ``previous_name`` (the
    last snapshot name).  The body must contain exactly the declared
    records with no bytes left over.
    """
    bound: Dict[int, str] = dict(enumerate(names))
    free_ids: List[int] = []
    next_id = len(names)
    count = 0
    pos = 0
    where = f"block {block}"
    try:
        while count < expected:
            tag = body[pos]
            pos += 1
            count += 1
            if tag == _TAG_INSERT_NEW or tag == _TAG_DELETE_NEW:
                prefix = body[pos]
                pos += 1
                if prefix >= 0x80:
                    prefix, pos = _decode_varint_slow(body, pos, prefix, path, count)
                suffix_len = body[pos]
                pos += 1
                if suffix_len >= 0x80:
                    suffix_len, pos = _decode_varint_slow(body, pos, suffix_len, path, count)
                end = pos + suffix_len
                if end > len(body):
                    raise IndexError
                if prefix:
                    if prefix > len(previous_name):
                        raise TraceFormatError(
                            f"{path}: {where}, record {count}: name prefix length "
                            f"{prefix} exceeds the previous name's "
                            f"{len(previous_name)} bytes"
                        )
                    raw = previous_name[:prefix] + body[pos:end]
                else:
                    raw = body[pos:end]
                pos = end
                previous_name = raw
                try:
                    name = raw.decode("utf-8")
                except UnicodeDecodeError as error:
                    raise TraceFormatError(
                        f"{path}: {where}, record {count}: undecodable name: {error}"
                    ) from error
                if tag == _TAG_INSERT_NEW:
                    size = body[pos]
                    pos += 1
                    if size >= 0x80:
                        size, pos = _decode_varint_slow(body, pos, size, path, count)
                    if size < 1:
                        raise TraceFormatError(
                            f"{path}: {where}, record {count}: insert with "
                            f"non-positive size {size}"
                        )
                    if free_ids:
                        bound[free_ids.pop()] = name
                    else:
                        bound[next_id] = name
                        next_id += 1
                    request = _new_request(Request)
                    _set_attr(request, "op", INSERT)
                    _set_attr(request, "name", name)
                    _set_attr(request, "size", size)
                else:
                    request = _new_request(Request)
                    _set_attr(request, "op", DELETE)
                    _set_attr(request, "name", name)
                    _set_attr(request, "size", 0)
                yield request
            elif tag == _TAG_DELETE_REF or tag == _TAG_INSERT_REF:
                name_id = body[pos]
                pos += 1
                if name_id >= 0x80:
                    name_id, pos = _decode_varint_slow(body, pos, name_id, path, count)
                if tag == _TAG_DELETE_REF:
                    try:
                        name = bound.pop(name_id)
                    except KeyError:
                        raise TraceFormatError(
                            f"{path}: {where}, record {count}: name id {name_id} "
                            "references an unbound name (never inserted, or "
                            "already deleted)"
                        ) from None
                    free_ids.append(name_id)
                    request = _new_request(Request)
                    _set_attr(request, "op", DELETE)
                    _set_attr(request, "name", name)
                    _set_attr(request, "size", 0)
                else:
                    try:
                        name = bound[name_id]
                    except KeyError:
                        raise TraceFormatError(
                            f"{path}: {where}, record {count}: name id {name_id} "
                            "references an unbound name (never inserted, or "
                            "already deleted)"
                        ) from None
                    size = body[pos]
                    pos += 1
                    if size >= 0x80:
                        size, pos = _decode_varint_slow(body, pos, size, path, count)
                    if size < 1:
                        raise TraceFormatError(
                            f"{path}: {where}, record {count}: insert with "
                            f"non-positive size {size}"
                        )
                    request = _new_request(Request)
                    _set_attr(request, "op", INSERT)
                    _set_attr(request, "name", name)
                    _set_attr(request, "size", size)
                yield request
            else:
                raise TraceFormatError(
                    f"{path}: {where}, record {count}: unknown record tag 0x{tag:02x}"
                )
    except IndexError:
        raise TraceFormatError(
            f"{path}: {where}: truncated record data (body ends mid-record; "
            f"{count - 1} of {expected} record(s) decoded)"
        ) from None
    if pos != len(body):
        raise TraceFormatError(
            f"{path}: {where}: trailing bytes after the declared records"
        )


def _read_block_parts(handle, compressed: bool, path, block: int):
    """Read one block with ``handle`` positioned just past its 0x05 tag.

    Returns ``(record_count, names, sizes, last_raw_name, body_bytes)``
    with the body already decompressed and the snapshot decoded.
    """
    record_count = _read_varint_from(handle, "block record count", path)
    entry_count = _read_varint_from(handle, "block entry count", path)
    snapshot_len = _read_varint_from(handle, "block snapshot length", path)
    snapshot = _read_exact_from(handle, snapshot_len, "block snapshot", path)
    body_len = _read_varint_from(handle, "block body length", path)
    body = _read_exact_from(handle, body_len, "block body", path)
    if compressed:
        try:
            body = zlib.decompress(body)
        except zlib.error as error:
            raise TraceFormatError(
                f"{path}: block {block}: corrupt zlib block body ({error})"
            ) from error
    names, sizes, last_raw = _decode_snapshot(snapshot, entry_count, path, block)
    return record_count, names, sizes, last_raw, body


def _iter_v3_records(handle, header: BinaryHeader, path) -> Iterator[Request]:
    """Sequential scan of a v3 body: blocks, END record, footer, trailer."""
    start_offset = handle.tell()
    blocks_seen: List[Tuple[int, int]] = []  # (offset, record_count)
    count = 0
    while True:
        offset = handle.tell()
        probe = handle.read(1)
        if len(probe) != 1:
            raise TraceFormatError(
                f"{path}: truncated trace file (end of data before the END "
                f"trailer; {count} record(s) read)"
            )
        tag = probe[0]
        if tag == _TAG_BLOCK:
            block = len(blocks_seen)
            record_count, names, _sizes, last_raw, body = _read_block_parts(
                handle, header.compressed, path, block
            )
            yield from _decode_block_records(
                body, names, last_raw, record_count, path, block
            )
            blocks_seen.append((offset, record_count))
            count += record_count
        elif tag == _TAG_END:
            declared = _read_varint_from(handle, "END trailer record count", path)
            if declared != count:
                raise TraceFormatError(
                    f"{path}: record count mismatch: END trailer declares "
                    f"{declared}, read {count}"
                )
            block_count = _read_varint_from(handle, "footer block count", path)
            if block_count != len(blocks_seen):
                raise TraceFormatError(
                    f"{path}: footer block count mismatch: footer declares "
                    f"{block_count}, read {len(blocks_seen)}"
                )
            previous = 0
            for index in range(block_count):
                delta = _read_varint_from(handle, "footer block offset", path)
                block_offset = delta if index == 0 else previous + delta
                block_records = _read_varint_from(handle, "footer block records", path)
                if (block_offset, block_records) != blocks_seen[index]:
                    raise TraceFormatError(
                        f"{path}: footer entry {index} disagrees with the block "
                        f"actually read (footer says offset {block_offset} / "
                        f"{block_records} record(s), read "
                        f"{blocks_seen[index][0]} / {blocks_seen[index][1]})"
                    )
                previous = block_offset
            trailer = _read_exact_from(handle, _TRAILER_LEN, "footer trailer", path)
            if trailer[8:] != _FOOTER_MAGIC:
                raise TraceFormatError(
                    f"{path}: bad footer magic {trailer[8:]!r} in the v3 trailer"
                )
            end_offset = int.from_bytes(trailer[:8], "little")
            if end_offset != offset:
                raise TraceFormatError(
                    f"{path}: v3 trailer points at offset {end_offset}, but the "
                    f"END record is at {offset}"
                )
            if handle.read(1):
                raise TraceFormatError(f"{path}: trailing data after the END trailer")
            telemetry = get_telemetry()
            if telemetry.enabled:
                telemetry.add("trace_io.decode_records", count)
                telemetry.add("trace_io.decode_bytes", handle.tell() - start_offset)
                telemetry.add("trace_io.decode_files")
            return
        else:
            raise TraceFormatError(
                f"{path}: block {len(blocks_seen)}: unknown record tag 0x{tag:02x}"
            )


# --------------------------------------------------------------- block index
def _check_block_tag(handle, path, block: int) -> None:
    tag = _read_exact_from(handle, 1, "block tag", path)[0]
    if tag != _TAG_BLOCK:
        raise TraceFormatError(
            f"{path}: block {block}: expected a block tag at its indexed "
            f"offset, found 0x{tag:02x}"
        )


@dataclass(frozen=True)
class TraceBlock:
    """One v3 block as described by the footer index."""

    index: int  # position in the block sequence
    offset: int  # absolute file offset of the 0x05 block tag
    records: int  # records encoded in this block
    start: int  # global index of the block's first record


@dataclass
class BlockIndex:
    """The seek index of a v3 trace: where every block lives.

    Built by :func:`read_block_index` from the fixed-size trailer at the
    end of the file — no body scan.  ``entry_snapshot`` and ``iter_range``
    seek straight to a block, which is what sharded parallel replay and
    suffix scans build on.
    """

    path: str
    compressed: bool
    total_records: int
    blocks: List[TraceBlock]
    header: BinaryHeader

    def __len__(self) -> int:
        return len(self.blocks)

    def entry_snapshot(self, block: int) -> List[Tuple[str, int]]:
        """The live ``(name, size)`` objects at entry to ``blocks[block]``."""
        target = self.blocks[block]
        with open(self.path, "rb") as handle:
            handle.seek(target.offset)
            _check_block_tag(handle, self.path, block)
            _count, names, sizes, _last, _body = _read_block_parts(
                handle, self.compressed, self.path, block
            )
        self._count_seeks(1)
        return list(zip(names, sizes))

    def iter_range(self, start: int, stop: Optional[int] = None) -> Iterator[Request]:
        """Yield the requests of blocks ``start..stop-1`` by seeking.

        ``stop`` defaults to the end of the trace, so ``iter_range(n)`` is
        the suffix of the trace from block ``n`` on.
        """
        blocks = self.blocks[start:stop]
        if not blocks:
            return
        with open(self.path, "rb") as handle:
            handle.seek(blocks[0].offset)
            for block in blocks:
                _check_block_tag(handle, self.path, block.index)
                record_count, names, _sizes, last_raw, body = _read_block_parts(
                    handle, self.compressed, self.path, block.index
                )
                if record_count != block.records:
                    raise TraceFormatError(
                        f"{self.path}: block {block.index} declares {record_count} "
                        f"record(s), footer index says {block.records}"
                    )
                yield from _decode_block_records(
                    body, names, last_raw, record_count, self.path, block.index
                )
        self._count_seeks(len(blocks))

    def _count_seeks(self, seeks: int) -> None:
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.add("trace_io.block_seeks", seeks)


def read_block_index(path: Union[str, os.PathLike]) -> Optional[BlockIndex]:
    """Read the footer index of a v3 trace without scanning the body.

    Returns ``None`` when ``path`` is not seekable — not a plain-container
    v3 file (v0/v1/v2, or anything inside a gzip container, which has no
    random access).  Raises :class:`TraceFormatError` when the file claims
    to be v3 but its trailer or footer is missing or corrupt.
    """
    with open(path, "rb") as handle:
        head = handle.read(2)
        if head == b"\x1f\x8b":  # gzip container: no random access
            return None
        handle.seek(0)
        if handle.read(len(MAGIC)) != MAGIC:
            return None
        handle.seek(0)
        header = read_binary_header(handle, path)
        if header.version != 3:
            return None
        file_size = os.fstat(handle.fileno()).st_size
        if file_size < _TRAILER_LEN:
            raise TraceFormatError(
                f"{path}: truncated trace file (too small for the v3 trailer)"
            )
        handle.seek(file_size - _TRAILER_LEN)
        trailer = handle.read(_TRAILER_LEN)
        if trailer[8:] != _FOOTER_MAGIC:
            raise TraceFormatError(
                f"{path}: bad footer magic {trailer[8:]!r} in the v3 trailer "
                "(truncated or not a completed v3 trace)"
            )
        end_offset = int.from_bytes(trailer[:8], "little")
        if end_offset >= file_size - _TRAILER_LEN:
            raise TraceFormatError(
                f"{path}: v3 trailer points at offset {end_offset}, past the footer"
            )
        handle.seek(end_offset)
        tag = _read_exact_from(handle, 1, "END tag", path)[0]
        if tag != _TAG_END:
            raise TraceFormatError(
                f"{path}: v3 trailer points at tag 0x{tag:02x}, not the END record"
            )
        total = _read_varint_from(handle, "END trailer record count", path)
        block_count = _read_varint_from(handle, "footer block count", path)
        blocks: List[TraceBlock] = []
        previous = 0
        start = 0
        for index in range(block_count):
            delta = _read_varint_from(handle, "footer block offset", path)
            offset = delta if index == 0 else previous + delta
            records = _read_varint_from(handle, "footer block records", path)
            blocks.append(TraceBlock(index=index, offset=offset, records=records, start=start))
            previous = offset
            start += records
        if start != total:
            raise TraceFormatError(
                f"{path}: footer block records sum to {start}, END trailer "
                f"declares {total}"
            )
        if handle.tell() != file_size - _TRAILER_LEN:
            raise TraceFormatError(
                f"{path}: footer does not end at the v3 trailer"
            )
    return BlockIndex(
        path=str(path),
        compressed=header.compressed,
        total_records=total,
        blocks=blocks,
        header=header,
    )


# ----------------------------------------------------------------- tail reader
@dataclass
class TraceTail:
    """What :func:`read_trace_tail` salvaged from a (possibly crashed) v3 file."""

    requests: List[Request]
    complete: bool  # True when the END trailer was reached (a finished trace)
    blocks: int  # complete blocks decoded
    header: BinaryHeader


def read_trace_tail(path: Union[str, os.PathLike]) -> TraceTail:
    """Best-effort sequential read of a v3 trace that may lack its trailer.

    The strict readers treat a missing END trailer as corruption — correct
    for archives, useless for crash recovery.  A live serving session syncs
    its recording after every batch (see :meth:`BinaryTraceWriter.sync`),
    so after a crash the file is a prefix of complete, self-delimiting
    blocks followed by at most one torn block.  This reader decodes every
    complete block and stops quietly at the first truncation, returning the
    salvaged requests — the "trace tail" that snapshot-restore replays.

    Raises :class:`TraceFormatError` only when the file is not a plain v3
    trace at all (bad magic, not v3, or a header too mangled to read).
    """
    with open(path, "rb") as handle:
        header = read_binary_header(handle, path)
        if header.version != 3:
            raise TraceFormatError(
                f"{path}: tail recovery needs a v3 trace, got v{header.version}"
            )
        requests: List[Request] = []
        blocks = 0
        while True:
            probe = handle.read(1)
            if len(probe) != 1:
                return TraceTail(requests, False, blocks, header)
            tag = probe[0]
            if tag == _TAG_END:
                return TraceTail(requests, True, blocks, header)
            if tag != _TAG_BLOCK:
                return TraceTail(requests, False, blocks, header)
            try:
                record_count, names, _sizes, last_raw, body = _read_block_parts(
                    handle, header.compressed, path, blocks
                )
                decoded = list(
                    _decode_block_records(
                        body, names, last_raw, record_count, path, blocks
                    )
                )
            except TraceFormatError:
                # A torn final block: everything before it is intact.
                return TraceTail(requests, False, blocks, header)
            requests.extend(decoded)
            blocks += 1


# --------------------------------------------------------------------- writer
class BinaryTraceWriter:
    """Streaming writer for the binary trace formats (v2 and v3).

    Usable as a context manager; requests are encoded and flushed through a
    bounded buffer, so writing a 10M-request trace never holds it in memory:
    the only growing state is the live-name table plus the free-id pool
    (both bounded by the peak number of simultaneously live objects) and,
    for v3, one block's worth of encoded records.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        label: str = "trace",
        metadata: Optional[Dict[str, Any]] = None,
        compress: Union[bool, str] = False,
        compresslevel: int = 6,
        version: int = BINARY_FORMAT_VERSION,
        block_records: int = DEFAULT_BLOCK_RECORDS,
    ) -> None:
        if version not in KNOWN_BINARY_VERSIONS:
            raise ValueError(
                f"unknown binary trace version {version!r}; known: "
                + ", ".join(str(v) for v in KNOWN_BINARY_VERSIONS)
            )
        if version == 3 and block_records < 1:
            raise ValueError(f"v3 block size must be >= 1 record, got {block_records}")
        if isinstance(compress, str) and compress != "background":
            raise ValueError(
                f"unknown compress mode {compress!r}; "
                "use False, True (inline), or 'background'"
            )
        self.path = path
        self.version = version
        self.count = 0
        self.block_records = block_records
        header = {"label": str(label)}
        if metadata:
            header["meta"] = dict(metadata)
        try:
            header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        except (TypeError, ValueError) as error:
            raise ValueError(
                f"cannot save trace metadata to {path}: not JSON-serialisable ({error})"
            ) from error
        flags = _FLAG_ZLIB if compress else 0
        self._handle = open(path, "wb")
        self._handle.write(
            MAGIC
            + encode_varint(version)
            + bytes([flags])
            + encode_varint(len(header_bytes))
            + header_bytes
        )
        self._compressed = bool(compress)
        self._compresslevel = compresslevel
        self._background = compress == "background"
        self._compressor = (
            zlib.compressobj(compresslevel)
            if compress and version == 2 and not self._background
            else None
        )
        self._buffer = bytearray()
        self._bound: Dict[str, int] = {}  # live name -> id
        self._free_ids: List[int] = []  # LIFO pool, mirrored by the reader
        self._next_id = 0
        self._previous_name = b""  # front-coding state
        self._closed = False
        # v3 state: live sizes for block-entry snapshots, the footer index,
        # and the current block's record count.
        self._live_sizes: Dict[str, int] = {}
        self._blocks: List[Tuple[int, int]] = []  # (offset, record_count)
        self._block_count = 0
        self._pending_snapshot = b""
        self._pending_entries = 0
        # Background compression: a single writer thread owns the file
        # handle between header and trailer — it compresses each chunk or
        # block and writes it in submission order, so the on-disk bytes are
        # identical to inline compression while the encode loop stays free
        # to run.  Errors surface on the next write()/sync()/close().
        self._tasks: Optional[queue.Queue] = None
        self._worker: Optional[threading.Thread] = None
        self._worker_error: Optional[BaseException] = None
        if self._background:
            self._background_compressor = (
                zlib.compressobj(compresslevel) if version == 2 else None
            )
            self._tasks = queue.Queue(maxsize=8)
            self._worker = threading.Thread(
                target=self._background_loop,
                name=f"trace-compress:{os.path.basename(str(path))}",
                daemon=True,
            )
            self._worker.start()
        if version == 3:
            self._start_block()

    def __enter__(self) -> "BinaryTraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()

    # ------------------------------------------------------------- v3 blocks
    def _start_block(self) -> None:
        """Capture the block-entry snapshot and restart the interning table.

        Snapshot names are bound to ids ``0..n-1`` in sorted UTF-8 byte
        order (fresh ids continue from ``n``, the free pool empties) and
        record front-coding restarts from the last snapshot name — exactly
        what the reader reconstructs from the snapshot alone.
        """
        entries = sorted(
            (name.encode("utf-8"), name, size)
            for name, size in self._live_sizes.items()
        )
        snapshot = bytearray()
        prev = b""
        bound: Dict[str, int] = {}
        for index, (raw, name, size) in enumerate(entries):
            prefix = 0
            limit = min(len(raw), len(prev))
            while prefix < limit and raw[prefix] == prev[prefix]:
                prefix += 1
            snapshot += encode_varint(prefix)
            snapshot += encode_varint(len(raw) - prefix)
            snapshot += raw[prefix:]
            snapshot += encode_varint(size)
            prev = raw
            bound[name] = index
        self._pending_snapshot = bytes(snapshot)
        self._pending_entries = len(entries)
        self._bound = bound
        self._free_ids = []
        self._next_id = len(entries)
        self._previous_name = prev
        self._block_count = 0

    def _flush_block(self) -> None:
        """Write the buffered block (header + snapshot + body) to disk."""
        body = bytes(self._buffer)
        self._buffer.clear()
        if self._background:
            self._submit(
                (
                    "block",
                    (
                        body,
                        self._block_count,
                        self._pending_entries,
                        self._pending_snapshot,
                    ),
                )
            )
            return
        if self._compressed:
            body = zlib.compress(body, self._compresslevel)
        offset = self._handle.tell()
        block = (
            bytes([_TAG_BLOCK])
            + encode_varint(self._block_count)
            + encode_varint(self._pending_entries)
            + encode_varint(len(self._pending_snapshot))
            + self._pending_snapshot
            + encode_varint(len(body))
            + body
        )
        # Fault site: a crash mid-block must leave a truncation the reader
        # detects (the missing END trailer / footer), never a silent gap.
        fault_write("trace.write.block", self._handle, block)
        self._blocks.append((offset, self._block_count))

    # ---------------------------------------------------- background worker
    def _submit(self, task) -> None:
        """Hand one task to the writer thread (surfaces its last error)."""
        if self._worker_error is not None:
            raise self._worker_error
        self._tasks.put(task)

    def _background_loop(self) -> None:
        """The writer thread: compress and write tasks in submission order.

        The thread is the only writer between header and trailer, so file
        offsets recorded here (for the v3 footer) are consistent.  zlib
        releases the GIL, which is what lets compression overlap the
        CPU-bound encode/replay loop.  After an error the loop keeps
        draining (writing nothing) so submitters never block on a dead
        consumer; the error re-raises on the next write()/sync()/close().
        """
        while True:
            task = self._tasks.get()
            if task is None:
                self._tasks.task_done()
                return
            kind, payload = task
            try:
                if self._worker_error is None:
                    if kind == "chunk":
                        data = self._background_compressor.compress(payload)
                        if data:
                            fault_write("trace.write.body", self._handle, data)
                    elif kind == "flush":
                        tail = self._background_compressor.flush()
                        if tail:
                            self._handle.write(tail)
                    else:  # "block"
                        body, block_count, entries, snapshot = payload
                        body = zlib.compress(body, self._compresslevel)
                        offset = self._handle.tell()
                        block = (
                            bytes([_TAG_BLOCK])
                            + encode_varint(block_count)
                            + encode_varint(entries)
                            + encode_varint(len(snapshot))
                            + snapshot
                            + encode_varint(len(body))
                            + body
                        )
                        fault_write("trace.write.block", self._handle, block)
                        self._blocks.append((offset, block_count))
            except BaseException as error:
                self._worker_error = error
            finally:
                self._tasks.task_done()

    def _finish_background(self, discard: bool = False) -> None:
        """Stop the writer thread and (unless discarding) surface its error."""
        if self._worker is None:
            return
        self._tasks.put(None)
        self._worker.join()
        self._worker = None
        if not discard and self._worker_error is not None:
            raise self._worker_error

    # --------------------------------------------------------------- records
    def _append_name(self, buffer: bytearray, raw: bytes) -> None:
        """Front-coded name bytes: shared-prefix length + suffix."""
        previous = self._previous_name
        prefix = 0
        limit = min(len(raw), len(previous))
        while prefix < limit and raw[prefix] == previous[prefix]:
            prefix += 1
        self._previous_name = raw
        suffix_len = len(raw) - prefix
        if prefix < 0x80:
            buffer.append(prefix)
        else:
            buffer += encode_varint(prefix)
        if suffix_len < 0x80:
            buffer.append(suffix_len)
        else:
            buffer += encode_varint(suffix_len)
        buffer += raw[prefix:]

    def write(self, request: Request) -> None:
        """Append one request to the trace."""
        if self._closed:
            raise ValueError(f"trace writer for {self.path} is already closed")
        name = str(request.name)
        name_id = self._bound.get(name)
        buffer = self._buffer
        size = request.size
        if request.op == INSERT:
            if name_id is None:
                if self._free_ids:
                    self._bound[name] = self._free_ids.pop()
                else:
                    self._bound[name] = self._next_id
                    self._next_id += 1
                buffer.append(_TAG_INSERT_NEW)
                self._append_name(buffer, name.encode("utf-8"))
            else:
                # Degenerate double-insert of a live name: keep the binding.
                buffer.append(_TAG_INSERT_REF)
                if name_id < 0x80:
                    buffer.append(name_id)
                else:
                    buffer += encode_varint(name_id)
            if size < 0x80:
                buffer.append(size)
            else:
                buffer += encode_varint(size)
        else:
            if name_id is None:
                buffer.append(_TAG_DELETE_NEW)
                self._append_name(buffer, name.encode("utf-8"))
            else:
                del self._bound[name]
                self._free_ids.append(name_id)
                buffer.append(_TAG_DELETE_REF)
                if name_id < 0x80:
                    buffer.append(name_id)
                else:
                    buffer += encode_varint(name_id)
        self.count += 1
        if self.version == 3:
            if request.op == INSERT:
                self._live_sizes[name] = size
            else:
                self._live_sizes.pop(name, None)
            self._block_count += 1
            if self._block_count >= self.block_records:
                self._flush_block()
                self._start_block()
        elif len(buffer) >= _CHUNK:
            self._flush_buffer()

    def _flush_buffer(self) -> None:
        data = bytes(self._buffer)
        self._buffer.clear()
        if self._background:
            if data:
                self._submit(("chunk", data))
            return
        if self._compressor is not None:
            data = self._compressor.compress(data)
        if data:
            fault_write("trace.write.body", self._handle, data)

    def sync(self) -> None:
        """Flush everything written so far to the OS in decodable form.

        For v3 the current partial block is written out as its own
        (shorter) block and a fresh block begins — legal because the footer
        records per-block counts — so after ``sync()`` every request
        written so far sits in a complete, self-delimiting block that
        :func:`read_trace_tail` can recover even if the process dies before
        :meth:`close`.  For v2 the record buffer is flushed (a compressed
        v2 stream still only terminates at close, so sync merely bounds the
        buffered bytes).  Background-compression tasks are drained first,
        so on return the bytes have left the process.
        """
        if self._closed:
            raise ValueError(f"trace writer for {self.path} is already closed")
        if self.version == 3:
            if self._block_count:
                self._flush_block()
                self._start_block()
        else:
            self._flush_buffer()
        if self._background:
            self._tasks.join()
            if self._worker_error is not None:
                raise self._worker_error
        self._handle.flush()

    def close(self) -> None:
        """Write the END trailer (and v3 footer index) and close the file
        (idempotent)."""
        if self._closed:
            return
        if self.version == 3:
            if self._block_count:
                self._flush_block()
            # The footer needs the final offsets, so the writer thread (the
            # only other writer) must be done before the trailer lands.
            self._finish_background()
            end_offset = self._handle.tell()
            footer = bytearray([_TAG_END])
            footer += encode_varint(self.count)
            footer += encode_varint(len(self._blocks))
            previous = 0
            for index, (offset, records) in enumerate(self._blocks):
                footer += encode_varint(offset if index == 0 else offset - previous)
                footer += encode_varint(records)
                previous = offset
            footer += end_offset.to_bytes(8, "little")
            footer += _FOOTER_MAGIC
            # Fault site: a crash before the footer lands must be detected
            # as truncation by the reader (missing END/magic), never read
            # back as a shorter-but-valid trace.
            fault_write("trace.write.trailer", self._handle, bytes(footer))
        else:
            fault_point("trace.write.trailer")
            self._buffer.append(_TAG_END)
            self._buffer += encode_varint(self.count)
            self._flush_buffer()
            if self._background:
                self._submit(("flush", None))
                self._finish_background()
            elif self._compressor is not None:
                self._handle.write(self._compressor.flush())
        self._handle.close()
        self._closed = True
        # Cold path: one telemetry push per completed file, so the
        # per-request write loop never touches telemetry.
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.add("trace_io.encode_records", self.count)
            telemetry.add("trace_io.encode_bytes", os.path.getsize(self.path))
            telemetry.add("trace_io.encode_files")

    def abort(self) -> None:
        """Close the underlying file without writing a valid trailer."""
        if not self._closed:
            self._finish_background(discard=True)
            self._handle.close()
            self._closed = True
