"""The binary v2 trace container: compact, streamable, optionally compressed.

Layout of a v2 file::

    magic        8 bytes   b"\\x93RPTRACE" (first byte non-ASCII so text
                           parsers bail out immediately)
    version      varint    2
    flags        1 byte    bit 0: record body is one zlib stream
    header len   varint    byte length of the JSON header block
    header       bytes     UTF-8 JSON: {"label": str, "meta": {...}}
    body         records   (zlib-compressed as a whole when flagged)

The body is a sequence of varint-encoded records over a *live-scoped
interned name table*: an insert binds its name to an integer id (the most
recently freed id, else the next fresh one — writer and reader mirror the
same LIFO rule), a delete references the id and frees it again.  Ids are
therefore bounded by the peak number of simultaneously *live* objects, so
they stay one or two bytes even in traces with millions of distinct names —
and so does the table itself, which is what keeps both ends of the pipe
streaming.  Name bytes are *front-coded*: each name-carrying record stores
the byte length it shares with the previously written name plus the new
suffix, which collapses the ``obj-000123``-style names synthetic workloads
generate to a couple of bytes.

    0x01  INSERT, new name:   varint shared-prefix-len, varint suffix-len,
                              suffix bytes, varint size   (binds an id)
    0x02  INSERT, live name:  varint name-id, varint size (id stays bound;
                              only produced for degenerate double-inserts)
    0x03  DELETE, live name:  varint name-id              (frees the id)
    0x04  DELETE, other name: varint shared-prefix-len, varint suffix-len,
                              suffix bytes                (binds nothing)
    0x00  END trailer:        varint total record count

The END trailer makes truncation detectable: a reader that hits EOF before
the trailer (or whose record count disagrees with it) reports a truncated
file instead of silently yielding a prefix.  All varints are unsigned
LEB128.

Everything here is streaming: :class:`BinaryTraceWriter` and
:func:`iter_binary_records` hold an I/O buffer plus per-*live*-object state
(the id table and free-id stack), never anything proportional to the trace
length or the number of distinct names.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Union

from repro.obs.telemetry import get_telemetry
from repro.workloads.base import Request

#: First bytes of every v2 trace file.
MAGIC = b"\x93RPTRACE"
#: The container version this module reads and writes.
BINARY_FORMAT_VERSION = 2

_FLAG_ZLIB = 0x01

_TAG_END = 0x00
_TAG_INSERT_NEW = 0x01
_TAG_INSERT_REF = 0x02
_TAG_DELETE_REF = 0x03
_TAG_DELETE_NEW = 0x04

_CHUNK = 64 * 1024


class TraceFormatError(ValueError):
    """A trace file is malformed: bad magic, truncated, or corrupt."""


def encode_varint(value: int) -> bytes:
    """Unsigned LEB128 encoding of ``value`` (which must be >= 0)."""
    if value < 0:
        raise ValueError(f"varints are unsigned, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


# --------------------------------------------------------------------- reader
class _RecordStream:
    """Bounded-buffer reader over a (possibly zlib-compressed) record body."""

    def __init__(self, handle, compressed: bool, path) -> None:
        self._handle = handle
        self._path = path
        self._decompressor = zlib.decompressobj() if compressed else None
        self._buffer = b""
        self._pos = 0
        self._input_done = False
        self.raw_bytes = 0  # compressed/on-disk body bytes consumed

    def _fill(self, need: int) -> None:
        while len(self._buffer) - self._pos < need and not self._input_done:
            chunk = self._handle.read(_CHUNK)
            self.raw_bytes += len(chunk)
            if not chunk:
                self._input_done = True
                if self._decompressor is not None:
                    try:
                        tail = self._decompressor.flush()
                    except zlib.error as error:
                        raise TraceFormatError(
                            f"{self._path}: truncated or corrupt zlib record body ({error})"
                        ) from error
                    # flush() does not verify stream completeness; a clipped
                    # final block or checksum only shows up as eof == False.
                    if not self._decompressor.eof:
                        raise TraceFormatError(
                            f"{self._path}: truncated zlib record body "
                            "(compressed stream ends mid-block)"
                        )
                    if tail:
                        self._buffer = self._buffer[self._pos:] + tail
                        self._pos = 0
                break
            if self._decompressor is not None:
                try:
                    chunk = self._decompressor.decompress(chunk)
                except zlib.error as error:
                    raise TraceFormatError(
                        f"{self._path}: corrupt zlib record body ({error})"
                    ) from error
            self._buffer = self._buffer[self._pos:] + chunk
            self._pos = 0

    def at_eof(self) -> bool:
        self._fill(1)
        if len(self._buffer) - self._pos >= 1:
            return False
        if self._decompressor is not None and self._decompressor.unused_data:
            raise TraceFormatError(
                f"{self._path}: trailing data after the compressed record body"
            )
        return True

    def read_exact(self, count: int, what: str) -> bytes:
        self._fill(count)
        if len(self._buffer) - self._pos < count:
            raise TraceFormatError(
                f"{self._path}: truncated trace file (unexpected end of data "
                f"while reading {what})"
            )
        start = self._pos
        self._pos += count
        return self._buffer[start:self._pos]

    def read_varint(self, what: str) -> int:
        value = 0
        shift = 0
        while True:
            byte = self.read_exact(1, what)[0]
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 63:
                raise TraceFormatError(
                    f"{self._path}: corrupt varint while reading {what} (over 9 bytes)"
                )


@dataclass
class BinaryHeader:
    """The decoded fixed header of a v2 trace file."""

    version: int
    compressed: bool
    label: str
    metadata: Dict[str, Any] = field(default_factory=dict)


# These two header helpers intentionally mirror _RecordStream.read_exact /
# read_varint: the header must be read byte-exactly from the raw handle (no
# buffered overshoot into the body), while the body reader is specialised
# for bulk chunked/decompressed input on the hot path.  Keep their guards
# and error wording in sync.
def _read_exact_from(handle, count: int, what: str, path) -> bytes:
    data = handle.read(count)
    if len(data) != count:
        raise TraceFormatError(
            f"{path}: truncated trace file (unexpected end of data while reading {what})"
        )
    return data


def _read_varint_from(handle, what: str, path) -> int:
    value = 0
    shift = 0
    while True:
        byte = _read_exact_from(handle, 1, what, path)[0]
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value
        shift += 7
        if shift > 63:
            raise TraceFormatError(
                f"{path}: corrupt varint while reading {what} (over 9 bytes)"
            )


def read_binary_header(handle, path) -> BinaryHeader:
    """Decode the v2 header from ``handle`` (positioned at offset 0).

    The header is read byte-exactly, so ``handle`` is left positioned at the
    first body byte.  Raises :class:`TraceFormatError` on bad magic, an
    unknown version, or a malformed header block.
    """
    magic = handle.read(len(MAGIC))
    if magic != MAGIC:
        raise TraceFormatError(
            f"{path}: bad magic {magic!r}; not a v2 binary trace"
        )
    version = _read_varint_from(handle, "format version", path)
    if version != BINARY_FORMAT_VERSION:
        raise TraceFormatError(
            f"{path}: unsupported binary trace version {version}; "
            f"this reader knows v{BINARY_FORMAT_VERSION}"
        )
    flags = _read_exact_from(handle, 1, "flags", path)[0]
    if flags & ~_FLAG_ZLIB:
        raise TraceFormatError(f"{path}: unknown flag bits 0x{flags:02x} in v2 header")
    header_length = _read_varint_from(handle, "header length", path)
    header_bytes = _read_exact_from(handle, header_length, "JSON header block", path)
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise TraceFormatError(f"{path}: malformed v2 JSON header block: {error}") from error
    if not isinstance(header, dict):
        raise TraceFormatError(
            f"{path}: v2 header block must be a JSON object, "
            f"got {type(header).__name__}"
        )
    metadata = header.get("meta", {})
    if not isinstance(metadata, dict):
        raise TraceFormatError(
            f"{path}: v2 trace metadata must be a JSON object, "
            f"got {type(metadata).__name__}"
        )
    return BinaryHeader(
        version=version,
        compressed=bool(flags & _FLAG_ZLIB),
        label=str(header.get("label", "")),
        metadata=metadata,
    )


def iter_binary_records(handle, header: BinaryHeader, path) -> Iterator[Request]:
    """Yield the requests of a v2 body one at a time (bounded memory).

    ``handle`` must be positioned at the first body byte (where
    :func:`read_binary_header` leaves it).  Verifies the END trailer and the
    record count, so truncated and over-long files raise
    :class:`TraceFormatError` instead of yielding a silent prefix.
    """
    stream = _RecordStream(handle, compressed=header.compressed, path=path)
    bound: Dict[int, str] = {}  # live name-id bindings
    free_ids: list = []  # LIFO pool mirroring the writer's id assignment
    next_id = 0
    previous_name = b""  # front-coding state
    count = 0

    def read_name() -> str:
        nonlocal previous_name
        prefix_length = stream.read_varint("name prefix length")
        if prefix_length > len(previous_name):
            raise TraceFormatError(
                f"{path}: record {count}: name prefix length {prefix_length} exceeds "
                f"the previous name's {len(previous_name)} bytes"
            )
        suffix_length = stream.read_varint("name suffix length")
        raw = previous_name[:prefix_length] + stream.read_exact(suffix_length, "name bytes")
        previous_name = raw
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as error:
            raise TraceFormatError(f"{path}: record {count}: undecodable name: {error}") from error

    def ref_name() -> str:
        name_id = stream.read_varint("name id")
        try:
            return bound[name_id]
        except KeyError:
            raise TraceFormatError(
                f"{path}: record {count}: name id {name_id} references an unbound name "
                "(never inserted, or already deleted)"
            ) from None

    while True:
        if stream.at_eof():
            raise TraceFormatError(
                f"{path}: truncated trace file (end of data before the END trailer; "
                f"{count} record(s) read)"
            )
        tag = stream.read_exact(1, "record tag")[0]
        if tag == _TAG_END:
            declared = stream.read_varint("END trailer record count")
            if declared != count:
                raise TraceFormatError(
                    f"{path}: record count mismatch: END trailer declares {declared}, "
                    f"read {count}"
                )
            if not stream.at_eof():
                raise TraceFormatError(f"{path}: trailing data after the END trailer")
            # Cold path: counters are pushed once per completed file, so the
            # per-record decode loop never touches telemetry.
            telemetry = get_telemetry()
            if telemetry.enabled:
                telemetry.add("trace_io.decode_records", count)
                telemetry.add("trace_io.decode_bytes", stream.raw_bytes)
                telemetry.add("trace_io.decode_files")
            return
        count += 1
        if tag == _TAG_INSERT_NEW:
            name = read_name()
            if free_ids:
                name_id = free_ids.pop()
            else:
                name_id = next_id
                next_id += 1
            bound[name_id] = name
            yield Request.insert(name, stream.read_varint("insert size"))
        elif tag == _TAG_INSERT_REF:
            name = ref_name()
            yield Request.insert(name, stream.read_varint("insert size"))
        elif tag == _TAG_DELETE_REF:
            name_id = stream.read_varint("name id")
            try:
                name = bound.pop(name_id)
            except KeyError:
                raise TraceFormatError(
                    f"{path}: record {count}: name id {name_id} references an unbound "
                    "name (never inserted, or already deleted)"
                ) from None
            free_ids.append(name_id)
            yield Request.delete(name)
        elif tag == _TAG_DELETE_NEW:
            yield Request.delete(read_name())
        else:
            raise TraceFormatError(
                f"{path}: record {count}: unknown record tag 0x{tag:02x}"
            )


# --------------------------------------------------------------------- writer
class BinaryTraceWriter:
    """Streaming writer for the v2 binary trace format.

    Usable as a context manager; requests are encoded and flushed through a
    bounded buffer, so writing a 10M-request trace never holds it in memory:
    the only growing state is the live-name table plus the free-id pool,
    both bounded by the peak number of simultaneously live objects.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        label: str = "trace",
        metadata: Optional[Dict[str, Any]] = None,
        compress: bool = False,
        compresslevel: int = 6,
    ) -> None:
        self.path = path
        self.count = 0
        header = {"label": str(label)}
        if metadata:
            header["meta"] = dict(metadata)
        try:
            header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        except (TypeError, ValueError) as error:
            raise ValueError(
                f"cannot save trace metadata to {path}: not JSON-serialisable ({error})"
            ) from error
        flags = _FLAG_ZLIB if compress else 0
        self._handle = open(path, "wb")
        self._handle.write(
            MAGIC
            + encode_varint(BINARY_FORMAT_VERSION)
            + bytes([flags])
            + encode_varint(len(header_bytes))
            + header_bytes
        )
        self._compressor = zlib.compressobj(compresslevel) if compress else None
        self._buffer = bytearray()
        self._bound: Dict[str, int] = {}  # live name -> id
        self._free_ids: list = []  # LIFO pool, mirrored by the reader
        self._next_id = 0
        self._previous_name = b""  # front-coding state
        self._closed = False

    def __enter__(self) -> "BinaryTraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()

    def _encode_name(self, name: str) -> bytes:
        """Front-coded name bytes: shared-prefix length + suffix."""
        raw = name.encode("utf-8")
        previous = self._previous_name
        prefix = 0
        limit = min(len(raw), len(previous))
        while prefix < limit and raw[prefix] == previous[prefix]:
            prefix += 1
        self._previous_name = raw
        return encode_varint(prefix) + encode_varint(len(raw) - prefix) + raw[prefix:]

    def write(self, request: Request) -> None:
        """Append one request to the trace."""
        if self._closed:
            raise ValueError(f"trace writer for {self.path} is already closed")
        name = str(request.name)
        name_id = self._bound.get(name)
        buffer = self._buffer
        if request.is_insert:
            if name_id is None:
                if self._free_ids:
                    self._bound[name] = self._free_ids.pop()
                else:
                    self._bound[name] = self._next_id
                    self._next_id += 1
                buffer += bytes([_TAG_INSERT_NEW]) + self._encode_name(name)
            else:
                # Degenerate double-insert of a live name: keep the binding.
                buffer += bytes([_TAG_INSERT_REF]) + encode_varint(name_id)
            buffer += encode_varint(request.size)
        else:
            if name_id is None:
                buffer += bytes([_TAG_DELETE_NEW]) + self._encode_name(name)
            else:
                del self._bound[name]
                self._free_ids.append(name_id)
                buffer += bytes([_TAG_DELETE_REF]) + encode_varint(name_id)
        self.count += 1
        if len(buffer) >= _CHUNK:
            self._flush_buffer()

    def _flush_buffer(self) -> None:
        data = bytes(self._buffer)
        self._buffer.clear()
        if self._compressor is not None:
            data = self._compressor.compress(data)
        if data:
            self._handle.write(data)

    def close(self) -> None:
        """Write the END trailer and close the file (idempotent)."""
        if self._closed:
            return
        self._buffer += bytes([_TAG_END]) + encode_varint(self.count)
        self._flush_buffer()
        if self._compressor is not None:
            self._handle.write(self._compressor.flush())
        self._handle.close()
        self._closed = True
        # Cold path: one telemetry push per completed file, so the
        # per-request write loop never touches telemetry.
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.add("trace_io.encode_records", self.count)
            telemetry.add("trace_io.encode_bytes", os.path.getsize(self.path))
            telemetry.add("trace_io.encode_files")

    def abort(self) -> None:
        """Close the underlying file without writing a valid trailer."""
        if not self._closed:
            self._handle.close()
            self._closed = True
