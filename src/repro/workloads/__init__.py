"""Workload generation: online insert/delete request traces.

The paper's model is an online sequence of ``<INSERTOBJECT, name, length>``
and ``<DELETEOBJECT, name>`` requests.  This package provides the request /
trace datatypes, synthetic generators (steady-state churn, grow–shrink,
database-style block traffic) over several size distributions, adversarial
sequences (including the Lemma 3.7 lower-bound instance), and plain-text
trace recording / replay.
"""

from repro.workloads.base import Request, RequestSource, Trace, trace_from_pairs
from repro.workloads.sizes import (
    SizeDistribution,
    UniformSizes,
    FixedSizes,
    PowerOfTwoSizes,
    ZipfSizes,
    BimodalSizes,
    DatabaseBlockSizes,
)
from repro.workloads.synthetic import (
    churn_trace,
    grow_then_shrink_trace,
    sliding_window_trace,
    database_trace,
)
from repro.workloads.adversarial import (
    lower_bound_trace,
    large_then_small_trace,
    repeated_large_delete_trace,
    small_flood_trace,
    descending_powers_trace,
    fragmentation_attack_trace,
    sawtooth_trace,
)
from repro.workloads.binary import (
    BINARY_FORMAT_VERSION,
    DEFAULT_BLOCK_RECORDS,
    BinaryTraceWriter,
    BlockIndex,
    TraceBlock,
    TraceFormatError,
    TraceTail,
    read_block_index,
    read_trace_tail,
)
from repro.workloads.replay import (
    KNOWN_TRACE_VERSIONS,
    TRACE_FORMAT_VERSION,
    TraceFileSource,
    TraceInfo,
    iter_trace,
    load_trace,
    open_trace_writer,
    save_trace,
    trace_info,
)

__all__ = [
    "Request",
    "RequestSource",
    "Trace",
    "trace_from_pairs",
    "SizeDistribution",
    "UniformSizes",
    "FixedSizes",
    "PowerOfTwoSizes",
    "ZipfSizes",
    "BimodalSizes",
    "DatabaseBlockSizes",
    "churn_trace",
    "grow_then_shrink_trace",
    "sliding_window_trace",
    "database_trace",
    "lower_bound_trace",
    "large_then_small_trace",
    "repeated_large_delete_trace",
    "small_flood_trace",
    "descending_powers_trace",
    "fragmentation_attack_trace",
    "sawtooth_trace",
    "save_trace",
    "load_trace",
    "iter_trace",
    "trace_info",
    "open_trace_writer",
    "TraceFileSource",
    "TraceInfo",
    "TraceFormatError",
    "BinaryTraceWriter",
    "BlockIndex",
    "TraceBlock",
    "TraceTail",
    "read_block_index",
    "read_trace_tail",
    "TRACE_FORMAT_VERSION",
    "BINARY_FORMAT_VERSION",
    "KNOWN_TRACE_VERSIONS",
    "DEFAULT_BLOCK_RECORDS",
]
