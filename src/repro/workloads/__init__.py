"""Workload generation: online insert/delete request traces.

The paper's model is an online sequence of ``<INSERTOBJECT, name, length>``
and ``<DELETEOBJECT, name>`` requests.  This package provides the request /
trace datatypes, synthetic generators (steady-state churn, grow–shrink,
database-style block traffic) over several size distributions, adversarial
sequences (including the Lemma 3.7 lower-bound instance), and plain-text
trace recording / replay.
"""

from repro.workloads.base import Request, Trace, trace_from_pairs
from repro.workloads.sizes import (
    SizeDistribution,
    UniformSizes,
    FixedSizes,
    PowerOfTwoSizes,
    ZipfSizes,
    BimodalSizes,
    DatabaseBlockSizes,
)
from repro.workloads.synthetic import (
    churn_trace,
    grow_then_shrink_trace,
    sliding_window_trace,
    database_trace,
)
from repro.workloads.adversarial import (
    lower_bound_trace,
    large_then_small_trace,
    repeated_large_delete_trace,
    small_flood_trace,
    descending_powers_trace,
    fragmentation_attack_trace,
    sawtooth_trace,
)
from repro.workloads.replay import TRACE_FORMAT_VERSION, save_trace, load_trace

__all__ = [
    "Request",
    "Trace",
    "trace_from_pairs",
    "SizeDistribution",
    "UniformSizes",
    "FixedSizes",
    "PowerOfTwoSizes",
    "ZipfSizes",
    "BimodalSizes",
    "DatabaseBlockSizes",
    "churn_trace",
    "grow_then_shrink_trace",
    "sliding_window_trace",
    "database_trace",
    "lower_bound_trace",
    "large_then_small_trace",
    "repeated_large_delete_trace",
    "small_flood_trace",
    "descending_powers_trace",
    "fragmentation_attack_trace",
    "sawtooth_trace",
    "save_trace",
    "load_trace",
    "TRACE_FORMAT_VERSION",
]
