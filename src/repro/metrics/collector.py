"""Run a trace against an allocator and collect the paper's metrics."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.base import Allocator
from repro.costs.base import CostFunction
from repro.workloads.base import Trace


@dataclass
class ExecutionMetrics:
    """Everything measured while replaying one trace on one allocator.

    The two headline numbers are :attr:`max_footprint_ratio` (the paper's
    ``a``: largest footprint divided by live volume, over all requests) and
    :attr:`cost_ratios` (the paper's ``b`` per cost function: reallocation
    cost divided by mandatory allocation cost).
    """

    allocator: str
    trace: str
    requests: int
    elapsed_seconds: float
    final_volume: int
    final_footprint: int
    max_footprint: int
    max_footprint_ratio: float
    mean_footprint_ratio: float
    total_moves: int
    total_moved_volume: int
    moves_per_insert: float
    max_request_moved_volume: int
    max_request_checkpoints: int
    total_checkpoints: int
    flushes: int
    cost_ratios: Dict[str, float] = field(default_factory=dict)
    footprint_series: List[int] = field(default_factory=list)
    volume_series: List[int] = field(default_factory=list)

    @property
    def requests_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.requests / self.elapsed_seconds

    def summary_row(self, cost_names: Optional[Sequence[str]] = None) -> List[str]:
        """A table row (strings) for the benchmark reports."""
        names = list(cost_names) if cost_names is not None else sorted(self.cost_ratios)
        row = [
            self.allocator,
            f"{self.max_footprint_ratio:.3f}",
            f"{self.moves_per_insert:.2f}",
        ]
        row.extend(f"{self.cost_ratios.get(name, 0.0):.2f}" for name in names)
        return row


def run_trace(
    allocator: Allocator,
    trace: Trace,
    cost_functions: Sequence[CostFunction] = (),
    sample_every: int = 0,
    finish_pending: bool = True,
) -> ExecutionMetrics:
    """Replay ``trace`` on ``allocator`` and return the collected metrics.

    Parameters
    ----------
    cost_functions:
        Cost functions to charge the execution under (after the fact — the
        allocator never sees them, which is the whole point of cost
        obliviousness).
    sample_every:
        If positive, record the footprint and volume every that many requests
        (used to regenerate the footprint-over-time figure).
    finish_pending:
        Drive any deamortized flush to completion at the end so final volumes
        and invariants are comparable across allocators.
    """
    ratio_sum = 0.0
    ratio_count = 0
    footprint_series: List[int] = []
    volume_series: List[int] = []

    start = time.perf_counter()
    for index, request in enumerate(trace):
        if request.is_insert:
            record = allocator.insert(request.name, request.size)
        else:
            record = allocator.delete(request.name)
        if record.volume_after > 0:
            ratio_sum += record.footprint_after / record.volume_after
            ratio_count += 1
        if sample_every and index % sample_every == 0:
            footprint_series.append(record.footprint_after)
            volume_series.append(record.volume_after)
    if finish_pending and hasattr(allocator, "finish_pending_work"):
        allocator.finish_pending_work()
    elapsed = time.perf_counter() - start

    stats = allocator.stats
    return ExecutionMetrics(
        allocator=allocator.describe(),
        trace=trace.label,
        requests=len(trace),
        elapsed_seconds=elapsed,
        final_volume=allocator.volume,
        final_footprint=allocator.footprint,
        max_footprint=stats.max_footprint,
        max_footprint_ratio=stats.max_footprint_ratio,
        mean_footprint_ratio=ratio_sum / ratio_count if ratio_count else 0.0,
        total_moves=stats.total_moves,
        total_moved_volume=stats.total_moved_volume,
        moves_per_insert=stats.amortized_moves_per_insert,
        max_request_moved_volume=stats.max_request_moved_volume,
        max_request_checkpoints=stats.max_request_checkpoints,
        total_checkpoints=stats.checkpoints,
        flushes=stats.flushes,
        cost_ratios={f.name: stats.cost_ratio(f) for f in cost_functions},
        footprint_series=footprint_series,
        volume_series=volume_series,
    )
