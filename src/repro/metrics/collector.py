"""Run a trace against an allocator and collect the paper's metrics.

:func:`run_trace` is a thin composition over the observer-based
:class:`~repro.engine.SimulationEngine`: an :class:`ExecutionMetrics` is the
product of a :class:`~repro.engine.MetricsObserver` (headline scalars), a
:class:`~repro.engine.CostObserver` (after-the-fact cost charging), and —
when sampling is requested — a
:class:`~repro.engine.FootprintSeriesObserver` (footprint/volume over time).
The first two are passive, so a plain ``run_trace(allocator, trace)`` keeps
the allocator's zero-instrumentation fast path.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.base import Allocator
from repro.costs.base import CostFunction
from repro.engine import (
    CostObserver,
    FootprintSeriesObserver,
    MetricsObserver,
    Observer,
    Replayable,
    SimulationEngine,
)


@dataclass
class ExecutionMetrics:
    """Everything measured while replaying one trace on one allocator.

    The two headline numbers are :attr:`max_footprint_ratio` (the paper's
    ``a``: largest footprint divided by live volume, over all requests) and
    :attr:`cost_ratios` (the paper's ``b`` per cost function: reallocation
    cost divided by mandatory allocation cost).
    """

    allocator: str
    trace: str
    requests: int
    elapsed_seconds: float
    final_volume: int
    final_footprint: int
    max_footprint: int
    max_footprint_ratio: float
    mean_footprint_ratio: float
    total_moves: int
    total_moved_volume: int
    moves_per_insert: float
    max_request_moved_volume: int
    max_request_checkpoints: int
    total_checkpoints: int
    flushes: int
    cost_ratios: Dict[str, float] = field(default_factory=dict)
    footprint_series: List[int] = field(default_factory=list)
    volume_series: List[int] = field(default_factory=list)
    series_indices: List[int] = field(default_factory=list)

    @property
    def requests_per_second(self) -> float:
        """Throughput of the replay; ``0.0`` (never ``inf``) when the run
        finished under the clock's resolution, so the value always
        serialises cleanly into JSON."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.requests / self.elapsed_seconds

    def summary_row(self, cost_names: Optional[Sequence[str]] = None) -> List[str]:
        """A table row (strings) for the benchmark reports."""
        names = list(cost_names) if cost_names is not None else sorted(self.cost_ratios)
        row = [
            self.allocator,
            f"{self.max_footprint_ratio:.3f}",
            f"{self.moves_per_insert:.2f}",
        ]
        row.extend(f"{self.cost_ratios.get(name, 0.0):.2f}" for name in names)
        return row


def run_trace(
    allocator: Allocator,
    trace: Replayable,
    cost_functions: Sequence[CostFunction] = (),
    sample_every: int = 0,
    finish_pending: bool = True,
    observers: Sequence[Observer] = (),
    max_series_points: int = 0,
    jobs: int = 1,
) -> ExecutionMetrics:
    """Replay ``trace`` on ``allocator`` and return the collected metrics.

    ``trace`` may be a materialised :class:`~repro.workloads.base.Trace`, a
    streaming :class:`~repro.workloads.base.RequestSource` (e.g. a
    :class:`~repro.workloads.replay.TraceFileSource` over an on-disk v2
    file), or any iterable of requests; the metrics are identical either
    way since every number is derived from what the allocator observed.

    Parameters
    ----------
    cost_functions:
        Cost functions to charge the execution under (after the fact — the
        allocator never sees them, which is the whole point of cost
        obliviousness).
    sample_every:
        If positive, record the footprint and volume every that many requests
        (used to regenerate the footprint-over-time figure).
    finish_pending:
        Drive any deamortized flush to completion at the end so final volumes
        and invariants are comparable across allocators.
    observers:
        Additional observers wired into the replay (experiment-specific
        instrumentation; see :mod:`repro.engine`).
    max_series_points:
        If positive (and ``sample_every`` is zero), collect an adaptively
        downsampled footprint series bounded to this many points.
    jobs:
        If greater than one, replay the trace sharded over that many worker
        processes.  Requires ``trace`` to be a
        :class:`~repro.workloads.replay.TraceFileSource` over a
        block-indexed (plain-container v3) file and every wired observer to
        be mergeable; otherwise the replay falls back to serial with a
        :class:`~repro.engine.SerialFallbackWarning` naming the reason.
        Note the footprint series is order-dependent, so requesting
        ``sample_every``/``max_series_points`` also forces serial.
    """
    metrics_observer = MetricsObserver()
    cost_observer = CostObserver(cost_functions)
    series_observer: Optional[FootprintSeriesObserver] = None
    if sample_every:
        series_observer = FootprintSeriesObserver(every=sample_every)
    elif max_series_points:
        series_observer = FootprintSeriesObserver(max_points=max_series_points)
    wired: List[Observer] = [metrics_observer, cost_observer]
    if series_observer is not None:
        wired.append(series_observer)
    wired.extend(observers)

    if jobs > 1:
        from repro.engine import SerialFallbackWarning, run_replay_sharded
        from repro.engine.parallel import replay_unshardable_reason

        sharded = run_replay_sharded(
            allocator, trace, wired, jobs, finish_pending=finish_pending
        )
        if sharded is not None:
            metrics_observer, cost_observer = sharded.observers[0], sharded.observers[1]
            return ExecutionMetrics(
                allocator=allocator.describe(),
                trace=getattr(trace, "label", "trace"),
                requests=sharded.requests,
                elapsed_seconds=sharded.elapsed_seconds,
                cost_ratios=cost_observer.cost_ratios,
                **metrics_observer.snapshot,
            )
        reason = replay_unshardable_reason(trace, wired) or "allocator or observers cannot be pickled across processes"
        warnings.warn(
            f"parallel replay (jobs={jobs}) fell back to serial: {reason}",
            SerialFallbackWarning,
            stacklevel=2,
        )

    run = SimulationEngine(allocator, wired, finish_pending=finish_pending).run(trace)

    return ExecutionMetrics(
        allocator=allocator.describe(),
        trace=run.label,
        requests=run.requests,
        elapsed_seconds=run.elapsed_seconds,
        cost_ratios=cost_observer.cost_ratios,
        footprint_series=series_observer.footprint if series_observer else [],
        volume_series=series_observer.volume if series_observer else [],
        series_indices=series_observer.indices if series_observer else [],
        **metrics_observer.snapshot,
    )
