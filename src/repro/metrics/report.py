"""Plain-text tables and series for benchmark output.

Every benchmark prints its experiment's table through these helpers so the
shape of the output matches from run to run and can be diffed against
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render a fixed-width table with a header rule."""
    normalised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in normalised:
        for index, cell in enumerate(row):
            if index >= len(widths):
                widths.append(len(cell))
            else:
                widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        padded = [str(cell).ljust(widths[index]) for index, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    rule = "+-" + "-+-".join("-" * width for width in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(rule)
    lines.append(render_row([str(h) for h in headers]))
    lines.append(rule)
    for row in normalised:
        lines.append(render_row(row))
    lines.append(rule)
    return "\n".join(lines)


def format_ratio(value: float, digits: int = 3) -> str:
    """Format a competitive ratio compactly."""
    if value == float("inf"):
        return "inf"
    return f"{value:.{digits}f}"


#: Density ramp used by :func:`render_bucket_series` sparklines.
_DENSITY_RAMP = " .:-=+*#%@"


def render_sparkline(values: Sequence[float]) -> str:
    """One density character per value, normalised by the maximum.

    Deterministic output (same input, same characters); all-zero or empty
    input renders as blanks so callers can embed it between ``|`` rails
    unconditionally.
    """
    values = list(values)
    top = max(values) if values else 0
    if top <= 0:
        return " " * len(values)
    scale = len(_DENSITY_RAMP) - 1
    return "".join(
        _DENSITY_RAMP[min(scale, int((value / top) * scale + 0.5))] for value in values
    )


def render_bucket_series(
    labels: Sequence[str],
    rows: Sequence[Sequence[float]],
    width: int = 60,
    title: str = "",
) -> str:
    """Render one density sparkline per bucket (gap/size-class histograms).

    ``rows[i]`` is the series of bucket ``labels[i]`` over time; each line
    is normalised by its own maximum, so shape is comparable across buckets
    whose magnitudes differ by orders of magnitude.  Deterministic output:
    same input, same characters.
    """
    if not labels or not rows:
        return "(empty histogram series)"
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, series in zip(labels, rows):
        values = list(series)
        if len(values) > width:
            step = len(values) / width
            values = [values[int(i * step)] for i in range(width)]
        top = max(values) if values else 0
        spark = render_sparkline(values)
        lines.append(f"{str(label).rjust(label_width)} |{spark}| max={top}")
    return "\n".join(lines)


def render_series(
    values: Sequence[float],
    width: int = 60,
    height: int = 12,
    label: str = "",
) -> str:
    """Render a numeric series as a coarse ASCII chart (footprint figures)."""
    if not values:
        return "(empty series)"
    lo = min(values)
    hi = max(values)
    span = max(hi - lo, 1e-9)
    # Downsample to the requested width.
    if len(values) > width:
        step = len(values) / width
        sampled = [values[int(i * step)] for i in range(width)]
    else:
        sampled = list(values)
    rows = []
    for level in range(height, 0, -1):
        threshold = lo + span * (level - 0.5) / height
        row = "".join("#" if v >= threshold else " " for v in sampled)
        rows.append(row)
    header = f"{label} (min={lo:.0f}, max={hi:.0f})" if label else f"min={lo:.0f}, max={hi:.0f}"
    return header + "\n" + "\n".join(rows)
