"""Measurement, charging, and reporting utilities."""

from repro.metrics.collector import ExecutionMetrics, run_trace
from repro.metrics.report import ascii_table, format_ratio, render_series
from repro.metrics.competitive import (
    footprint_competitive_ratio,
    cost_competitive_ratio,
)

__all__ = [
    "ExecutionMetrics",
    "run_trace",
    "ascii_table",
    "format_ratio",
    "render_series",
    "footprint_competitive_ratio",
    "cost_competitive_ratio",
]
