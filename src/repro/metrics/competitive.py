"""Competitive-ratio computations matching the paper's definitions."""

from __future__ import annotations

from typing import Sequence

from repro.core.stats import AllocatorStats
from repro.costs.base import CostFunction


def footprint_competitive_ratio(footprints: Sequence[int], volumes: Sequence[int]) -> float:
    """Largest footprint/volume ratio over a paired series (the paper's ``a``).

    The optimum footprint at any time is exactly the live volume (everything
    packed into a prefix), so the competitive ratio is the worst observed
    footprint divided by the volume at that same time.
    """
    if len(footprints) != len(volumes):
        raise ValueError("footprint and volume series must have equal length")
    worst = 0.0
    for footprint, volume in zip(footprints, volumes):
        if volume > 0:
            worst = max(worst, footprint / volume)
    return worst


def cost_competitive_ratio(stats: AllocatorStats, cost_function: CostFunction) -> float:
    """Reallocation cost over allocation cost (the paper's ``b``).

    The paper charges the reallocator against the sum of allocation costs of
    every object inserted so far — a lower bound on any algorithm's total
    cost, since each object must be written at least once.
    """
    return stats.cost_ratio(cost_function)
