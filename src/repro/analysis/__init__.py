"""Analytical bound predictors used to sanity-check measured results."""

from repro.analysis.bounds import (
    predicted_cost_ratio,
    predicted_footprint_ratio,
    predicted_checkpoints_per_flush,
    predicted_worst_case_moved_volume,
    memory_allocation_lower_bound,
)

__all__ = [
    "predicted_cost_ratio",
    "predicted_footprint_ratio",
    "predicted_checkpoints_per_flush",
    "predicted_worst_case_moved_volume",
    "memory_allocation_lower_bound",
]
