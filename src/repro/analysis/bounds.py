"""Closed-form versions of the paper's asymptotic bounds.

These are *shapes*, not exact constants: the experiments compare measured
quantities against them to confirm the predicted scaling (e.g. that the cost
ratio grows like ``(1/eps) log(1/eps)`` as ``eps`` shrinks, or that the
footprint of a non-moving allocator can be forced up by a log factor), never
to match absolute values.
"""

from __future__ import annotations

import math


def predicted_footprint_ratio(epsilon: float) -> float:
    """Theorem 2.1: the footprint stays within ``1 + epsilon`` of optimal."""
    if not 0 < epsilon <= 0.5:
        raise ValueError("epsilon must lie in (0, 1/2]")
    return 1.0 + epsilon


def predicted_cost_ratio(epsilon: float, constant: float = 1.0) -> float:
    """Theorem 2.1 / Lemma 2.6: amortized cost ``O((1/eps) log(1/eps))``.

    ``constant`` absorbs the hidden constant; experiments fit it once on the
    largest epsilon and then check the scaling of the rest of the sweep.
    """
    if not 0 < epsilon <= 0.5:
        raise ValueError("epsilon must lie in (0, 1/2]")
    inv = 1.0 / epsilon
    return constant * inv * max(1.0, math.log2(inv))


def predicted_checkpoints_per_flush(epsilon: float, constant: float = 1.0) -> float:
    """Lemma 3.3: a flush completes within ``O(1/eps)`` checkpoints."""
    if not 0 < epsilon <= 0.5:
        raise ValueError("epsilon must lie in (0, 1/2]")
    return constant / epsilon


def predicted_worst_case_moved_volume(
    epsilon: float, update_size: int, delta: int, constant: float = 4.0
) -> float:
    """Lemma 3.6: per-update reallocated volume ``O((1/eps) w + Delta)``."""
    if not 0 < epsilon <= 0.5:
        raise ValueError("epsilon must lie in (0, 1/2]")
    return constant / epsilon * update_size + delta


def memory_allocation_lower_bound(num_requests: int, size_ratio: float) -> float:
    """The classical non-moving lower bound (Luby, Naor, Orda 1996).

    The footprint competitive ratio of any allocator that never moves objects
    is ``Omega(min(log n, log (largest/smallest request)))``; this returns
    that expression (base-2 logs, floored at 1) for experiment E3's context
    column.
    """
    if num_requests < 1 or size_ratio < 1:
        raise ValueError("need num_requests >= 1 and size_ratio >= 1")
    return max(1.0, min(math.log2(num_requests), math.log2(size_ratio)))
