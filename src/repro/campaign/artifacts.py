"""Structured campaign artifacts: ``results.json``, ``results.csv``, tables.

A campaign directory is the durable output of one sweep::

    <out>/
        spec.json      the expanded input spec (reproducibility)
        results.json   one record per cell + run metadata
        results.csv    the same records flattened for spreadsheets / pandas

``results.json`` is the machine-readable source of truth (benchmarks and
follow-up analysis load it back with :func:`load_results`); the CSV carries
the scalar columns only.  Terminal rendering reuses the repo-wide
:class:`~repro.harness.results.ExperimentResult` / ``ascii_table`` path so a
sweep prints exactly like the registered experiments do.

Every artifact is written atomically — serialized to a ``.tmp`` sibling and
``os.replace``d into place — so an interrupted sweep can never leave a
half-written ``results.json`` behind; whatever was there before the write
survives intact.  A file that is nevertheless corrupt (e.g. produced by an
older release that wrote in place, or clobbered by something else) raises
:class:`ArtifactError` naming the path instead of a bare ``JSONDecodeError``.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Any, Callable, Dict, List, TextIO, Union

from repro.campaign.executor import CampaignResult
from repro.campaign.spec import CampaignSpec, entry_tag
from repro.faults.injector import fault_point
from repro.harness.results import ExperimentResult
from repro.obs.format import format_duration


class ArtifactError(ValueError):
    """A campaign artifact is missing its format marker or is unreadable.

    Subclasses :class:`ValueError` so callers that already guard artifact
    loads with ``except (OSError, ValueError)`` keep working; the message
    always names the offending path.
    """

#: Scalar columns exported to ``results.csv``, in order.
CSV_COLUMNS = (
    "index",
    "cell_id",
    "status",
    "seed",
    "requests",
    "delta",
    "inserted_volume",
    "final_volume",
    "max_footprint",
    "max_footprint_ratio",
    "mean_footprint_ratio",
    "cost_ratio",
    "total_moves",
    "total_moved_volume",
    "moves_per_insert",
    "max_request_moved_volume",
    "footprint_series",
    "gap_histogram",
    "per_class_occupancy",
    "trace_recorder",
    "device_elapsed_ms",
    "elapsed_seconds",
    "error",
)


def campaign_to_dict(result: CampaignResult) -> Dict[str, Any]:
    """The ``results.json`` document for one campaign run."""
    document = {
        "format": "repro-campaign-results",
        "version": 1,
        "campaign": result.spec.name,
        "seed": result.spec.seed,
        "jobs": result.jobs,
        "elapsed_seconds": round(result.elapsed_seconds, 6),
        "cells": len(result.records),
        "ok": len(result.ok_records),
        "errors": len(result.error_records),
        "resumed": result.metadata.get("resumed", 0),
        "spec": result.spec.to_dict(),
        "records": result.records,
    }
    if result.metadata.get("interrupted"):
        # A sweep cut short (Ctrl-C, dead worker): the records present are
        # complete and durable, but the matrix is not — ``--resume`` picks
        # the rest up instead of restarting from zero.
        document["interrupted"] = True
    return document


def atomic_write(path: Union[str, os.PathLike], writer: Callable[[TextIO], None]) -> None:
    """Write a text file atomically: ``.tmp`` sibling, fsync, ``os.replace``.

    A crash at any point leaves either the previous file or the complete new
    one — never a truncated hybrid.  The ``.tmp`` sibling lives in the same
    directory so the replace never crosses filesystems.  Each cut is a
    named fault site (``artifact.write.body`` / ``.fsync`` / ``.replace``)
    so the chaos harness can kill the write at every stage; a failed write
    removes its ``.tmp`` sibling instead of leaving it behind.
    """
    tmp_path = f"{os.fspath(path)}.tmp"
    try:
        with open(tmp_path, "w", encoding="utf-8", newline="") as handle:
            fault_point("artifact.write.body")
            writer(handle)
            handle.flush()
            fault_point("artifact.write.fsync")
            os.fsync(handle.fileno())
        fault_point("artifact.write.replace")
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    os.replace(tmp_path, path)


def _dump_json(document: Any, handle: TextIO) -> None:
    json.dump(document, handle, indent=2, sort_keys=True)
    handle.write("\n")


def write_results(result: CampaignResult, out_dir: Union[str, os.PathLike]) -> Dict[str, str]:
    """Write ``spec.json`` / ``results.json`` / ``results.csv`` under ``out_dir``.

    Each file is written atomically (see :func:`atomic_write`).  Returns the
    paths written, keyed by artifact name.
    """
    os.makedirs(out_dir, exist_ok=True)
    paths = {
        "spec": os.path.join(out_dir, "spec.json"),
        "results": os.path.join(out_dir, "results.json"),
        "csv": os.path.join(out_dir, "results.csv"),
    }
    atomic_write(paths["spec"], lambda handle: _dump_json(result.spec.to_dict(), handle))
    atomic_write(paths["results"], lambda handle: _dump_json(campaign_to_dict(result), handle))

    def _write_csv(handle: TextIO) -> None:
        writer = csv.writer(handle)
        writer.writerow(CSV_COLUMNS)
        for record in result.records:
            writer.writerow(_csv_row(record))

    atomic_write(paths["csv"], _write_csv)
    return paths


def _csv_row(record: Dict[str, Any]) -> List[Any]:
    row = []
    for column in CSV_COLUMNS:
        if column == "error":
            error = record.get("error", "")
            row.append(error.strip().splitlines()[-1] if error else "")
        elif column == "footprint_series":
            series = record.get("footprint_series")
            if isinstance(series, dict):
                row.append(" ".join(str(v) for v in series.get("footprint", ())))
            else:
                row.append("")
        elif column == "gap_histogram":
            series = record.get("gap_histogram")
            if isinstance(series, dict):
                row.append(" ".join(str(v) for v in series.get("free_volume", ())))
            else:
                row.append("")
        elif column == "per_class_occupancy":
            series = record.get("per_class_occupancy")
            if isinstance(series, dict) and series.get("volume"):
                # The final sample, one "low-high:volume" token per class.
                row.append(
                    " ".join(
                        f"{low}-{high}:{value}"
                        for (low, high), value in zip(series["classes"], series["volume"][-1])
                    )
                )
            else:
                row.append("")
        elif column == "trace_recorder":
            info = record.get("trace_recorder")
            row.append(info.get("path", "") if isinstance(info, dict) else "")
        else:
            row.append(record.get(column, ""))
    return row


def load_results(path: Union[str, os.PathLike]) -> Dict[str, Any]:
    """Load a ``results.json`` document, checking its format marker.

    Raises :class:`ArtifactError` (naming the path) for a truncated, corrupt,
    or foreign JSON file, and the usual :class:`OSError` for a missing one.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as error:
            raise ArtifactError(
                f"{path} is not valid JSON (truncated or corrupt campaign "
                f"artifact?): {error}"
            ) from error
    if not isinstance(document, dict) or document.get("format") != "repro-campaign-results":
        raise ArtifactError(f"{path} is not a repro campaign results file")
    return document


def completed_records(document: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Map ``cell_id`` -> record for every *successful* cell of a results
    document (the input for ``run_campaign(..., completed=...)``)."""
    return {
        record["cell_id"]: record
        for record in document.get("records", [])
        if record.get("status") == "ok"
    }


def campaign_table(result: CampaignResult) -> ExperimentResult:
    """One summary row per cell, rendered like a registered experiment."""
    table = ExperimentResult(
        experiment_id="SWEEP",
        title=(
            f"Campaign {result.spec.name!r}: {len(result.records)} cells, "
            f"{len(result.error_records)} errors, jobs={result.jobs}, "
            f"{format_duration(result.elapsed_seconds)}"
        ),
        headers=[
            "workload",
            "allocator",
            "cost",
            "device",
            "status",
            "max footprint/V",
            "cost ratio",
            "moved volume",
            "device ms",
        ],
    )
    for record in result.records:
        if record["status"] == "ok":
            table.rows.append(
                [
                    entry_tag(record["workload"]),
                    entry_tag(record["allocator"]),
                    entry_tag(record["cost"]),
                    entry_tag(record["device"]),
                    "ok",
                    round(record["max_footprint_ratio"], 3),
                    round(record["cost_ratio"], 2),
                    record["total_moved_volume"],
                    record.get("device_elapsed_ms", "-"),
                ]
            )
        else:
            error = record.get("error", "").strip().splitlines()
            table.rows.append(
                [
                    entry_tag(record["workload"]),
                    entry_tag(record["allocator"]),
                    entry_tag(record["cost"]),
                    entry_tag(record["device"]),
                    "ERROR",
                    "-",
                    "-",
                    "-",
                    error[-1][:60] if error else "?",
                ]
            )
    if result.error_records:
        table.notes.append(
            f"{len(result.error_records)} cell(s) failed; full tracebacks are in "
            "results.json (status == 'error')."
        )
    return table
