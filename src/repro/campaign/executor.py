"""Parallel campaign execution.

Each :class:`~repro.campaign.spec.CampaignCell` is an independent unit of
work: build the trace from the cell seed, replay it on a freshly built
allocator through the :class:`~repro.engine.SimulationEngine` (the device
model rides along as a :class:`~repro.engine.DeviceObserver`, any observers
requested by the spec are attached per cell), then charge the execution
under the cell's cost function.  Cells are therefore embarrassingly
parallel, and :func:`run_campaign` fans them out over a ``multiprocessing``
pool when ``jobs > 1``.

Resumption: ``run_campaign(..., completed=...)`` accepts records from an
earlier run keyed by ``cell_id``; cells with a previous ``"ok"`` record are
not re-executed — the old record is carried over (re-indexed, stamped
``"resumed": true``) and only the missing or failed cells run.

Crash safety: ``run_campaign(..., journal=...)`` appends every freshly
executed record to a :class:`~repro.campaign.queue.CellJournal` the moment
it completes, and a ``KeyboardInterrupt`` mid-run (serial or pooled) stops
the sweep but *keeps* the records finished so far — the result is stamped
``metadata["interrupted"] = True`` so the artifact writer marks it and a
later ``--resume`` picks up the missing cells instead of restarting.

Fault isolation: the worker traps *any* exception (unknown spec kinds, bad
parameters, allocator bugs mid-trace) and returns an error record carrying
the traceback, so one broken cell shows up in the artifact instead of
killing the sweep.  Determinism: a cell's result depends only on its payload
(the seed is derived in the spec layer), so a parallel run produces exactly
the same records as a serial one, just possibly finishing out of order; the
campaign reorders them by cell index before returning.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.campaign.spec import (
    CampaignCell,
    CampaignSpec,
    SpecError,
    build_allocator,
    build_cost,
    build_device,
    build_observer,
    build_workload,
)
from repro.engine import DeviceObserver, Observer
from repro.metrics.collector import run_trace
from repro.obs.resources import resource_record, snapshot_resources
from repro.obs.telemetry import MemorySink, Telemetry, get_telemetry, use_telemetry

#: Called after each cell finishes: ``progress(done, total, record)``.
ProgressCallback = Callable[[int, int, Dict[str, Any]], None]

#: Bumped whenever the fields or semantics of a cell record change, so a
#: resume never mixes records produced under older measurement semantics
#: into a new artifact.  v3 added the ``resources`` field (and, under
#: ``--telemetry``, the per-cell counter/span snapshots).
RECORD_VERSION = 3

#: Cap on the span events copied into a cell record: enough for the full
#: engine phase tree of a cell, bounded even if a future observer emits
#: spans per request.
_MAX_CELL_SPANS = 200


@dataclass
class CampaignResult:
    """All per-cell records of one campaign run plus run-level timing."""

    spec: CampaignSpec
    records: List[Dict[str, Any]]
    jobs: int
    elapsed_seconds: float
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok_records(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r["status"] == "ok"]

    @property
    def error_records(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r["status"] == "error"]


def run_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one campaign cell; never raises (errors become records).

    Every record carries a ``resources`` field (CPU time, peak RSS, GC
    deltas over the cell).  With ``payload["telemetry"]`` set, the cell runs
    under its own in-memory telemetry session — the process-current session
    is swapped for the duration, so pool workers never write to a sink
    inherited over ``fork`` — and its counter values and span events land in
    ``record["telemetry"]``.  ``payload["profile_dir"]`` additionally wraps
    the cell in ``cProfile`` and dumps ``cell-<index>.pstats`` there.
    """
    started = time.perf_counter()
    record: Dict[str, Any] = {
        "index": payload["index"],
        "cell_id": payload["cell_id"],
        "workload": payload["workload"],
        "allocator": payload["allocator"],
        "cost": payload["cost"],
        "device": payload["device"],
        "seed": payload["seed"],
        "observers": payload.get("observers", []),
        "record_version": RECORD_VERSION,
    }
    telemetry_on = bool(payload.get("telemetry"))
    cell_telemetry = Telemetry(enabled=telemetry_on, sink=MemorySink() if telemetry_on else None)
    profile_dir = payload.get("profile_dir")
    profiler = None
    if profile_dir:
        import cProfile

        profiler = cProfile.Profile()
    before = snapshot_resources()
    with use_telemetry(cell_telemetry):
        try:
            if profiler is not None:
                profiler.enable()
            try:
                with cell_telemetry.span("cell", cell_id=payload["cell_id"]):
                    record.update(_execute(payload))
            finally:
                if profiler is not None:
                    profiler.disable()
            record["status"] = "ok"
        except Exception:
            record["status"] = "error"
            record["error"] = traceback.format_exc(limit=20)
    record["elapsed_seconds"] = round(time.perf_counter() - started, 6)
    record["resources"] = resource_record(before, snapshot_resources())
    if telemetry_on:
        spans = [e for e in cell_telemetry.sink.events if e.get("ev") == "span"]
        record["telemetry"] = {
            "counters": cell_telemetry.counter_values(),
            "gauges": cell_telemetry.gauge_values(),
            "spans": spans[:_MAX_CELL_SPANS],
        }
    if profiler is not None:
        profile_path = os.path.join(profile_dir, f"cell-{payload['index']:04d}.pstats")
        try:
            profiler.dump_stats(profile_path)
            record["profile"] = profile_path
        except OSError:
            pass
    return record


def _execute(payload: Dict[str, Any]) -> Dict[str, Any]:
    trace = build_workload(payload["workload"], seed=payload["seed"])
    allocator = build_allocator(payload["allocator"])
    cost = build_cost(payload["cost"])
    device = build_device(payload["device"])
    spec_observers = [build_observer(entry) for entry in payload.get("observers", [])]
    for observer in spec_observers:
        # Cell-aware observers (e.g. trace_recorder's "{cell}" path
        # placeholder) learn which cell they instrument; parallel cells
        # must never share an output path.
        bind = getattr(observer, "bind_cell", None)
        if callable(bind):
            bind(index=payload["index"], cell_id=payload["cell_id"])

    observers: List[Observer] = list(spec_observers)
    device_observer = None
    if device is not None:
        device_observer = DeviceObserver(device)
        observers.append(device_observer)
    metrics = run_trace(
        allocator,
        trace,
        cost_functions=(cost,),
        observers=observers,
        # Streaming replay workloads may request a sharded replay of their
        # block-indexed trace ("jobs": N in the spec entry); everything else
        # replays serially.  Inside a pooled campaign worker the sharded
        # path falls back to serial on its own (no nested pools).
        jobs=int(getattr(trace, "replay_jobs", 1)),
    )

    # Trace-shape statistics come from the allocator, not the workload: a
    # streaming source (replay workload with "stream": true) has no len()
    # or precomputed properties, and for a materialised Trace the freshly
    # built allocator's view agrees exactly (the streaming-equivalence
    # tests pin this down).
    stats = allocator.stats
    result: Dict[str, Any] = {
        "trace_label": metrics.trace,
        "requests": metrics.requests,
        "inserts": stats.inserts,
        "deletes": stats.deletes,
        "delta": allocator.delta,
        "inserted_volume": stats.total_allocated_volume,
        "final_volume": metrics.final_volume,
        "final_footprint": metrics.final_footprint,
        "max_footprint": metrics.max_footprint,
        "max_footprint_ratio": round(metrics.max_footprint_ratio, 6),
        "mean_footprint_ratio": round(metrics.mean_footprint_ratio, 6),
        "cost_ratio": round(metrics.cost_ratios[cost.name], 6),
        "total_moves": metrics.total_moves,
        "total_moved_volume": metrics.total_moved_volume,
        "moves_per_insert": round(metrics.moves_per_insert, 6),
        "max_request_moved_volume": metrics.max_request_moved_volume,
    }
    if device_observer is not None:
        # Read through the observer, not the local: a sharded replay adopts
        # the merged worker device into the observer instance.
        device_stats = device_observer.device.stats
        result["device_elapsed_ms"] = round(device_stats.elapsed_ms, 3)
        result["device_units_written"] = device_stats.units_written
        result["device_moves"] = device_stats.moves
    for observer in spec_observers:
        key = getattr(observer, "export_key", None)
        export = getattr(observer, "export", None)
        if key and callable(export):
            result[key] = export()
    return result


def _emit_cell_telemetry(telemetry: Telemetry, record: Dict[str, Any]) -> None:
    """Re-emit one finished cell's telemetry into the campaign-level sink.

    Pool workers buffer their cell's events in memory (they cannot share
    the parent's JSONL file handle); as each record arrives the parent
    stamps the events with the cell id and forwards them, which is what
    lets ``repro obs report`` render per-cell span trees from one log.
    Cell counter values are per-cell totals, i.e. deltas of the whole log,
    so the report's per-name summation stays correct.
    """
    if not telemetry.enabled:
        return
    cell_id = str(record.get("cell_id", "?"))
    telemetry.event(
        "cell.done",
        cell=cell_id,
        status=record.get("status"),
        elapsed_seconds=record.get("elapsed_seconds"),
        resumed=bool(record.get("resumed")),
    )
    resources = record.get("resources")
    if isinstance(resources, dict):
        telemetry.emit("resources", "cell", cell=cell_id, fields=resources)
    cell_data = record.get("telemetry")
    if not isinstance(cell_data, dict):
        return
    for span in cell_data.get("spans", []):
        event = dict(span)
        event["cell"] = cell_id
        telemetry.ingest(event)
    now = round(telemetry.now(), 6)
    for name, value in cell_data.get("counters", {}).items():
        if value:
            telemetry.ingest({"ev": "counter", "name": name, "t": now, "value": value, "cell": cell_id})
    for name, value in cell_data.get("gauges", {}).items():
        telemetry.ingest({"ev": "gauge", "name": name, "t": now, "value": value, "cell": cell_id})


def run_campaign(
    spec: CampaignSpec,
    jobs: int = 1,
    progress: Optional[ProgressCallback] = None,
    completed: Optional[Dict[str, Dict[str, Any]]] = None,
    telemetry: bool = False,
    profile_dir: Optional[str] = None,
    journal: Optional[Any] = None,
) -> CampaignResult:
    """Run every cell of ``spec``, serially or over ``jobs`` processes.

    ``jobs <= 0`` means one worker per available CPU.  The returned records
    are ordered by cell index regardless of completion order.

    ``completed`` maps ``cell_id`` to a record from an earlier run of the
    same spec (see :func:`repro.campaign.artifacts.completed_records`).  A
    cell is skipped only when its previous record is ``"ok"`` *and*
    provably interchangeable — same derived seed, same observer
    configuration, same :data:`RECORD_VERSION` — in which case the old
    record is reused (re-indexed, stamped ``"resumed": true``) and only the
    remaining cells execute; this is what ``repro sweep --resume`` uses to
    finish a half-completed sweep.  Anything stale (different campaign
    seed, changed observer parameters, records from an older release)
    simply re-runs.

    ``telemetry=True`` (or an enabled process-current telemetry session)
    makes every cell capture counter/span snapshots into its record; the
    campaign re-emits them — stamped with the cell id — into the current
    session's sink.  ``profile_dir`` enables per-cell ``cProfile`` dumps.

    ``journal`` (anything with an ``append(record)`` method, normally a
    :class:`~repro.campaign.queue.CellJournal`) receives every freshly
    executed record the moment it finishes, so completed work survives a
    crash that never reaches the artifact writer.  A ``KeyboardInterrupt``
    mid-run is trapped: the records completed so far are returned (and
    journaled) and ``metadata["interrupted"]`` is set.
    """
    cells = spec.expand()
    session = get_telemetry()
    telemetry = bool(telemetry) or session.enabled
    if profile_dir:
        os.makedirs(profile_dir, exist_ok=True)
    if len(cells) > 1:
        # A recorder path without the {cell} placeholder would be opened
        # (and truncated) by every cell: serially each cell destroys the
        # previous recording, in parallel the interleaved writes corrupt
        # the file — while every record still claims its own recording.
        for entry in spec.observers:
            if entry.get("kind") == "trace_recorder" and "{cell}" not in str(
                entry.get("path", "")
            ):
                raise SpecError(
                    f"trace_recorder path {entry.get('path')!r} is shared by "
                    f"{len(cells)} cells; add a '{{cell}}' placeholder (replaced "
                    "by the cell index) so cells do not clobber one another's "
                    "recording"
                )
    payloads: List[Dict[str, Any]] = []
    reused: List[Dict[str, Any]] = []
    for cell in cells:
        previous = completed.get(cell.cell_id) if completed else None
        if (
            previous is not None
            and previous.get("status") == "ok"
            and previous.get("seed") == cell.seed
            and previous.get("observers", []) == list(cell.observers)
            and previous.get("record_version") == RECORD_VERSION
        ):
            record = dict(previous)
            record["index"] = cell.index
            record["resumed"] = True
            reused.append(record)
        else:
            payload = cell.payload()
            if telemetry:
                payload["telemetry"] = True
            if profile_dir:
                payload["profile_dir"] = profile_dir
            payloads.append(payload)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    jobs = min(jobs, max(1, len(payloads)))

    started = time.perf_counter()
    records: List[Dict[str, Any]] = list(reused)
    done = 0
    interrupted = False

    def collect(record: Dict[str, Any]) -> None:
        # Durability first: the record reaches the journal before anything
        # that might raise (telemetry sinks, progress callbacks), so a
        # Ctrl-C landing in either never loses a finished cell.
        nonlocal done
        records.append(record)
        if journal is not None:
            journal.append(record)
        _emit_cell_telemetry(session, record)
        done += 1
        if progress is not None:
            progress(done, len(payloads), record)

    with session.span("sweep.run", campaign=spec.name, cells=len(cells), jobs=jobs):
        try:
            if jobs == 1:
                for payload in payloads:
                    collect(run_cell(payload))
            else:
                with multiprocessing.Pool(processes=jobs) as pool:
                    for record in pool.imap_unordered(run_cell, payloads):
                        collect(record)
        except KeyboardInterrupt:
            # The sweep stops here, but every completed record is already
            # collected (and journaled): the caller writes a partial artifact
            # stamped "interrupted" and --resume finishes the matrix later.
            # The pool context manager terminates any still-running workers.
            interrupted = True
    session.flush()
    records.sort(key=lambda r: r["index"])
    elapsed = time.perf_counter() - started

    return CampaignResult(
        spec=spec,
        records=records,
        jobs=jobs,
        elapsed_seconds=elapsed,
        metadata={
            "cells": len(records),
            "ok": sum(1 for r in records if r["status"] == "ok"),
            "errors": sum(1 for r in records if r["status"] == "error"),
            "resumed": len(reused),
            "interrupted": interrupted,
            "telemetry": telemetry,
            "profile_dir": profile_dir,
        },
    )


def run_cells_serial(cells: List[CampaignCell]) -> List[Dict[str, Any]]:
    """Run an explicit cell list serially (used by tests and benchmarks)."""
    return [run_cell(cell.payload()) for cell in cells]
