"""Parallel campaign execution.

Each :class:`~repro.campaign.spec.CampaignCell` is an independent unit of
work: build the trace from the cell seed, replay it on a freshly built
allocator, drive the cell's device model with every write and move, then
charge the execution under the cell's cost function.  Cells are therefore
embarrassingly parallel, and :func:`run_campaign` fans them out over a
``multiprocessing`` pool when ``jobs > 1``.

Fault isolation: the worker traps *any* exception (unknown spec kinds, bad
parameters, allocator bugs mid-trace) and returns an error record carrying
the traceback, so one broken cell shows up in the artifact instead of
killing the sweep.  Determinism: a cell's result depends only on its payload
(the seed is derived in the spec layer), so a parallel run produces exactly
the same records as a serial one, just possibly finishing out of order; the
campaign reorders them by cell index before returning.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.campaign.spec import (
    CampaignCell,
    CampaignSpec,
    build_allocator,
    build_cost,
    build_device,
    build_workload,
)

#: Called after each cell finishes: ``progress(done, total, record)``.
ProgressCallback = Callable[[int, int, Dict[str, Any]], None]


@dataclass
class CampaignResult:
    """All per-cell records of one campaign run plus run-level timing."""

    spec: CampaignSpec
    records: List[Dict[str, Any]]
    jobs: int
    elapsed_seconds: float
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok_records(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r["status"] == "ok"]

    @property
    def error_records(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r["status"] == "error"]


def run_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one campaign cell; never raises (errors become records)."""
    started = time.perf_counter()
    record: Dict[str, Any] = {
        "index": payload["index"],
        "cell_id": payload["cell_id"],
        "workload": payload["workload"],
        "allocator": payload["allocator"],
        "cost": payload["cost"],
        "device": payload["device"],
        "seed": payload["seed"],
    }
    try:
        record.update(_execute(payload))
        record["status"] = "ok"
    except Exception:
        record["status"] = "error"
        record["error"] = traceback.format_exc(limit=20)
    record["elapsed_seconds"] = round(time.perf_counter() - started, 6)
    return record


def _execute(payload: Dict[str, Any]) -> Dict[str, Any]:
    trace = build_workload(payload["workload"], seed=payload["seed"])
    allocator = build_allocator(payload["allocator"])
    cost = build_cost(payload["cost"])
    device = build_device(payload["device"])

    for request in trace:
        if request.is_insert:
            record = allocator.insert(request.name, request.size)
            if device is not None:
                device.write(request.size)
        else:
            record = allocator.delete(request.name)
        if device is not None:
            for move in record.moves:
                if move.is_reallocation:
                    device.move(move.size)
    if hasattr(allocator, "finish_pending_work"):
        allocator.finish_pending_work()

    stats = allocator.stats
    result: Dict[str, Any] = {
        "trace_label": trace.label,
        "requests": len(trace),
        "inserts": trace.num_inserts,
        "deletes": trace.num_deletes,
        "delta": trace.delta,
        "inserted_volume": trace.total_inserted_volume,
        "final_volume": allocator.volume,
        "final_footprint": allocator.footprint,
        "max_footprint": stats.max_footprint,
        "max_footprint_ratio": round(stats.max_footprint_ratio, 6),
        "cost_ratio": round(stats.cost_ratio(cost), 6),
        "total_moves": stats.total_moves,
        "total_moved_volume": stats.total_moved_volume,
        "moves_per_insert": round(stats.amortized_moves_per_insert, 6),
        "max_request_moved_volume": stats.max_request_moved_volume,
    }
    if device is not None:
        result["device_elapsed_ms"] = round(device.stats.elapsed_ms, 3)
        result["device_units_written"] = device.stats.units_written
        result["device_moves"] = device.stats.moves
    return result


def run_campaign(
    spec: CampaignSpec,
    jobs: int = 1,
    progress: Optional[ProgressCallback] = None,
) -> CampaignResult:
    """Run every cell of ``spec``, serially or over ``jobs`` processes.

    ``jobs <= 0`` means one worker per available CPU.  The returned records
    are ordered by cell index regardless of completion order.
    """
    cells = spec.expand()
    payloads = [cell.payload() for cell in cells]
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    jobs = min(jobs, max(1, len(payloads)))

    started = time.perf_counter()
    records: List[Dict[str, Any]] = []
    if jobs == 1:
        for payload in payloads:
            record = run_cell(payload)
            records.append(record)
            if progress is not None:
                progress(len(records), len(payloads), record)
    else:
        with multiprocessing.Pool(processes=jobs) as pool:
            for record in pool.imap_unordered(run_cell, payloads):
                records.append(record)
                if progress is not None:
                    progress(len(records), len(payloads), record)
    records.sort(key=lambda r: r["index"])
    elapsed = time.perf_counter() - started

    return CampaignResult(
        spec=spec,
        records=records,
        jobs=jobs,
        elapsed_seconds=elapsed,
        metadata={
            "cells": len(records),
            "ok": sum(1 for r in records if r["status"] == "ok"),
            "errors": sum(1 for r in records if r["status"] == "error"),
        },
    )


def run_cells_serial(cells: List[CampaignCell]) -> List[Dict[str, Any]]:
    """Run an explicit cell list serially (used by tests and benchmarks)."""
    return [run_cell(cell.payload()) for cell in cells]
