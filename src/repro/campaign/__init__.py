"""Campaign engine: declarative sweep matrices over the reproduction harness.

A *campaign* expands a declarative spec (workloads x allocators x cost
functions x device models) into independent cells, runs them — serially or
over a ``multiprocessing`` pool — with per-cell seeding and fault isolation,
and writes structured artifacts (``results.json`` / ``results.csv``) plus
the same ASCII tables the registered experiments print.  The companion
:mod:`~repro.campaign.analyze` module characterises any trace (footprint
profile, size/lifetime distributions, death-time grouping) before it is
swept.

Entry points: ``repro sweep <spec.json> [--jobs N] [--out DIR]`` and
``repro trace analyze <path>``.
"""

from repro.campaign.analyze import (
    TraceAnalytics,
    TraceAnalyticsObserver,
    analytics_result,
    analyze_trace,
)
from repro.campaign.report import document_table, sweep_report
from repro.campaign.artifacts import (
    campaign_table,
    campaign_to_dict,
    completed_records,
    load_results,
    write_results,
)
from repro.campaign.executor import CampaignResult, run_campaign, run_cell
from repro.campaign.progress import ProgressReporter
from repro.campaign.spec import (
    ALLOCATOR_KINDS,
    COST_KINDS,
    DEVICE_KINDS,
    CampaignCell,
    CampaignSpec,
    SpecError,
    build_allocator,
    build_cost,
    build_device,
    build_observer,
    build_workload,
)

__all__ = [
    "ALLOCATOR_KINDS",
    "COST_KINDS",
    "DEVICE_KINDS",
    "CampaignCell",
    "CampaignResult",
    "CampaignSpec",
    "ProgressReporter",
    "SpecError",
    "TraceAnalytics",
    "TraceAnalyticsObserver",
    "analytics_result",
    "analyze_trace",
    "document_table",
    "sweep_report",
    "build_allocator",
    "build_cost",
    "build_device",
    "build_workload",
    "build_observer",
    "campaign_table",
    "campaign_to_dict",
    "completed_records",
    "load_results",
    "run_campaign",
    "run_cell",
    "write_results",
]
