"""Campaign engine: declarative sweep matrices over the reproduction harness.

A *campaign* expands a declarative spec (workloads x allocators x cost
functions x device models) into independent cells, runs them — serially or
over a ``multiprocessing`` pool — with per-cell seeding and fault isolation,
and writes structured artifacts (``results.json`` / ``results.csv``) plus
the same ASCII tables the registered experiments print.  The companion
:mod:`~repro.campaign.analyze` module characterises any trace (footprint
profile, size/lifetime distributions, death-time grouping) before it is
swept.

Entry points: ``repro sweep <spec.json> [--jobs N] [--out DIR]`` and
``repro trace analyze <path>``.
"""

from repro.campaign.analyze import (
    TraceAnalytics,
    TraceAnalyticsObserver,
    analytics_result,
    analyze_trace,
)
from repro.campaign.report import document_table, sweep_report
from repro.campaign.artifacts import (
    ArtifactError,
    atomic_write,
    campaign_table,
    campaign_to_dict,
    completed_records,
    load_results,
    write_results,
)
from repro.campaign.diff import (
    DIFF_METRICS,
    CampaignDiff,
    MetricDelta,
    ToleranceError,
    diff_documents,
    diff_table,
    parse_tolerances,
)
from repro.campaign.executor import CampaignResult, run_campaign, run_cell
from repro.campaign.progress import ProgressReporter
from repro.campaign.queue import (
    CellJournal,
    MergeResult,
    QueueError,
    claim_cell,
    enqueue_campaign,
    merge_queue,
    read_journal,
    run_queue_sweep,
    work_queue,
)
from repro.campaign.spec import (
    ALLOCATOR_KINDS,
    COST_KINDS,
    DEVICE_KINDS,
    CampaignCell,
    CampaignSpec,
    SpecError,
    build_allocator,
    build_cost,
    build_device,
    build_observer,
    build_workload,
)

__all__ = [
    "ALLOCATOR_KINDS",
    "COST_KINDS",
    "DEVICE_KINDS",
    "DIFF_METRICS",
    "ArtifactError",
    "CampaignCell",
    "CampaignDiff",
    "CampaignResult",
    "CampaignSpec",
    "CellJournal",
    "MergeResult",
    "MetricDelta",
    "ProgressReporter",
    "QueueError",
    "SpecError",
    "ToleranceError",
    "TraceAnalytics",
    "TraceAnalyticsObserver",
    "analytics_result",
    "analyze_trace",
    "atomic_write",
    "claim_cell",
    "diff_documents",
    "diff_table",
    "document_table",
    "sweep_report",
    "build_allocator",
    "build_cost",
    "build_device",
    "build_workload",
    "build_observer",
    "campaign_table",
    "campaign_to_dict",
    "completed_records",
    "enqueue_campaign",
    "load_results",
    "merge_queue",
    "parse_tolerances",
    "read_journal",
    "run_campaign",
    "run_cell",
    "run_queue_sweep",
    "work_queue",
    "write_results",
]
