"""Terminal progress reporting for campaign sweeps.

The executor calls a plain callback after every finished cell; this module
provides the default one the CLI installs: a single status line per cell on
``stderr`` (so stdout stays clean for the final tables and artifacts), plus
a short run summary.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, Optional, TextIO

from repro.obs.format import format_duration


class ProgressReporter:
    """Prints ``[done/total] status cell_id (elapsed)`` per finished cell."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.errors = 0

    def __call__(self, done: int, total: int, record: Dict[str, Any]) -> None:
        status = record["status"]
        if status != "ok":
            self.errors += 1
        width = len(str(total))
        self.stream.write(
            f"[{str(done).rjust(width)}/{total}] "
            f"{'ok   ' if status == 'ok' else 'ERROR'} "
            f"{record['cell_id']} ({format_duration(record['elapsed_seconds'])})\n"
        )
        self.stream.flush()

    def summary(self, total: int, elapsed_seconds: float) -> None:
        self.stream.write(
            f"{total} cells in {format_duration(elapsed_seconds)}, {self.errors} error(s)\n"
        )
        self.stream.flush()
