"""Declarative campaign specifications.

A campaign is a matrix sweep over four axes — workloads, allocators, cost
functions, and device models — in the spirit of WiscSee's run/collect/analyze
pipelines and vegvisir's implementations matrix.  A spec is a plain dict (and
therefore JSON-serialisable)::

    {
        "name": "demo",
        "seed": 7,
        "workloads": [
            {"kind": "churn", "requests": 5000, "target_live": 200,
             "sizes": {"kind": "uniform", "low": 1, "high": 64}},
            {"kind": "database", "requests": 5000}
        ],
        "allocators": [
            {"kind": "cost_oblivious", "epsilon": 0.25},
            "first_fit"
        ],
        "costs": ["linear", "constant"],
        "devices": ["ram", "disk"]
    }

String entries are shorthand for ``{"kind": <string>}``.  ``costs`` defaults
to ``["linear"]`` and ``devices`` to ``["ram"]`` so a minimal spec only names
workloads and allocators.  An optional top-level ``"observers"`` list (e.g.
``["footprint_series"]`` or ``[{"kind": "gap_histogram", "max_points":
64}]``) attaches engine observers to every cell; their exported results are
added to each cell record in ``results.json``.  The registered kinds (see
``repro.engine.OBSERVER_KINDS``) are ``footprint_series`` (bounded
footprint/volume series), ``gap_histogram`` (power-of-two gap-size
occupancy over time), ``per_class_occupancy`` (live count/volume per size
class), ``trace_analytics`` (the full streaming trace characterisation),
and ``trace_recorder`` (stream the cell's requests to a trace file;
``"{cell}"`` in its path is replaced by the cell index so parallel cells
never clobber one another).  Observers instrument a
cell without changing its identity, so they are not part of ``cell_id``.  :meth:`CampaignSpec.expand` turns the spec into
one :class:`CampaignCell` per point of the cross product; each cell carries a
deterministic seed derived from the campaign seed and the workload axis (so
every allocator sees the *same* trace for a given workload, which is what
makes per-cell metrics comparable across allocators).

Axis entries are resolved against the registries at the bottom of this
module *lazily*, inside the executor worker: an unknown kind or a bad
parameter becomes a per-cell error record instead of aborting the sweep.
``CampaignSpec.validate()`` performs the same checks eagerly for callers who
want to fail fast before burning CPU time.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.allocators import (
    AppendOnlyAllocator,
    BestFitAllocator,
    BuddyAllocator,
    FirstFitAllocator,
    IdealPackingReallocator,
    LoggingCompactingReallocator,
    NextFitAllocator,
    SizeClassGapReallocator,
    WorstFitAllocator,
)
from repro.core import (
    CheckpointedReallocator,
    CostObliviousReallocator,
    DeamortizedReallocator,
)
from repro.core.base import Allocator
from repro.engine import Observer
from repro.engine import build_observer as _build_engine_observer
from repro.costs import (
    AffineCost,
    CappedLinearCost,
    ConstantCost,
    CostFunction,
    LinearCost,
    LogCost,
    MainMemoryCost,
    NetworkedStoreCost,
    PowerCost,
    RotatingDiskCost,
    SolidStateCost,
)
from repro.storage.devices import (
    DeviceModel,
    MainMemoryDevice,
    RotatingDiskDevice,
    SolidStateDevice,
)
from repro.workloads import (
    BimodalSizes,
    DatabaseBlockSizes,
    FixedSizes,
    PowerOfTwoSizes,
    SizeDistribution,
    Trace,
    TraceFileSource,
    UniformSizes,
    ZipfSizes,
    churn_trace,
    database_trace,
    fragmentation_attack_trace,
    grow_then_shrink_trace,
    load_trace,
    sawtooth_trace,
    sliding_window_trace,
    small_flood_trace,
)

AxisEntry = Union[str, Dict[str, Any]]


class SpecError(ValueError):
    """A campaign spec names an unknown kind or carries bad parameters."""


def normalise_entry(entry: AxisEntry) -> Dict[str, Any]:
    """Turn shorthand strings into ``{"kind": ...}`` dicts (copies dicts)."""
    if isinstance(entry, str):
        return {"kind": entry}
    if isinstance(entry, dict):
        if "kind" not in entry:
            raise SpecError(f"axis entry {entry!r} is missing its 'kind'")
        return dict(entry)
    raise SpecError(f"axis entry {entry!r} must be a string or a dict")


def entry_tag(entry: Dict[str, Any]) -> str:
    """A short human-readable id for one axis entry, used in cell ids."""
    parts = [str(entry["kind"])]
    for key in sorted(entry):
        if key == "kind":
            continue
        value = entry[key]
        if isinstance(value, dict):
            value = value.get("kind", value)
        parts.append(f"{key}={value}")
    return ",".join(parts)


@dataclass(frozen=True)
class CampaignCell:
    """One runnable point of the campaign matrix."""

    index: int
    cell_id: str
    workload: Dict[str, Any]
    allocator: Dict[str, Any]
    cost: Dict[str, Any]
    device: Dict[str, Any]
    seed: int
    observers: Tuple[Dict[str, Any], ...] = ()

    def payload(self) -> Dict[str, Any]:
        """A picklable dict handed to the executor worker."""
        return {
            "index": self.index,
            "cell_id": self.cell_id,
            "workload": self.workload,
            "allocator": self.allocator,
            "cost": self.cost,
            "device": self.device,
            "seed": self.seed,
            "observers": list(self.observers),
        }


@dataclass
class CampaignSpec:
    """A parsed campaign specification (see the module docstring)."""

    name: str = "campaign"
    seed: int = 0
    workloads: List[Dict[str, Any]] = field(default_factory=list)
    allocators: List[Dict[str, Any]] = field(default_factory=list)
    costs: List[Dict[str, Any]] = field(default_factory=lambda: [{"kind": "linear"}])
    devices: List[Dict[str, Any]] = field(default_factory=lambda: [{"kind": "ram"}])
    observers: List[Dict[str, Any]] = field(default_factory=list)

    @staticmethod
    def from_dict(raw: Dict[str, Any]) -> "CampaignSpec":
        if not isinstance(raw, dict):
            raise SpecError(f"campaign spec must be a dict, got {type(raw).__name__}")
        known = {"name", "seed", "workloads", "allocators", "costs", "devices", "observers"}
        unknown = set(raw) - known
        if unknown:
            raise SpecError(f"unknown spec keys {sorted(unknown)}; known: {sorted(known)}")
        spec = CampaignSpec(
            name=str(raw.get("name", "campaign")),
            seed=int(raw.get("seed", 0)),
            workloads=[normalise_entry(e) for e in raw.get("workloads", [])],
            allocators=[normalise_entry(e) for e in raw.get("allocators", [])],
        )
        if "costs" in raw:
            spec.costs = [normalise_entry(e) for e in raw["costs"]]
        if "devices" in raw:
            spec.devices = [normalise_entry(e) for e in raw["devices"]]
        if "observers" in raw:
            spec.observers = [normalise_entry(e) for e in raw["observers"]]
        if not spec.workloads:
            raise SpecError("campaign spec needs at least one workload")
        if not spec.allocators:
            raise SpecError("campaign spec needs at least one allocator")
        return spec

    @staticmethod
    def from_json(path: Union[str, os.PathLike]) -> "CampaignSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return CampaignSpec.from_dict(json.load(handle))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "workloads": self.workloads,
            "allocators": self.allocators,
            "costs": self.costs,
            "devices": self.devices,
            "observers": self.observers,
        }

    def expand(self) -> List[CampaignCell]:
        """The full cross product, one :class:`CampaignCell` per point."""
        cells: List[CampaignCell] = []
        observers = tuple(self.observers)
        for workload in self.workloads:
            seed = cell_seed(self.seed, workload)
            for allocator in self.allocators:
                for cost in self.costs:
                    for device in self.devices:
                        cell_id = "/".join(
                            (
                                entry_tag(workload),
                                entry_tag(allocator),
                                entry_tag(cost),
                                entry_tag(device),
                            )
                        )
                        cells.append(
                            CampaignCell(
                                index=len(cells),
                                cell_id=cell_id,
                                workload=workload,
                                allocator=allocator,
                                cost=cost,
                                device=device,
                                seed=seed,
                                observers=observers,
                            )
                        )
        return cells

    def validate(self) -> None:
        """Eagerly build every axis entry once, raising :class:`SpecError`."""
        for workload in self.workloads:
            build_workload(workload, seed=self.seed, dry_run=True)
        for allocator in self.allocators:
            build_allocator(allocator)
        for cost in self.costs:
            build_cost(cost)
        for device in self.devices:
            build_device(device)
        for observer in self.observers:
            build_observer(observer)


def cell_seed(base_seed: int, workload: Dict[str, Any]) -> int:
    """Deterministic per-workload seed, stable across processes and runs.

    ``zlib.crc32`` (not ``hash``) so the derivation is independent of
    ``PYTHONHASHSEED`` and identical in every worker process.
    """
    digest = zlib.crc32(json.dumps(workload, sort_keys=True).encode("utf-8"))
    return (int(base_seed) * 1_000_003 + digest) % (2**31)


# ---------------------------------------------------------------- registries
def build_sizes(entry: Optional[AxisEntry]) -> SizeDistribution:
    """Build a size distribution from its spec entry (default: uniform)."""
    if entry is None:
        return UniformSizes(1, 64)
    params = normalise_entry(entry)
    kind = params.pop("kind")
    factories = {
        "uniform": UniformSizes,
        "fixed": FixedSizes,
        "pow2": PowerOfTwoSizes,
        "zipf": ZipfSizes,
        "bimodal": BimodalSizes,
        "dbblocks": DatabaseBlockSizes,
    }
    if kind not in factories:
        raise SpecError(f"unknown size distribution {kind!r}; known: {sorted(factories)}")
    try:
        return factories[kind](**params)
    except (TypeError, ValueError) as error:
        raise SpecError(f"bad parameters for sizes {kind!r}: {error}") from error


def build_workload(entry: AxisEntry, seed: int, dry_run: bool = False):
    """Build the trace (or streaming source) for one workload entry.

    Returns a :class:`Trace` for synthetic workloads and plain ``replay``
    entries, or a :class:`~repro.workloads.TraceFileSource` for ``replay``
    entries with ``"stream": true`` — so a cell over a huge on-disk trace
    file never materialises it.  A streaming replay entry may add
    ``"jobs": N`` to shard the replay over N worker processes (block-indexed
    v3 traces with mergeable observers only; see
    :mod:`repro.engine.parallel`).  The result's ``metadata`` is stamped with
    the spec entry and the seed, so provenance survives into recorded trace
    files and artifacts.  ``dry_run`` only checks the entry resolves (kind +
    parameter names) and returns ``None`` without generating any requests.
    """
    trace = _build_workload_trace(entry, seed, dry_run)
    if trace is not None:
        trace.metadata.setdefault("workload", normalise_entry(entry))
        trace.metadata.setdefault("seed", seed)
    return trace


def _build_workload_trace(entry: AxisEntry, seed: int, dry_run: bool):
    params = normalise_entry(entry)
    kind = params.pop("kind")
    sizes = params.pop("sizes", None)
    requests = int(params.pop("requests", 2000))

    if kind == "churn":
        if dry_run:
            build_sizes(sizes)
            return None
        return churn_trace(requests, build_sizes(sizes), seed=seed, **params)
    if kind == "grow_shrink":
        if dry_run:
            build_sizes(sizes)
            return None
        return grow_then_shrink_trace(requests // 2, build_sizes(sizes), seed=seed, **params)
    if kind == "window":
        if dry_run:
            build_sizes(sizes)
            return None
        window = int(params.pop("window", max(1, requests // 8)))
        return sliding_window_trace(requests // 2, window, build_sizes(sizes), seed=seed, **params)
    if kind == "database":
        if dry_run:
            return None
        return database_trace(requests, seed=seed, **params)
    if kind == "sawtooth":
        if dry_run:
            return None
        peak = int(params.pop("peak_objects", max(2, requests // 8)))
        return sawtooth_trace(peak, **params)
    if kind == "fragmentation":
        if dry_run:
            return None
        pairs = int(params.pop("pairs", max(1, requests // 4)))
        return fragmentation_attack_trace(pairs, **params)
    if kind == "small_flood":
        if dry_run:
            return None
        max_exponent = int(params.pop("max_exponent", 8))
        return small_flood_trace(max_exponent, **params)
    if kind == "replay":
        path = params.pop("path", None)
        stream = bool(params.pop("stream", False))
        jobs = int(params.pop("jobs", 1))
        if path is None:
            raise SpecError("replay workloads need a 'path'")
        if jobs > 1 and not stream:
            raise SpecError(
                "replay 'jobs' shards the on-disk file and needs 'stream': true"
            )
        if dry_run:
            return None
        if stream:
            source = TraceFileSource(path, **params)
            # Consumed by the executor: replay this source sharded over
            # `jobs` worker processes (needs a block-indexed v3 file and
            # mergeable observers; anything else falls back to serial).
            source.replay_jobs = jobs
            return source
        return load_trace(path, **params)
    known = (
        "churn",
        "grow_shrink",
        "window",
        "database",
        "sawtooth",
        "fragmentation",
        "small_flood",
        "replay",
    )
    raise SpecError(f"unknown workload {kind!r}; known: {sorted(known)}")


#: Allocator registry: spec kind -> class.  The paper variants accept an
#: ``epsilon`` parameter; every allocator accepts ``audit``.
ALLOCATOR_KINDS = {
    "first_fit": FirstFitAllocator,
    "best_fit": BestFitAllocator,
    "next_fit": NextFitAllocator,
    "worst_fit": WorstFitAllocator,
    "buddy": BuddyAllocator,
    "append_only": AppendOnlyAllocator,
    "logging_compacting": LoggingCompactingReallocator,
    "size_class_gap": SizeClassGapReallocator,
    "ideal_packing": IdealPackingReallocator,
    "cost_oblivious": CostObliviousReallocator,
    "checkpointed": CheckpointedReallocator,
    "deamortized": DeamortizedReallocator,
}


def build_allocator(entry: AxisEntry) -> Allocator:
    """Build an allocator from its spec entry.

    Cells run audited by default: overlap auditing is an O(log n) indexed
    neighbour probe per placement, cheap enough to leave on even for
    100k+-object sweeps.  Set ``"audit": false`` per entry to shave the last
    few percent off a huge throughput-only run."""
    params = normalise_entry(entry)
    kind = params.pop("kind")
    if kind not in ALLOCATOR_KINDS:
        raise SpecError(f"unknown allocator {kind!r}; known: {sorted(ALLOCATOR_KINDS)}")
    params.setdefault("audit", True)
    try:
        return ALLOCATOR_KINDS[kind](**params)
    except (TypeError, ValueError) as error:
        raise SpecError(f"bad parameters for allocator {kind!r}: {error}") from error


COST_KINDS = {
    "linear": LinearCost,
    "constant": ConstantCost,
    "affine": AffineCost,
    "power": PowerCost,
    "log": LogCost,
    "capped": CappedLinearCost,
    "disk": RotatingDiskCost,
    "ssd": SolidStateCost,
    "ram": MainMemoryCost,
    "network": NetworkedStoreCost,
}


def build_cost(entry: AxisEntry) -> CostFunction:
    """Build a cost function from its spec entry."""
    params = normalise_entry(entry)
    kind = params.pop("kind")
    if kind not in COST_KINDS:
        raise SpecError(f"unknown cost function {kind!r}; known: {sorted(COST_KINDS)}")
    try:
        return COST_KINDS[kind](**params)
    except (TypeError, ValueError) as error:
        raise SpecError(f"bad parameters for cost {kind!r}: {error}") from error


def build_observer(entry: AxisEntry) -> Observer:
    """Build an engine observer from its spec entry (see ``OBSERVER_KINDS``
    in :mod:`repro.engine.observers` for the registered kinds)."""
    params = normalise_entry(entry)
    try:
        return _build_engine_observer(params)
    except ValueError as error:
        raise SpecError(str(error)) from error


DEVICE_KINDS = {
    "ram": MainMemoryDevice,
    "disk": RotatingDiskDevice,
    "ssd": SolidStateDevice,
}


def build_device(entry: AxisEntry) -> Optional[DeviceModel]:
    """Build a device model; ``{"kind": "none"}`` disables device timing."""
    params = normalise_entry(entry)
    kind = params.pop("kind")
    if kind == "none":
        return None
    if kind not in DEVICE_KINDS:
        known = sorted(DEVICE_KINDS) + ["none"]
        raise SpecError(f"unknown device {kind!r}; known: {known}")
    try:
        return DEVICE_KINDS[kind](**params)
    except (TypeError, ValueError) as error:
        raise SpecError(f"bad parameters for device {kind!r}: {error}") from error
