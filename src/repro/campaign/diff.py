"""Cross-campaign diffing: turn any two sweeps into a regression gate.

``repro sweep diff BASELINE CANDIDATE`` matches the per-cell records of two
merged ``results.json`` artifacts by ``cell_id`` and compares their metric
columns.  Every compared metric is *lower-is-better* (footprint ratios, cost
ratios, move counts/volumes), so a candidate value above the baseline by
more than the metric's tolerance is a **regression**; cells missing from
either side, and cells that flipped into (or out of) error status, are
called out separately.  With ``--fail-on-regression`` the CLI exits nonzero
on any regression, missing cell, or new error — which is what lets CI gate
every future PR on a recorded campaign.

Tolerances are percentages per metric (``--tolerance cost_ratio=2`` allows
a 2% increase); unlisted metrics default to exact (0%).  A zero-valued
baseline has no meaningful percentage, so *any* increase from zero is a
regression unless the metric's tolerance is infinite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.harness.results import ExperimentResult

#: Metric columns compared per cell, in report order.  All deterministic
#: simulation outputs (never wall-clock), all lower-is-better.
DIFF_METRICS: Tuple[str, ...] = (
    "max_footprint",
    "max_footprint_ratio",
    "mean_footprint_ratio",
    "cost_ratio",
    "total_moves",
    "total_moved_volume",
    "moves_per_insert",
    "max_request_moved_volume",
    "device_elapsed_ms",
)


class ToleranceError(ValueError):
    """A ``--tolerance`` argument does not parse or names no known metric."""


def parse_tolerances(args: Sequence[str]) -> Dict[str, float]:
    """Parse ``metric=pct`` strings (e.g. ``cost_ratio=2.5``) into a map."""
    tolerances: Dict[str, float] = {}
    for arg in args:
        metric, sep, value = arg.partition("=")
        metric = metric.strip()
        if not sep or not metric:
            raise ToleranceError(
                f"tolerance {arg!r} must look like metric=pct (e.g. cost_ratio=2.5)"
            )
        if metric not in DIFF_METRICS:
            raise ToleranceError(
                f"unknown diff metric {metric!r}; known: {', '.join(DIFF_METRICS)}"
            )
        try:
            tolerances[metric] = float(value)
        except ValueError as error:
            raise ToleranceError(f"tolerance {arg!r}: {error}") from error
        if tolerances[metric] < 0:
            raise ToleranceError(f"tolerance {arg!r} must be non-negative")
    return tolerances


@dataclass
class MetricDelta:
    """One metric of one cell, baseline vs candidate."""

    cell_id: str
    metric: str
    baseline: float
    candidate: float
    tolerance_pct: float

    @property
    def delta(self) -> float:
        return self.candidate - self.baseline

    @property
    def pct(self) -> float:
        """Percent change from the baseline (inf for a zero baseline)."""
        if self.baseline == 0:
            return 0.0 if self.candidate == 0 else math.inf
        return 100.0 * (self.candidate - self.baseline) / self.baseline

    @property
    def regressed(self) -> bool:
        if self.candidate <= self.baseline:
            return False
        if math.isinf(self.tolerance_pct):
            return False
        return self.pct > self.tolerance_pct


@dataclass
class CampaignDiff:
    """The full comparison of two campaign artifacts."""

    baseline_name: str
    candidate_name: str
    compared_cells: int = 0
    identical_cells: int = 0
    changes: List[MetricDelta] = field(default_factory=list)
    regressions: List[MetricDelta] = field(default_factory=list)
    missing_cells: List[str] = field(default_factory=list)  # in baseline only
    extra_cells: List[str] = field(default_factory=list)  # in candidate only
    new_errors: List[str] = field(default_factory=list)  # ok -> error
    fixed_errors: List[str] = field(default_factory=list)  # error -> ok
    both_errors: List[str] = field(default_factory=list)  # error on both sides

    @property
    def gate_failures(self) -> int:
        """What ``--fail-on-regression`` counts: regressions, cells the
        candidate lost, and cells that newly error."""
        return len(self.regressions) + len(self.missing_cells) + len(self.new_errors)


def diff_documents(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    tolerances: Optional[Dict[str, float]] = None,
    metrics: Sequence[str] = DIFF_METRICS,
) -> CampaignDiff:
    """Compare two loaded ``results.json`` documents cell by cell."""
    tolerances = tolerances or {}
    base_records = {r["cell_id"]: r for r in baseline.get("records", [])}
    cand_records = {r["cell_id"]: r for r in candidate.get("records", [])}
    diff = CampaignDiff(
        baseline_name=str(baseline.get("campaign", "?")),
        candidate_name=str(candidate.get("campaign", "?")),
    )
    diff.missing_cells = sorted(set(base_records) - set(cand_records))
    diff.extra_cells = sorted(set(cand_records) - set(base_records))
    for cell_id in sorted(set(base_records) & set(cand_records)):
        base, cand = base_records[cell_id], cand_records[cell_id]
        base_ok = base.get("status") == "ok"
        cand_ok = cand.get("status") == "ok"
        if base_ok and not cand_ok:
            diff.new_errors.append(cell_id)
            continue
        if not base_ok and cand_ok:
            diff.fixed_errors.append(cell_id)
            continue
        if not base_ok and not cand_ok:
            diff.both_errors.append(cell_id)
            continue
        diff.compared_cells += 1
        changed = False
        for metric in metrics:
            base_value = base.get(metric)
            cand_value = cand.get(metric)
            if not isinstance(base_value, (int, float)) or not isinstance(
                cand_value, (int, float)
            ):
                continue  # metric absent on one side (e.g. device "none")
            if base_value == cand_value:
                continue
            changed = True
            delta = MetricDelta(
                cell_id=cell_id,
                metric=metric,
                baseline=float(base_value),
                candidate=float(cand_value),
                tolerance_pct=float(tolerances.get(metric, 0.0)),
            )
            diff.changes.append(delta)
            if delta.regressed:
                diff.regressions.append(delta)
        if not changed:
            diff.identical_cells += 1
    return diff


def _format_value(value: float) -> object:
    if value == int(value):
        return int(value)
    return round(value, 6)


def diff_table(diff: CampaignDiff) -> ExperimentResult:
    """Render the comparison the way every other repro table renders."""
    table = ExperimentResult(
        experiment_id="DIFF",
        title=(
            f"{diff.baseline_name!r} -> {diff.candidate_name!r}: "
            f"{diff.compared_cells} cells compared, "
            f"{diff.identical_cells} identical, "
            f"{len(diff.regressions)} regression(s)"
        ),
        headers=["cell", "metric", "baseline", "candidate", "delta", "pct", "verdict"],
    )
    for delta in diff.changes:
        pct = delta.pct
        table.rows.append(
            [
                delta.cell_id,
                delta.metric,
                _format_value(delta.baseline),
                _format_value(delta.candidate),
                _format_value(delta.delta),
                "inf" if math.isinf(pct) else f"{pct:+.2f}%",
                "REGRESSION" if delta.regressed else ("ok" if delta.delta < 0 else "tolerated"),
            ]
        )
    if not diff.changes:
        table.notes.append("no metric differs on any cell present in both campaigns")
    for label, cells in (
        ("missing from candidate", diff.missing_cells),
        ("only in candidate", diff.extra_cells),
        ("newly erroring", diff.new_errors),
        ("fixed (error -> ok)", diff.fixed_errors),
        ("erroring in both", diff.both_errors),
    ):
        if cells:
            shown = ", ".join(cells[:4]) + (", ..." if len(cells) > 4 else "")
            table.notes.append(f"{len(cells)} cell(s) {label}: {shown}")
    return table
