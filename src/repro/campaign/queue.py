"""Distributed campaign execution over a file-backed work queue.

The sweep executor (:mod:`repro.campaign.executor`) stops at one machine's
cores.  This module turns a campaign into a *queue directory* that any number
of independent worker processes — on the same host or on different hosts
sharing a filesystem — can drain cooperatively, in the spirit of wiscsee's
distributed SSD simulations and vegvisir's fault-isolated matrix runner::

    <dir>/
        spec.json                the campaign spec (written by enqueue)
        queue/cell-0007.json     one pending cell payload per file
        leases/cell-0007.lease   claim marker: worker token, pid, host, stamp
        journal/<worker>.jsonl   crash-safe per-worker record journals
        results.json             the merged artifact (written by merge)

The protocol needs nothing but POSIX file semantics:

* **Claiming** is an ``O_CREAT | O_EXCL`` create of the lease file — atomic
  on any local or NFS filesystem — stamped with the worker's token, pid,
  host, and claim time.  The lease's mtime is its heartbeat, refreshed by
  a background thread every TTL/4 while the cell runs, so the TTL only has
  to cover a few missed beats rather than the longest cell.  Expiry checks
  run through the injectable lease clock and add a skew tolerance (the
  mtime comes from another host's clock — see
  :data:`DEFAULT_SKEW_TOLERANCE`).
* **Fault readiness**: the durability-critical cuts are guarded by named
  :func:`~repro.faults.injector.fault_point` sites (``queue.lease.claim``,
  ``queue.journal.append``, ``queue.dequeue``, ...), transient
  ``OSError``\\ s are retried with bounded jittered backoff
  (:class:`~repro.faults.retry.RetryPolicy`), and a worker that cannot
  journal gives the cell back instead of dying — all exercised by the
  ``repro chaos`` harness.
* **Completion** appends the finished record (run through the existing
  :func:`~repro.campaign.executor.run_cell` fault isolation) to the worker's
  private JSONL journal — one fsync'd line per cell, so a crash can truncate
  at most the line being written — and only then deletes the queue file and
  the lease.
* **Expiry**: a lease whose heartbeat is older than the TTL belongs to a
  dead worker.  Other workers (and :func:`merge_queue`) *steal* it with an
  atomic ``os.rename`` to a graveyard name — exactly one stealer wins — so
  the cell is re-queued rather than lost.  A cell that was journaled but not
  dequeued (death in the tiny window between the two) may run twice; records
  are deterministic and :func:`merge_queue` deduplicates by ``cell_id``, so
  the merged artifact sees it exactly once.

:func:`merge_queue` folds every journal plus any previous ``results.json``
into the canonical artifact (atomically, via
:func:`~repro.campaign.artifacts.write_results`), reporting cells still
pending; ``repro sweep SPEC --workers N`` wraps enqueue → N local workers →
merge into one command.
"""

from __future__ import annotations

import errno
import json
import os
import socket
import threading
import time
import traceback as _traceback
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.campaign.artifacts import campaign_to_dict, load_results, write_results
from repro.campaign.executor import RECORD_VERSION, CampaignResult, ProgressCallback, run_cell
from repro.campaign.spec import CampaignSpec
from repro.faults.clock import get_clock
from repro.faults.injector import fault_point, fault_write
from repro.faults.retry import RetryPolicy
from repro.obs.telemetry import get_telemetry

#: Default lease time-to-live: a worker that has not finished a cell within
#: this many seconds — heartbeats refresh the lease while a cell runs, see
#: :class:`_LeaseHeartbeat` — is presumed dead and its cell re-queued.
DEFAULT_LEASE_TTL = 300.0

#: Slack added to every lease-expiry comparison.  The lease mtime is stamped
#: by the *owner's* filesystem while the age is computed from the
#: *claimer's* clock (via :func:`repro.faults.clock.get_clock`); on shared
#: filesystems those hosts can disagree by seconds.  A lease is only stolen
#: once its heartbeat age exceeds ``lease_ttl + skew_tolerance``.
DEFAULT_SKEW_TOLERANCE = 5.0

#: A worker that hits this many *consecutive* infrastructure failures
#: (journal append exhausted its retries) stops draining instead of
#: spinning on a broken disk.
MAX_CONSECUTIVE_WORKER_ERRORS = 3

_QUEUE_SUBDIR = "queue"
_LEASE_SUBDIR = "leases"
_JOURNAL_SUBDIR = "journal"


class QueueError(ValueError):
    """A queue directory is missing, malformed, or inconsistent."""


class CellJournal:
    """Append-only crash-safe JSONL journal of finished cell records.

    One JSON document per line, flushed and fsync'd per append: a crash can
    lose at most the line being written, and a truncated trailing line is
    skipped (and counted) by :func:`read_journal`.  The file is opened
    lazily so constructing a journal for a sweep that finishes zero cells
    leaves nothing behind.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = os.fspath(path)
        self.appended = 0
        self._handle = None
        self._dirty = False

    def append(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        handle = self._handle
        if self._dirty:
            # A previous append failed part-way and could not be rolled
            # back: terminate the torn fragment so this record starts on a
            # fresh line (read_journal skips the fragment, not the record).
            handle.write("\n")
            self._dirty = False
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        start = handle.tell()
        try:
            fault_write("queue.journal.append", handle, line + "\n")
            handle.flush()
            fault_point("queue.journal.fsync")
            os.fsync(handle.fileno())
        except OSError:
            # A short/torn write must not merge with the next (possibly
            # retried) append into one corrupt line.  Roll the file back to
            # where this record started; if even that fails, remember to
            # newline-terminate the wreckage before the next append.
            try:
                handle.flush()
                handle.truncate(start)
            except OSError:
                self._dirty = True
            raise
        self.appended += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CellJournal":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


def read_journal(path: Union[str, os.PathLike]) -> Tuple[List[Dict[str, Any]], int]:
    """Parse one journal file; returns ``(records, skipped_lines)``.

    Unparseable lines (the truncated tail a crashed worker leaves) are
    skipped, not fatal — the cell they would have recorded is simply still
    pending and re-runs.  Garbage bytes (a torn write that is not even
    UTF-8) decode to replacement characters and fail JSON parsing the same
    way, so *any* byte-level corruption costs at most the lines it touches.
    """
    records: List[Dict[str, Any]] = []
    skipped = 0
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if isinstance(record, dict) and "cell_id" in record:
                records.append(record)
            else:
                skipped += 1
    return records, skipped


def worker_token() -> str:
    """A unique identity for one worker process: ``<host>-<pid>-<nonce>``."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:8]}"


def _queue_dir(directory: Union[str, os.PathLike]) -> str:
    return os.path.join(os.fspath(directory), _QUEUE_SUBDIR)


def _lease_dir(directory: Union[str, os.PathLike]) -> str:
    return os.path.join(os.fspath(directory), _LEASE_SUBDIR)


def journal_dir(directory: Union[str, os.PathLike]) -> str:
    return os.path.join(os.fspath(directory), _JOURNAL_SUBDIR)


def spec_path(directory: Union[str, os.PathLike]) -> str:
    return os.path.join(os.fspath(directory), "spec.json")


def results_path(directory: Union[str, os.PathLike]) -> str:
    return os.path.join(os.fspath(directory), "results.json")


def load_queue_spec(directory: Union[str, os.PathLike]) -> CampaignSpec:
    """The campaign spec a queue directory was enqueued from."""
    path = spec_path(directory)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except OSError as error:
        raise QueueError(
            f"{os.fspath(directory)!r} is not a campaign queue directory "
            f"(cannot read {path!r}: {error})"
        ) from error
    except json.JSONDecodeError as error:
        raise QueueError(f"{path!r} is not a valid campaign spec: {error}") from error
    return CampaignSpec.from_dict(raw)


def enqueue_campaign(
    spec: CampaignSpec,
    directory: Union[str, os.PathLike],
    completed: Optional[Dict[str, Dict[str, Any]]] = None,
    telemetry: bool = False,
    profile_dir: Optional[str] = None,
) -> int:
    """Serialize ``spec``'s expanded cells into a queue directory.

    Writes ``spec.json`` plus one ``queue/cell-NNNN.json`` payload per cell.
    ``completed`` (``cell_id`` -> earlier ok record, see
    :func:`~repro.campaign.artifacts.completed_records`) skips cells that
    already have a durable result — the resume path for queues.  Returns
    the number of cells enqueued.  Re-enqueueing into a live queue is
    refused: pending payloads or leases mean another campaign (or a previous
    interrupted enqueue) still owns the directory.
    """
    directory = os.fspath(directory)
    queue_dir = _queue_dir(directory)
    try:
        for subdir in (queue_dir, _lease_dir(directory), journal_dir(directory)):
            os.makedirs(subdir, exist_ok=True)
    except OSError as error:
        # e.g. the target is an existing *file*: a clear refusal, not a
        # NotADirectoryError traceback.
        raise QueueError(
            f"cannot create queue directory {directory!r}: {error}"
        ) from error
    stale = [name for name in os.listdir(queue_dir) if name.endswith(".json")]
    if stale:
        raise QueueError(
            f"queue directory {directory!r} already holds {len(stale)} pending "
            "cell(s); run workers + merge (or delete the queue/ subdirectory) "
            "before enqueueing again"
        )
    with open(spec_path(directory), "w", encoding="utf-8") as handle:
        json.dump(spec.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    enqueued = 0
    for cell in spec.expand():
        if completed and completed.get(cell.cell_id, {}).get("status") == "ok":
            continue
        payload = cell.payload()
        if telemetry:
            payload["telemetry"] = True
        if profile_dir:
            payload["profile_dir"] = profile_dir
        cell_file = os.path.join(queue_dir, f"cell-{cell.index:04d}.json")
        tmp_file = f"{cell_file}.tmp"
        with open(tmp_file, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        # Payloads appear atomically: a worker scanning mid-enqueue never
        # sees (or claims) a half-written cell.
        os.replace(tmp_file, cell_file)
        enqueued += 1
    telemetry_session = get_telemetry()
    if telemetry_session.enabled:
        telemetry_session.event(
            "queue.enqueued", directory=directory, cells=enqueued, campaign=spec.name
        )
    return enqueued


@dataclass
class Lease:
    """The contents of one lease file."""

    token: str
    pid: int
    host: str
    claimed_at: float

    def to_json(self) -> str:
        return json.dumps(
            {
                "token": self.token,
                "pid": self.pid,
                "host": self.host,
                "claimed_at": round(self.claimed_at, 3),
            },
            sort_keys=True,
        )


def _lease_age(lease_path: str) -> Optional[float]:
    """Seconds since the lease's last heartbeat (mtime); None if gone.

    *Now* comes from the injectable lease clock, not ``time.time()``
    directly: the clock is the seam chaos schedules skew, and the single
    place a monotonic-ish source could be swapped in.  Callers must compare
    the age against ``lease_ttl + skew_tolerance`` — never the bare TTL —
    because the mtime was stamped by another host's clock.
    """
    try:
        return max(0.0, get_clock().now() - os.stat(lease_path).st_mtime)
    except OSError:
        return None


def _steal_lease(lease_path: str, token: str) -> bool:
    """Atomically retire an expired lease; True if *this* caller retired it.

    ``os.rename`` to a unique graveyard name is the arbiter: of all the
    workers that saw the lease expire, exactly one rename succeeds, and a
    fresh lease (re-created in the meantime by the winner of a previous
    steal) is never deleted by a slow loser — its path simply no longer
    matches.
    """
    fault_point("queue.lease.steal")
    grave = f"{lease_path}.stale-{token}"
    try:
        os.rename(lease_path, grave)
    except OSError:
        return False
    try:
        os.unlink(grave)
    except OSError:
        pass
    return True


def claim_cell(
    directory: Union[str, os.PathLike],
    token: str,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    skew_tolerance: float = DEFAULT_SKEW_TOLERANCE,
) -> Optional[Tuple[str, Dict[str, Any]]]:
    """Claim one pending cell; returns ``(cell_name, payload)`` or ``None``.

    Scans the queue in index order, skipping live leases; a lease whose
    heartbeat age exceeds ``lease_ttl + skew_tolerance`` is stolen (see
    :func:`_steal_lease`) and the cell re-claimed.  ``None`` means nothing
    is claimable right now — the queue is drained or every remaining cell
    is leased to a live worker.
    """
    directory = os.fspath(directory)
    queue_dir = _queue_dir(directory)
    lease_dir = _lease_dir(directory)
    try:
        pending = sorted(name for name in os.listdir(queue_dir) if name.endswith(".json"))
    except OSError as error:
        raise QueueError(
            f"{directory!r} is not a campaign queue directory ({error})"
        ) from error
    for name in pending:
        cell_name = name[: -len(".json")]
        cell_file = os.path.join(queue_dir, name)
        lease_path = os.path.join(lease_dir, f"{cell_name}.lease")
        age = _lease_age(lease_path)
        if age is not None:
            if age <= lease_ttl + skew_tolerance:
                continue  # live worker owns it (or our clock merely skews)
            if not _steal_lease(lease_path, token):
                continue  # someone else won the steal; move on
        fault_point("queue.lease.claim")
        try:
            fd = os.open(lease_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except OSError as error:
            if error.errno == errno.EEXIST:
                continue  # lost the claim race
            if error.errno in (errno.ENOENT, errno.ENOTDIR):
                raise QueueError(
                    f"{directory!r} is not a campaign queue directory "
                    f"(missing its leases/ subdirectory: {error})"
                ) from error
            raise
        lease = Lease(
            token=token, pid=os.getpid(), host=socket.gethostname(), claimed_at=time.time()
        )
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            # A torn/failed stamp is harmless — the mtime is the heartbeat
            # and the contents are diagnostic only — but it must not abort
            # the claim we already won.
            try:
                fault_write("queue.lease.write", handle, lease.to_json() + "\n")
            except OSError:
                pass
        try:
            with open(cell_file, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            # The cell finished (and was dequeued) between our scan and the
            # claim, or the payload is unreadable: drop the lease and move on.
            try:
                os.unlink(lease_path)
            except OSError:
                pass
            continue
        return cell_name, payload
    return None


def complete_cell(directory: Union[str, os.PathLike], cell_name: str) -> None:
    """Dequeue a finished cell: remove its payload file, then its lease.

    Called only after the record is durably journaled — this ordering is
    what guarantees at-least-once execution (a death in between re-runs the
    cell; the merge deduplicates).
    """
    directory = os.fspath(directory)
    fault_point("queue.dequeue")
    for path in (
        os.path.join(_queue_dir(directory), f"{cell_name}.json"),
        os.path.join(_lease_dir(directory), f"{cell_name}.lease"),
    ):
        try:
            os.unlink(path)
        except OSError:
            pass


def release_lease(directory: Union[str, os.PathLike], cell_name: str) -> None:
    """Give a claimed cell back (payload kept): drop only its lease.

    The clean way out when a worker cannot finish a cell — the next claimer
    takes it immediately instead of waiting out the TTL.
    """
    try:
        os.unlink(os.path.join(_lease_dir(os.fspath(directory)), f"{cell_name}.lease"))
    except OSError:
        pass


class _LeaseHeartbeat:
    """Refreshes a lease's mtime on a background thread while its cell runs.

    Without heartbeats a lease's only stamp is the claim time, so the TTL
    must exceed the *longest* cell; with them the TTL only has to cover a
    few missed beats.  A failed beat is retried at the next interval (the
    lease may also have been stolen meanwhile — beating a missing file is
    a no-op failure, and the dedup merge absorbs the double-run).
    """

    def __init__(self, lease_path: str, interval: float) -> None:
        self._lease_path = lease_path
        self._interval = max(0.05, interval)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="lease-heartbeat", daemon=True
        )

    def start(self) -> "_LeaseHeartbeat":
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                fault_point("queue.lease.heartbeat")
                os.utime(self._lease_path, None)
            except OSError:
                continue

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def _worker_error_record(payload: Dict[str, Any], kind: str, message: str) -> Dict[str, Any]:
    """A typed error record for infrastructure failures around a cell.

    Mirrors the shape :func:`~repro.campaign.executor.run_cell` gives error
    records so merge / tables / diff treat it like any other failed cell;
    ``error_kind`` distinguishes worker-level trouble (timeout, crash,
    journal exhaustion) from the cell's own exception.
    """
    return {
        "index": payload.get("index"),
        "cell_id": payload.get("cell_id"),
        "workload": payload.get("workload"),
        "allocator": payload.get("allocator"),
        "cost": payload.get("cost"),
        "device": payload.get("device"),
        "seed": payload.get("seed"),
        "observers": payload.get("observers", []),
        "record_version": RECORD_VERSION,
        "status": "error",
        "error_kind": kind,
        "error": message,
        "elapsed_seconds": 0.0,
    }


def _timeout_cell_entry(payload: Dict[str, Any], connection) -> None:
    """Child entry for per-cell timeouts: run the cell, pipe the record."""
    try:
        record = run_cell(payload)
    except BaseException:  # run_cell never raises; belt and braces
        record = _worker_error_record(payload, "worker_error", _traceback.format_exc(limit=20))
    try:
        connection.send(record)
    finally:
        connection.close()


def _run_cell_with_timeout(payload: Dict[str, Any], timeout: float) -> Dict[str, Any]:
    """Run one cell in a child process, bounded by ``timeout`` seconds.

    A cell that overruns is terminated and becomes a typed
    ``worker_timeout`` error record; a child that dies outright (a crash
    fault, a segfault) becomes ``worker_crash``.  Either way the worker
    survives and moves on.
    """
    import multiprocessing

    receiver, sender = multiprocessing.Pipe(duplex=False)
    process = multiprocessing.Process(target=_timeout_cell_entry, args=(payload, sender))
    process.start()
    sender.close()
    record = None
    try:
        # poll() also wakes on EOF when the child dies without sending.
        if receiver.poll(timeout):
            record = receiver.recv()
    except (EOFError, OSError):
        record = None
    if record is None:
        timed_out = process.is_alive()
        if timed_out:
            process.terminate()
        process.join()
        receiver.close()
        if timed_out:
            return _worker_error_record(
                payload, "worker_timeout", f"cell exceeded the {timeout}s cell timeout"
            )
        return _worker_error_record(
            payload, "worker_crash", f"cell process died (exit code {process.exitcode})"
        )
    process.join()
    receiver.close()
    return record


def work_queue(
    directory: Union[str, os.PathLike],
    token: Optional[str] = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    max_cells: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    skew_tolerance: float = DEFAULT_SKEW_TOLERANCE,
    retry: Optional[RetryPolicy] = None,
    cell_timeout: Optional[float] = None,
) -> int:
    """Drain cells from a queue directory until none are claimable.

    The worker claims a cell (atomic lease), heartbeats the lease on a
    background thread while the cell runs through
    :func:`~repro.campaign.executor.run_cell` (fault-isolated: a crashing
    cell becomes an error record, not a dead worker), journals the record
    (fsync'd JSONL), dequeues the cell, and repeats.

    Transient ``OSError``\\ s around claim / journal / dequeue are retried
    under ``retry`` (bounded exponential backoff with jitter).  A journal
    append that exhausts its retries releases the cell's lease — the cell
    re-runs elsewhere — and after
    :data:`MAX_CONSECUTIVE_WORKER_ERRORS` such failures the worker stops
    instead of poisoning the queue.  ``cell_timeout`` runs each cell in a
    child process and turns overruns (and child deaths) into typed
    ``worker_timeout`` / ``worker_crash`` error records.  ``max_cells``
    bounds the number of cells this worker takes (tests and load shaping);
    the return value is the number of cells executed.
    """
    directory = os.fspath(directory)
    if not os.path.isdir(_queue_dir(directory)):
        raise QueueError(
            f"{directory!r} is not a campaign queue directory "
            "(run 'repro sweep enqueue <spec> <dir>' first)"
        )
    try:
        # Recreate satellite subdirectories a partial enqueue (or an
        # overeager cleanup) may have dropped; claiming needs them.
        os.makedirs(_lease_dir(directory), exist_ok=True)
        os.makedirs(journal_dir(directory), exist_ok=True)
    except OSError as error:
        raise QueueError(
            f"{directory!r} is not a usable campaign queue directory ({error})"
        ) from error
    token = token or worker_token()
    retry = retry or RetryPolicy()
    heartbeat_interval = max(0.5, min(60.0, lease_ttl / 4.0))
    session = get_telemetry()
    executed = 0
    consecutive_errors = 0
    with CellJournal(os.path.join(journal_dir(directory), f"{token}.jsonl")) as journal:
        with session.span("queue.work", directory=directory, worker=token):
            counter = session.counter("queue.cells_executed") if session.enabled else None
            while max_cells is None or executed < max_cells:
                try:
                    claimed = retry.call(
                        claim_cell,
                        directory,
                        token,
                        lease_ttl=lease_ttl,
                        skew_tolerance=skew_tolerance,
                    )
                except OSError as error:
                    # Claiming itself is broken (disk gone?): stop cleanly
                    # with everything already journaled intact.
                    if session.enabled:
                        session.event(
                            "queue.worker_error",
                            worker=token,
                            stage="claim",
                            error=str(error),
                        )
                    break
                if claimed is None:
                    break
                cell_name, payload = claimed
                lease_path = os.path.join(_lease_dir(directory), f"{cell_name}.lease")
                heartbeat = _LeaseHeartbeat(lease_path, heartbeat_interval).start()
                try:
                    with session.span("queue.cell", cell=payload.get("cell_id", cell_name)):
                        if cell_timeout is not None:
                            record = _run_cell_with_timeout(payload, cell_timeout)
                        else:
                            record = run_cell(payload)
                finally:
                    heartbeat.stop()
                record["worker"] = token
                try:
                    retry.call(journal.append, record)
                except OSError as error:
                    # The record could not be made durable: give the cell
                    # back (it re-runs; merge dedups if our line half-made
                    # it) and count the strike.
                    release_lease(directory, cell_name)
                    consecutive_errors += 1
                    if session.enabled:
                        session.event(
                            "queue.worker_error",
                            worker=token,
                            stage="journal",
                            cell=payload.get("cell_id", cell_name),
                            error=str(error),
                        )
                    if consecutive_errors >= MAX_CONSECUTIVE_WORKER_ERRORS:
                        break
                    continue
                consecutive_errors = 0
                try:
                    retry.call(complete_cell, directory, cell_name)
                except OSError:
                    # The record is durably journaled; a merge drops the
                    # stale payload once it sees the ok record.
                    pass
                executed += 1
                if counter is not None:
                    counter.value += 1
                if progress is not None:
                    progress(executed, executed, record)
    session.flush()
    return executed


def _preferred(old: Optional[Dict[str, Any]], new: Dict[str, Any]) -> Dict[str, Any]:
    """Deduplicate two records for the same cell: an ok record always wins
    (re-runs are deterministic, so two ok records are interchangeable — the
    first seen is kept for stability)."""
    if old is None:
        return new
    if old.get("status") != "ok" and new.get("status") == "ok":
        return new
    return old


@dataclass
class MergeResult:
    """What one merge pass produced."""

    document: Dict[str, Any]
    paths: Dict[str, str]
    records: int = 0
    from_journals: int = 0
    from_previous: int = 0
    pending: List[str] = field(default_factory=list)
    reclaimed_leases: int = 0
    skipped_lines: int = 0
    workers: List[str] = field(default_factory=list)


def merge_queue(
    directory: Union[str, os.PathLike],
    lease_ttl: float = DEFAULT_LEASE_TTL,
    skew_tolerance: float = DEFAULT_SKEW_TOLERANCE,
) -> MergeResult:
    """Fold worker journals (and any previous artifact) into ``results.json``.

    * Journal records and the records of an existing merged ``results.json``
      are deduplicated by ``cell_id`` (ok preferred — see :func:`_preferred`),
      re-indexed against the spec, and written atomically through
      :func:`~repro.campaign.artifacts.write_results`.
    * Leases whose heartbeat exceeded ``lease_ttl`` are reclaimed (their
      workers are dead), so the cells they held become claimable again.
    * Cells still queued without an ok record are reported as ``pending``
      and the document is stamped ``"interrupted": true`` so resume flows
      treat the artifact as incomplete.
    """
    directory = os.fspath(directory)
    spec = load_queue_spec(directory)
    session = get_telemetry()

    by_cell: Dict[str, Dict[str, Any]] = {}
    from_previous = 0
    previous_path = results_path(directory)
    if os.path.exists(previous_path):
        for record in load_results(previous_path).get("records", []):
            by_cell[record["cell_id"]] = _preferred(by_cell.get(record["cell_id"]), record)
            from_previous += 1

    from_journals = 0
    skipped_lines = 0
    workers: List[str] = []
    journals_dir = journal_dir(directory)
    if os.path.isdir(journals_dir):
        for name in sorted(os.listdir(journals_dir)):
            if not name.endswith(".jsonl"):
                continue
            workers.append(name[: -len(".jsonl")])
            records, skipped = read_journal(os.path.join(journals_dir, name))
            skipped_lines += skipped
            for record in records:
                by_cell[record["cell_id"]] = _preferred(by_cell.get(record["cell_id"]), record)
                from_journals += 1

    # Reclaim expired leases so dead workers' cells are re-queued, and drop
    # leases/payloads for cells that already completed (a worker died in the
    # journal-then-dequeue window).
    reclaimed = 0
    lease_dir = _lease_dir(directory)
    queue_dir = _queue_dir(directory)
    cell_files = {}
    if os.path.isdir(queue_dir):
        for name in sorted(os.listdir(queue_dir)):
            if name.endswith(".json"):
                cell_files[name[: -len(".json")]] = os.path.join(queue_dir, name)
    done_ids = {cell_id for cell_id, record in by_cell.items() if record.get("status") == "ok"}
    pending: List[str] = []
    cells = spec.expand()
    name_by_index = {f"cell-{cell.index:04d}": cell for cell in cells}
    for cell_name, cell_file in cell_files.items():
        cell = name_by_index.get(cell_name)
        if cell is not None and cell.cell_id in done_ids:
            complete_cell(directory, cell_name)
            continue
        lease_path = os.path.join(lease_dir, f"{cell_name}.lease")
        age = _lease_age(lease_path)
        if age is not None and age > lease_ttl + skew_tolerance:
            if _steal_lease(lease_path, "merge"):
                reclaimed += 1
        pending.append(cell.cell_id if cell is not None else cell_name)

    # Order the merged records by the spec's cell indices; records for cells
    # no longer in the spec (a narrowed re-enqueue) are dropped.
    records: List[Dict[str, Any]] = []
    for cell in cells:
        record = by_cell.get(cell.cell_id)
        if record is not None:
            record = dict(record)
            record["index"] = cell.index
            records.append(record)

    elapsed = sum(float(r.get("elapsed_seconds", 0.0)) for r in records)
    result = CampaignResult(
        spec=spec,
        records=records,
        jobs=max(1, len(workers)),
        elapsed_seconds=elapsed,
        metadata={
            "resumed": from_previous,
            "interrupted": bool(pending),
        },
    )
    paths = write_results(result, directory)
    if session.enabled:
        session.event(
            "queue.merged",
            directory=directory,
            records=len(records),
            pending=len(pending),
            reclaimed=reclaimed,
            workers=len(workers),
        )
        session.flush()
    document = campaign_to_dict(result)
    return MergeResult(
        document=document,
        paths=paths,
        records=len(records),
        from_journals=from_journals,
        from_previous=from_previous,
        pending=pending,
        reclaimed_leases=reclaimed,
        skipped_lines=skipped_lines,
        workers=workers,
    )


def _worker_entry(
    directory: str, token: str, lease_ttl: float, cell_timeout: Optional[float] = None
) -> None:
    """Entry point for locally spawned worker processes."""
    work_queue(directory, token=token, lease_ttl=lease_ttl, cell_timeout=cell_timeout)


def run_queue_sweep(
    spec: CampaignSpec,
    directory: Union[str, os.PathLike],
    workers: int,
    completed: Optional[Dict[str, Dict[str, Any]]] = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    telemetry: bool = False,
    profile_dir: Optional[str] = None,
    cell_timeout: Optional[float] = None,
) -> MergeResult:
    """Enqueue ``spec``, drain it with ``workers`` local processes, merge.

    This is ``repro sweep SPEC --workers N``: the local convenience wrapper
    over the same queue protocol remote workers speak — the directory can be
    drained by additional ``repro sweep work DIR`` processes on other hosts
    at the same time.  ``workers <= 0`` means one per CPU.
    """
    import multiprocessing

    if workers <= 0:
        workers = os.cpu_count() or 1
    directory = os.fspath(directory)
    enqueued = enqueue_campaign(
        spec, directory, completed=completed, telemetry=telemetry, profile_dir=profile_dir
    )
    workers = min(workers, max(1, enqueued))
    session = get_telemetry()
    with session.span("queue.sweep", directory=directory, workers=workers, cells=enqueued):
        processes = [
            multiprocessing.Process(
                target=_worker_entry,
                args=(directory, f"{worker_token()}-w{rank}", lease_ttl, cell_timeout),
            )
            for rank in range(workers)
        ]
        for process in processes:
            process.start()
        try:
            for process in processes:
                process.join()
        except KeyboardInterrupt:
            # Stop the fleet but keep everything already journaled: the merge
            # below writes a partial artifact stamped "interrupted".
            for process in processes:
                if process.is_alive():
                    process.terminate()
            for process in processes:
                process.join()
    return merge_queue(directory, lease_ttl=lease_ttl)
