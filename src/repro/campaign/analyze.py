"""Trace analytics: what does a workload look like before it hits an allocator?

WiscSee-style pipelines first characterise the collected trace (sizes,
lifetimes, death times, footprint) and only then sweep configurations; this
module is that characterisation step for any request stream — a synthetic or
adversarial :class:`~repro.workloads.base.Trace`, or a streaming
:class:`~repro.workloads.replay.TraceFileSource` over an on-disk file that
is never materialised.

All statistics are derived purely from the request stream in **one pass**
(the heavy lifting lives in
:class:`~repro.engine.analytics.TraceAnalyticsObserver`, which also rides
along on live engine runs):

* **footprint profile** — live volume over time (peak / mean / final), the
  denominator of every competitive ratio in the paper;
* **object size distribution** — power-of-two histogram plus percentiles,
  which determines the size-class structure the reallocator builds;
* **lifetime distribution** — requests between an object's insert and its
  delete (objects alive at the end are censored at the trace length);
* **death-time grouping** — which fraction of inserted volume dies in each
  tenth of the trace, separating churn-heavy from grow-only workloads.
"""

from __future__ import annotations

from repro.engine.analytics import (  # noqa: F401 - re-exported for compatibility
    TraceAnalytics,
    TraceAnalyticsObserver,
    analyze_source,
    percentile,
    size_histogram,
)
from repro.harness.results import ExperimentResult
from repro.metrics.report import render_sparkline


def analyze_trace(trace, death_buckets: int = 10) -> TraceAnalytics:
    """Compute the full analytics bundle for ``trace`` in one streaming pass.

    ``trace`` may be a materialised :class:`~repro.workloads.base.Trace`, a
    streaming :class:`~repro.workloads.replay.TraceFileSource`, or any
    iterable of requests; the statistics are identical either way, and a
    streaming source is consumed one request at a time (peak memory is
    bounded by the live-object set and the distinct statistic values, never
    the request count).
    """
    return analyze_source(trace, death_buckets=death_buckets)


def analytics_result(analytics: TraceAnalytics) -> ExperimentResult:
    """Render analytics as an :class:`ExperimentResult` for terminal output."""
    result = ExperimentResult(
        experiment_id="TRACE",
        title=f"Trace analytics — {analytics.label}",
        headers=["metric", "value"],
    )
    result.rows.extend(
        [
            ["requests", analytics.requests],
            ["inserts / deletes", f"{analytics.inserts} / {analytics.deletes}"],
            ["Delta (largest object)", analytics.delta],
            ["inserted volume", analytics.inserted_volume],
            ["peak / mean / final volume",
             f"{analytics.peak_volume} / {analytics.mean_volume} / {analytics.final_volume}"],
            ["turnover (inserted / peak)", analytics.turnover],
            ["size p50 / p90 / p99 / max",
             " / ".join(str(analytics.sizes[k]) for k in ("p50", "p90", "p99", "max"))],
            ["lifetime p50 / p90 / p99 / max",
             " / ".join(str(analytics.lifetimes[k]) for k in ("p50", "p90", "p99", "max"))],
            ["immortal objects (volume)",
             f"{analytics.immortal_objects} ({analytics.immortal_volume})"],
        ]
    )
    result.data["analytics"] = analytics.to_dict()

    histogram = ExperimentResult(
        experiment_id="TRACE",
        title="Object size histogram (power-of-two buckets)",
        headers=["bucket", "count", "volume"],
    )
    for bucket in analytics.histogram:
        histogram.rows.append(
            [f"[{bucket['low']}, {bucket['high']}]", bucket["count"], bucket["volume"]]
        )
    result.notes.append(histogram.to_text())
    if analytics.histogram:
        result.notes.append(
            "size buckets  count "
            f"|{render_sparkline([b['count'] for b in analytics.histogram])}|"
            "  volume "
            f"|{render_sparkline([b['volume'] for b in analytics.histogram])}|"
        )

    deaths = ExperimentResult(
        experiment_id="TRACE",
        title="Death-time grouping (tenths of the trace)",
        headers=["tenth", "objects dying", "volume dying", "fraction of inserted volume"],
    )
    for bucket in analytics.death_groups:
        deaths.rows.append(
            [bucket["bucket"], bucket["objects"], bucket["volume"], bucket["volume_fraction"]]
        )
    result.notes.append(deaths.to_text())
    if analytics.death_groups:
        result.notes.append(
            "death tenths  objects "
            f"|{render_sparkline([b['objects'] for b in analytics.death_groups])}|"
            "  volume "
            f"|{render_sparkline([b['volume'] for b in analytics.death_groups])}|"
        )
    return result
