"""Trace analytics: what does a workload look like before it hits an allocator?

WiscSee-style pipelines first characterise the collected trace (sizes,
lifetimes, death times, footprint) and only then sweep configurations; this
module is that characterisation step for any :class:`~repro.workloads.base.Trace`
— synthetic, adversarial, or loaded from a recorded trace file.

All statistics are derived purely from the request stream:

* **footprint profile** — live volume over time (peak / mean / final), the
  denominator of every competitive ratio in the paper;
* **object size distribution** — power-of-two histogram plus percentiles,
  which determines the size-class structure the reallocator builds;
* **lifetime distribution** — requests between an object's insert and its
  delete (objects alive at the end are censored at the trace length);
* **death-time grouping** — which fraction of inserted volume dies in each
  tenth of the trace, separating churn-heavy from grow-only workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.harness.results import ExperimentResult
from repro.workloads.base import Trace


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence (0 if empty)."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def size_histogram(sizes: Sequence[int]) -> List[Dict[str, int]]:
    """Counts and volume per power-of-two size bucket ``[2^k, 2^(k+1))``."""
    buckets: Dict[int, Dict[str, int]] = {}
    for size in sizes:
        exponent = max(0, size.bit_length() - 1)
        bucket = buckets.setdefault(
            exponent, {"low": 1 << exponent, "high": (1 << (exponent + 1)) - 1, "count": 0, "volume": 0}
        )
        bucket["count"] += 1
        bucket["volume"] += size
    return [buckets[exponent] for exponent in sorted(buckets)]


@dataclass
class TraceAnalytics:
    """Every statistic :func:`analyze_trace` computes for one trace."""

    label: str
    requests: int
    inserts: int
    deletes: int
    distinct_objects: int
    delta: int
    inserted_volume: int
    peak_volume: int
    mean_volume: float
    final_volume: int
    turnover: float
    sizes: Dict[str, float]
    lifetimes: Dict[str, float]
    immortal_objects: int
    immortal_volume: int
    histogram: List[Dict[str, int]] = field(default_factory=list)
    death_groups: List[Dict[str, float]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


def analyze_trace(trace: Trace, death_buckets: int = 10) -> TraceAnalytics:
    """Compute the full analytics bundle for ``trace``."""
    births: Dict[object, int] = {}
    birth_sizes: Dict[object, int] = {}
    lifetimes: List[int] = []
    deaths: List[Dict[str, float]] = [
        {"bucket": index, "objects": 0, "volume": 0} for index in range(death_buckets)
    ]
    total = max(1, len(trace))
    volume = 0
    volume_sum = 0.0
    peak = 0
    sizes: List[int] = []
    seen_names = set()

    for index, request in enumerate(trace):
        if request.is_insert:
            seen_names.add(request.name)
            births[request.name] = index
            birth_sizes[request.name] = request.size
            sizes.append(request.size)
            volume += request.size
        else:
            born = births.pop(request.name)
            size = birth_sizes.pop(request.name)
            lifetimes.append(index - born)
            bucket = min(death_buckets - 1, (index * death_buckets) // total)
            deaths[bucket]["objects"] += 1
            deaths[bucket]["volume"] += size
            volume -= size
        peak = max(peak, volume)
        volume_sum += volume

    immortal_volume = sum(birth_sizes.values())
    censored = [len(trace) - born for born in births.values()]
    all_lifetimes = sorted(lifetimes + censored)
    sorted_sizes = sorted(sizes)
    inserted_volume = sum(sizes)

    for bucket in deaths:
        bucket["volume_fraction"] = round(bucket["volume"] / max(1, inserted_volume), 4)

    return TraceAnalytics(
        label=trace.label,
        requests=len(trace),
        inserts=len(sizes),
        deletes=len(lifetimes),
        distinct_objects=len(seen_names),
        delta=max(sorted_sizes, default=0),
        inserted_volume=inserted_volume,
        peak_volume=peak,
        mean_volume=round(volume_sum / total, 2),
        final_volume=volume,
        turnover=round(inserted_volume / max(1, peak), 3),
        sizes={
            "p50": percentile(sorted_sizes, 0.50),
            "p90": percentile(sorted_sizes, 0.90),
            "p99": percentile(sorted_sizes, 0.99),
            "max": float(sorted_sizes[-1]) if sorted_sizes else 0.0,
        },
        lifetimes={
            "p50": percentile(all_lifetimes, 0.50),
            "p90": percentile(all_lifetimes, 0.90),
            "p99": percentile(all_lifetimes, 0.99),
            "max": float(all_lifetimes[-1]) if all_lifetimes else 0.0,
        },
        immortal_objects=len(births),
        immortal_volume=immortal_volume,
        histogram=size_histogram(sizes),
        death_groups=deaths,
    )


def analytics_result(analytics: TraceAnalytics) -> ExperimentResult:
    """Render analytics as an :class:`ExperimentResult` for terminal output."""
    result = ExperimentResult(
        experiment_id="TRACE",
        title=f"Trace analytics — {analytics.label}",
        headers=["metric", "value"],
    )
    result.rows.extend(
        [
            ["requests", analytics.requests],
            ["inserts / deletes", f"{analytics.inserts} / {analytics.deletes}"],
            ["Delta (largest object)", analytics.delta],
            ["inserted volume", analytics.inserted_volume],
            ["peak / mean / final volume",
             f"{analytics.peak_volume} / {analytics.mean_volume} / {analytics.final_volume}"],
            ["turnover (inserted / peak)", analytics.turnover],
            ["size p50 / p90 / p99 / max",
             " / ".join(str(analytics.sizes[k]) for k in ("p50", "p90", "p99", "max"))],
            ["lifetime p50 / p90 / p99 / max",
             " / ".join(str(analytics.lifetimes[k]) for k in ("p50", "p90", "p99", "max"))],
            ["immortal objects (volume)",
             f"{analytics.immortal_objects} ({analytics.immortal_volume})"],
        ]
    )
    result.data["analytics"] = analytics.to_dict()

    histogram = ExperimentResult(
        experiment_id="TRACE",
        title="Object size histogram (power-of-two buckets)",
        headers=["bucket", "count", "volume"],
    )
    for bucket in analytics.histogram:
        histogram.rows.append(
            [f"[{bucket['low']}, {bucket['high']}]", bucket["count"], bucket["volume"]]
        )
    result.notes.append(histogram.to_text())

    deaths = ExperimentResult(
        experiment_id="TRACE",
        title="Death-time grouping (tenths of the trace)",
        headers=["tenth", "objects dying", "volume dying", "fraction of inserted volume"],
    )
    for bucket in analytics.death_groups:
        deaths.rows.append(
            [bucket["bucket"], bucket["objects"], bucket["volume"], bucket["volume_fraction"]]
        )
    result.notes.append(deaths.to_text())
    return result
