"""Render recorded campaign artifacts as terminal tables and charts.

``repro sweep report <dir>`` loads the ``results.json`` a previous sweep
wrote and turns it back into the terminal view of the run — the per-cell
summary table plus, for every cell that carried series observers, terminal
charts: the footprint/volume series (``footprint_series``), the
power-of-two gap-size occupancy over time (``gap_histogram``), and the
per-size-class live volume (``per_class_occupancy``).  Nothing re-runs:
this is a pure view over the artifact, so it works on results produced on
another machine.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.campaign.spec import entry_tag
from repro.harness.results import ExperimentResult
from repro.metrics.report import render_bucket_series, render_series
from repro.obs.format import format_bytes, format_duration


def document_table(document: Dict[str, Any]) -> ExperimentResult:
    """The per-cell summary table of a loaded ``results.json`` document."""
    records = document.get("records", [])
    errors = sum(1 for record in records if record.get("status") != "ok")
    table = ExperimentResult(
        experiment_id="SWEEP",
        title=(
            f"Campaign {document.get('campaign', '?')!r}: {len(records)} cells, "
            f"{errors} errors, jobs={document.get('jobs', '?')}, "
            f"{format_duration(float(document.get('elapsed_seconds', 0.0)))} (recorded)"
        ),
        headers=[
            "workload",
            "allocator",
            "cost",
            "device",
            "status",
            "max footprint/V",
            "cost ratio",
            "moved volume",
        ],
    )
    for record in records:
        axes = [
            entry_tag(record["workload"]),
            entry_tag(record["allocator"]),
            entry_tag(record["cost"]),
            entry_tag(record["device"]),
        ]
        if record.get("status") == "ok":
            table.rows.append(
                axes
                + [
                    "ok",
                    round(record["max_footprint_ratio"], 3),
                    round(record["cost_ratio"], 2),
                    record["total_moved_volume"],
                ]
            )
        else:
            error = record.get("error", "").strip().splitlines()
            table.rows.append(axes + ["ERROR", "-", "-", error[-1][:60] if error else "?"])
    return table


def _cell_charts(record: Dict[str, Any], width: int, height: int) -> List[str]:
    parts: List[str] = []
    series = record.get("footprint_series")
    if isinstance(series, dict) and series.get("footprint"):
        parts.append(
            render_series(
                series["footprint"],
                width=width,
                height=height,
                label=f"footprint over {series.get('requests_seen', '?')} requests",
            )
        )
        parts.append(
            render_series(
                series["volume"],
                width=width,
                height=height,
                label="live volume (same sample points)",
            )
        )
    histogram = record.get("gap_histogram")
    if isinstance(histogram, dict) and histogram.get("counts"):
        buckets = histogram.get("buckets", [])
        rows = [
            [sample[index] for sample in histogram["counts"]]
            for index in range(len(buckets))
        ]
        parts.append(
            render_bucket_series(
                [f"[{low}, {high}]" for low, high in buckets],
                rows,
                width=width,
                title="free gaps per power-of-two length bucket over time",
            )
        )
    occupancy = record.get("per_class_occupancy")
    if isinstance(occupancy, dict) and occupancy.get("volume"):
        classes = occupancy.get("classes", [])
        rows = [
            [sample[index] for sample in occupancy["volume"]]
            for index in range(len(classes))
        ]
        parts.append(
            render_bucket_series(
                [f"[{low}, {high}]" for low, high in classes],
                rows,
                width=width,
                title="live volume per power-of-two size class over time",
            )
        )
    return parts


def _median(values: List[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[middle])
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def _telemetry_section(
    document: Dict[str, Any], cell_filter: Optional[str]
) -> List[str]:
    """Per-cell resource table plus recorded counter/span views.

    Outlier flagging compares each cell against the median of the ok
    cells: anything past 2x the median elapsed time or peak RSS is marked
    so a skewed cell stands out of a large matrix at a glance.
    """
    from repro.obs.report import _span_tree_lines, format_metric

    records = document.get("records", [])
    ok_records = [r for r in records if r.get("status") == "ok"]
    median_elapsed = _median(
        [float(r.get("elapsed_seconds", 0.0)) for r in ok_records]
    )
    median_rss = _median(
        [float((r.get("resources") or {}).get("max_rss_kb", 0)) for r in ok_records]
    )
    table = ExperimentResult(
        experiment_id="SWEEP",
        title="per-cell resources (flags mark >2x the ok-cell median)",
        headers=["cell", "status", "elapsed", "cpu", "peak rss", "gc", "flags"],
    )
    for record in records:
        resources = record.get("resources") or {}
        elapsed = float(record.get("elapsed_seconds", 0.0))
        rss_kb = float(resources.get("max_rss_kb", 0))
        flags = []
        if median_elapsed and elapsed > 2 * median_elapsed:
            flags.append("elapsed!")
        if median_rss and rss_kb > 2 * median_rss:
            flags.append("rss!")
        table.rows.append(
            [
                record.get("cell_id", "?"),
                record.get("status", "?"),
                format_duration(elapsed),
                format_duration(float(resources.get("cpu_seconds", 0.0)))
                if resources
                else "-",
                format_bytes(rss_kb * 1024) if resources else "-",
                resources.get("gc_collections", "-") if resources else "-",
                " ".join(flags) or "-",
            ]
        )
    parts = ["", table.to_text()]
    for record in records:
        recorded = record.get("telemetry")
        if not isinstance(recorded, dict):
            continue
        cell_id = record.get("cell_id", "?")
        if cell_filter and cell_filter not in cell_id:
            continue
        parts.append("")
        parts.append(f"--- telemetry {cell_id} ---")
        spans = recorded.get("spans") or []
        if spans:
            parts.extend(_span_tree_lines(spans))
        for label in ("counters", "gauges"):
            values = recorded.get(label) or {}
            if values:
                summary = "  ".join(
                    f"{name}={format_metric(name, value)}"
                    for name, value in sorted(values.items())
                )
                parts.append(f"  {label}: {summary}")
    return parts


def sweep_report(
    document: Dict[str, Any],
    cell_filter: Optional[str] = None,
    width: int = 60,
    height: int = 10,
    telemetry: bool = False,
) -> str:
    """The full terminal report for a loaded ``results.json`` document.

    ``cell_filter`` (substring match on ``cell_id``) limits which cells are
    charted; the summary table always covers every record.  ``telemetry``
    adds the per-cell resource/outlier table and any recorded counter and
    span views (``repro sweep report <dir> --telemetry``).
    """
    parts = [document_table(document).to_text()]
    if telemetry:
        parts.extend(_telemetry_section(document, cell_filter))
    for record in document.get("records", []):
        if record.get("status") != "ok":
            continue
        if cell_filter and cell_filter not in record.get("cell_id", ""):
            continue
        charts = _cell_charts(record, width=width, height=height)
        if not charts:
            continue
        parts.append("")
        parts.append(f"--- {record.get('cell_id', '?')} ---")
        parts.extend(charts)
    return "\n".join(parts)
