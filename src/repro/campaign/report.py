"""Render recorded campaign artifacts as terminal tables and charts.

``repro sweep report <dir>`` loads the ``results.json`` a previous sweep
wrote and turns it back into the terminal view of the run — the per-cell
summary table plus, for every cell that carried series observers, terminal
charts: the footprint/volume series (``footprint_series``), the
power-of-two gap-size occupancy over time (``gap_histogram``), and the
per-size-class live volume (``per_class_occupancy``).  Nothing re-runs:
this is a pure view over the artifact, so it works on results produced on
another machine.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.campaign.spec import entry_tag
from repro.harness.results import ExperimentResult
from repro.metrics.report import render_bucket_series, render_series


def document_table(document: Dict[str, Any]) -> ExperimentResult:
    """The per-cell summary table of a loaded ``results.json`` document."""
    records = document.get("records", [])
    errors = sum(1 for record in records if record.get("status") != "ok")
    table = ExperimentResult(
        experiment_id="SWEEP",
        title=(
            f"Campaign {document.get('campaign', '?')!r}: {len(records)} cells, "
            f"{errors} errors, jobs={document.get('jobs', '?')}, "
            f"{float(document.get('elapsed_seconds', 0.0)):.2f}s (recorded)"
        ),
        headers=[
            "workload",
            "allocator",
            "cost",
            "device",
            "status",
            "max footprint/V",
            "cost ratio",
            "moved volume",
        ],
    )
    for record in records:
        axes = [
            entry_tag(record["workload"]),
            entry_tag(record["allocator"]),
            entry_tag(record["cost"]),
            entry_tag(record["device"]),
        ]
        if record.get("status") == "ok":
            table.rows.append(
                axes
                + [
                    "ok",
                    round(record["max_footprint_ratio"], 3),
                    round(record["cost_ratio"], 2),
                    record["total_moved_volume"],
                ]
            )
        else:
            error = record.get("error", "").strip().splitlines()
            table.rows.append(axes + ["ERROR", "-", "-", error[-1][:60] if error else "?"])
    return table


def _cell_charts(record: Dict[str, Any], width: int, height: int) -> List[str]:
    parts: List[str] = []
    series = record.get("footprint_series")
    if isinstance(series, dict) and series.get("footprint"):
        parts.append(
            render_series(
                series["footprint"],
                width=width,
                height=height,
                label=f"footprint over {series.get('requests_seen', '?')} requests",
            )
        )
        parts.append(
            render_series(
                series["volume"],
                width=width,
                height=height,
                label="live volume (same sample points)",
            )
        )
    histogram = record.get("gap_histogram")
    if isinstance(histogram, dict) and histogram.get("counts"):
        buckets = histogram.get("buckets", [])
        rows = [
            [sample[index] for sample in histogram["counts"]]
            for index in range(len(buckets))
        ]
        parts.append(
            render_bucket_series(
                [f"[{low}, {high}]" for low, high in buckets],
                rows,
                width=width,
                title="free gaps per power-of-two length bucket over time",
            )
        )
    occupancy = record.get("per_class_occupancy")
    if isinstance(occupancy, dict) and occupancy.get("volume"):
        classes = occupancy.get("classes", [])
        rows = [
            [sample[index] for sample in occupancy["volume"]]
            for index in range(len(classes))
        ]
        parts.append(
            render_bucket_series(
                [f"[{low}, {high}]" for low, high in classes],
                rows,
                width=width,
                title="live volume per power-of-two size class over time",
            )
        )
    return parts


def sweep_report(
    document: Dict[str, Any],
    cell_filter: Optional[str] = None,
    width: int = 60,
    height: int = 10,
) -> str:
    """The full terminal report for a loaded ``results.json`` document.

    ``cell_filter`` (substring match on ``cell_id``) limits which cells are
    charted; the summary table always covers every record.
    """
    parts = [document_table(document).to_text()]
    for record in document.get("records", []):
        if record.get("status") != "ok":
            continue
        if cell_filter and cell_filter not in record.get("cell_id", ""):
            continue
        charts = _cell_charts(record, width=width, height=height)
        if not charts:
            continue
        parts.append("")
        parts.append(f"--- {record.get('cell_id', '?')} ---")
        parts.extend(charts)
    return "\n".join(parts)
