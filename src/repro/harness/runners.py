"""Implementations of the experiments listed in DESIGN.md / EXPERIMENTS.md.

Each ``run_*`` function accepts ``quick`` (smaller traces, used by the test
suite and the default benchmark run) and returns an
:class:`~repro.harness.results.ExperimentResult`.  The ``full`` runs merely
use longer traces; they do not change the experiment's structure.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.allocators import (
    AppendOnlyAllocator,
    BestFitAllocator,
    BuddyAllocator,
    FirstFitAllocator,
    IdealPackingReallocator,
    LoggingCompactingReallocator,
    NextFitAllocator,
    SizeClassGapReallocator,
    WorstFitAllocator,
)
from repro.analysis import (
    memory_allocation_lower_bound,
    predicted_checkpoints_per_flush,
    predicted_cost_ratio,
    predicted_footprint_ratio,
    predicted_worst_case_moved_volume,
)
from repro.core import (
    CheckpointedReallocator,
    CostObliviousReallocator,
    DeamortizedReallocator,
    Defragmenter,
    render_layout,
)
from repro.costs import (
    STANDARD_COST_SUITE,
    ConstantCost,
    LinearCost,
    RotatingDiskCost,
    SolidStateCost,
)
from repro.engine import Observer
from repro.harness.results import ExperimentResult
from repro.metrics import run_trace
from repro.metrics.report import render_series
from repro.workloads import (
    BimodalSizes,
    DatabaseBlockSizes,
    UniformSizes,
    ZipfSizes,
    churn_trace,
    fragmentation_attack_trace,
    large_then_small_trace,
    lower_bound_trace,
    repeated_large_delete_trace,
    sawtooth_trace,
    small_flood_trace,
)

#: Epsilons swept by the footprint / checkpoint experiments.
EPSILON_SWEEP = (0.5, 0.25, 0.125, 0.0625)


# ------------------------------------------------------ experiment observers
class _ReservedSpaceObserver(Observer):
    """E1: track max reserved-space and quiescent-footprint ratios."""

    def __init__(self) -> None:
        self.reserved_ratio = 0.0
        self.footprint_ratio = 0.0
        self._allocator = None

    def on_attach(self, allocator) -> None:
        self._allocator = allocator

    def on_request(self, record) -> None:
        if record.volume_after <= 0:
            return
        self.reserved_ratio = max(
            self.reserved_ratio, self._allocator.bounded_space() / record.volume_after
        )
        # The footprint guarantee applies between flushes; the deamortized
        # variant may legitimately hold an extra O(Delta) of working space
        # while a flush is in progress (Lemma 3.5), so sample its footprint
        # when quiescent.
        if not getattr(self._allocator, "flush_in_progress", False):
            self.footprint_ratio = max(
                self.footprint_ratio, record.footprint_after / record.volume_after
            )


class _WorstRequestObserver(Observer):
    """E3: the largest number of objects moved by any single request."""

    def __init__(self) -> None:
        self.worst_moves = 0

    def on_request(self, record) -> None:
        if record.move_count > self.worst_moves:
            self.worst_moves = record.move_count


class _WorstCaseBoundObserver(Observer):
    """E7: per-request moved volume against the Lemma 3.6 bound."""

    def __init__(self, epsilon: float) -> None:
        self.epsilon = epsilon
        self.worst_moved = 0
        self.worst_bound = 0.0
        self.violations = 0
        self._allocator = None

    def on_attach(self, allocator) -> None:
        self._allocator = allocator

    def on_request(self, record) -> None:
        allocator = self._allocator
        deamortized = isinstance(allocator, DeamortizedReallocator)
        if deamortized:
            bound = allocator.work_factor * record.size + max(allocator.delta, 1)
        else:
            bound = predicted_worst_case_moved_volume(
                self.epsilon,
                record.size,
                max(allocator.delta, 1),
                constant=4.0 / (self.epsilon / 3),
            )
        moved = record.moved_volume
        if moved > self.worst_moved:
            self.worst_moved = moved
            self.worst_bound = bound
        if deamortized and moved > bound:
            self.violations += 1


class _WorstRequestCostObserver(Observer):
    """E8: the most expensive single request under each cost function."""

    def __init__(self, costs) -> None:
        self.costs = tuple(costs)
        self.worst_cost = {f.name: 0.0 for f in self.costs}
        self.worst_moved = 0
        self.worst_moves = 0

    def on_request(self, record) -> None:
        moved_sizes = [m.size for m in record.moves if m.is_reallocation]
        self.worst_moved = max(self.worst_moved, sum(moved_sizes))
        self.worst_moves = max(self.worst_moves, len(moved_sizes))
        for f in self.costs:
            self.worst_cost[f.name] = max(
                self.worst_cost[f.name], sum(f(s) for s in moved_sizes)
            )

#: The three reallocator variants the paper develops, in presentation order.
PAPER_VARIANTS = (
    ("amortized (Sec. 2)", CostObliviousReallocator),
    ("checkpointed (Sec. 3.2)", CheckpointedReallocator),
    ("deamortized (Sec. 3.3)", DeamortizedReallocator),
)


def _trace_sizes(quick: bool) -> Dict[str, int]:
    return {
        "churn": 2500 if quick else 20000,
        "live": 150 if quick else 600,
        "defrag": 150 if quick else 800,
        "scaling": (500, 1500, 3000) if quick else (2000, 8000, 32000),
    }


# --------------------------------------------------------------------------- E1
def run_e1_footprint(quick: bool = True) -> ExperimentResult:
    """Theorem 2.1, footprint half: measured ratio vs the (1 + eps) bound."""
    sizes = _trace_sizes(quick)
    result = ExperimentResult(
        experiment_id="E1",
        title="Footprint competitiveness vs epsilon (Theorem 2.1)",
        headers=[
            "variant",
            "epsilon",
            "bound (1+eps)",
            "max footprint/V",
            "max reserved/V",
            "moves per insert",
        ],
    )
    measured: Dict[str, Dict[float, float]] = {}
    for label, cls in PAPER_VARIANTS:
        measured[label] = {}
        for epsilon in EPSILON_SWEEP:
            trace = churn_trace(
                sizes["churn"], UniformSizes(1, 64), target_live=sizes["live"], seed=11
            )
            allocator = cls(epsilon=epsilon)
            watcher = _ReservedSpaceObserver()
            run_trace(allocator, trace, observers=[watcher])
            stats = allocator.stats
            measured[label][epsilon] = watcher.reserved_ratio
            result.rows.append(
                [
                    label,
                    epsilon,
                    round(predicted_footprint_ratio(epsilon), 4),
                    round(watcher.footprint_ratio, 4),
                    round(watcher.reserved_ratio, 4),
                    round(stats.amortized_moves_per_insert, 2),
                ]
            )
    result.data["measured"] = measured
    result.notes.append(
        "Every measured reserved-space ratio must stay below its 1+eps bound; "
        "smaller eps buys a tighter footprint at the price of more moves per insert."
    )
    return result


# --------------------------------------------------------------------------- E2
def run_e2_cost_obliviousness(quick: bool = True) -> ExperimentResult:
    """Theorem 2.1, cost half: one execution charged under many cost functions."""
    sizes = _trace_sizes(quick)
    epsilon = 0.25
    trace = churn_trace(
        sizes["churn"], BimodalSizes(4, 256, 0.06), target_live=sizes["live"], seed=23
    )
    result = ExperimentResult(
        experiment_id="E2",
        title="Cost obliviousness: reallocation/allocation cost ratio per cost function",
        headers=["variant"] + [f.name for f in STANDARD_COST_SUITE],
    )
    bound = predicted_cost_ratio(epsilon)
    ratios_by_variant: Dict[str, Dict[str, float]] = {}
    for label, cls in PAPER_VARIANTS:
        allocator = cls(epsilon=epsilon)
        metrics = run_trace(allocator, trace, cost_functions=STANDARD_COST_SUITE)
        ratios_by_variant[label] = metrics.cost_ratios
        result.rows.append(
            [label] + [round(metrics.cost_ratios[f.name], 2) for f in STANDARD_COST_SUITE]
        )
    result.data["ratios"] = ratios_by_variant
    result.data["epsilon"] = epsilon
    result.notes.append(
        f"The same execution is charged after the fact under every cost function; "
        f"all ratios stay within a constant factor of the (1/eps)log(1/eps) = "
        f"{bound:.1f} shape, without the algorithm knowing which f applies."
    )
    return result


# --------------------------------------------------------------------------- E3
def run_e3_baselines(quick: bool = True) -> ExperimentResult:
    """Section 1/2 comparison: non-moving and cost-specific baselines.

    Three workloads, each designed to expose one family's weakness:

    * ``churn`` (bimodal sizes) — steady-state traffic; non-moving allocators
      fragment, and the per-request move burst of logging-and-compacting
      shows up in the "worst single request" column.
    * ``fragmentation`` — adversarial deletions; non-moving footprints are
      stuck at the peak.
    * ``small-flood`` — the counterexample against the size-class-gap scheme
      under linear (bandwidth-dominated) costs: its ratio grows with
      ``log Delta`` while the cost-oblivious reallocator's does not.
    """
    sizes = _trace_sizes(quick)
    churn = churn_trace(
        sizes["churn"], BimodalSizes(4, 256, 0.05), target_live=sizes["live"], seed=31
    )
    bandwidth_adversary = small_flood_trace(max_exponent=8 if quick else 11)
    fragmentation = fragmentation_attack_trace(
        pairs=60 if quick else 300, small_size=2, large_size=64
    )
    costs = (LinearCost(), ConstantCost(), RotatingDiskCost())
    contenders = [
        FirstFitAllocator,
        BestFitAllocator,
        NextFitAllocator,
        WorstFitAllocator,
        BuddyAllocator,
        AppendOnlyAllocator,
        LoggingCompactingReallocator,
        SizeClassGapReallocator,
        lambda: CostObliviousReallocator(epsilon=0.25),
        IdealPackingReallocator,
    ]
    result = ExperimentResult(
        experiment_id="E3",
        title="Baseline comparison: every baseline breaks somewhere",
        headers=[
            "allocator",
            "churn max footprint/V",
            "fragmentation max footprint/V",
            "churn linear-cost ratio",
            "churn constant-cost ratio",
            "flood linear-cost ratio (log-Delta test)",
            "worst single request: objects moved",
        ],
    )
    summary: Dict[str, Dict[str, float]] = {}
    for factory in contenders:
        churn_alloc = factory()
        worst_watcher = _WorstRequestObserver()
        run_trace(churn_alloc, churn, observers=[worst_watcher])
        worst_moves = worst_watcher.worst_moves
        churn_stats = churn_alloc.stats
        frag_alloc = factory()
        frag_metrics = run_trace(frag_alloc, fragmentation, cost_functions=costs)
        bw_alloc = factory()
        bw_metrics = run_trace(bw_alloc, bandwidth_adversary, cost_functions=costs)
        summary[churn_alloc.describe()] = {
            "churn_footprint": churn_stats.max_footprint_ratio,
            "fragmentation_footprint": frag_metrics.max_footprint_ratio,
            "churn_linear_ratio": churn_stats.cost_ratio(LinearCost()),
            "churn_constant_ratio": churn_stats.cost_ratio(ConstantCost()),
            "flood_linear_ratio": bw_metrics.cost_ratios["linear"],
            "worst_single_request_moves": worst_moves,
        }
        result.rows.append(
            [
                churn_alloc.describe(),
                round(churn_stats.max_footprint_ratio, 3),
                round(frag_metrics.max_footprint_ratio, 3),
                round(churn_stats.cost_ratio(LinearCost()), 2),
                round(churn_stats.cost_ratio(ConstantCost()), 2),
                round(bw_metrics.cost_ratios["linear"], 2),
                worst_moves,
            ]
        )
    result.data["summary"] = summary
    result.data["non_moving_lower_bound"] = memory_allocation_lower_bound(
        len(churn), 256
    )
    result.notes.append(
        "Non-moving allocators pay with footprint (stuck at the peak after "
        "adversarial deletions, 2-4x fragmented even under friendly churn); "
        "logging-compaction keeps a 2x footprint but must periodically move "
        "every live object in one request (worst-single-request column) — the "
        "behaviour the paper's Section 2 calls out for seek-dominated costs; "
        "the size-class-gap scheme moves little per request but its linear-cost "
        "ratio grows with log Delta on the small-flood adversary; the "
        "cost-oblivious reallocator keeps the footprint and every cost ratio "
        "bounded simultaneously (and its Section 3.3 variant, measured in E7, "
        "additionally bounds the per-request burst)."
    )
    return result


# --------------------------------------------------------------------------- E4
def run_e4_defragmentation(quick: bool = True) -> ExperimentResult:
    """Theorem 2.7: sort a fragmented layout within (1+eps)V + Delta space."""
    sizes = _trace_sizes(quick)
    import random as _random

    result = ExperimentResult(
        experiment_id="E4",
        title="Cost-oblivious defragmentation / sorting (Theorem 2.7)",
        headers=[
            "objects",
            "epsilon",
            "volume V",
            "Delta",
            "space bound (1+eps)V+Delta",
            "peak space",
            "moves per object",
            "linear cost ratio",
            "constant cost ratio",
        ],
    )
    for epsilon in (0.5, 0.25):
        for count in (sizes["defrag"] // 2, sizes["defrag"]):
            rng = _random.Random(count * 31 + int(epsilon * 100))
            objects = [(f"obj-{i}", rng.randint(1, 64)) for i in range(count)]
            volume = sum(size for _, size in objects)
            delta = max(size for _, size in objects)
            # Build a fragmented initial layout inside (1+eps)V: shuffle the
            # objects and leave the eps*V slack spread as holes between them.
            order = list(range(count))
            rng.shuffle(order)
            slack = int(epsilon * volume)
            allocation = {}
            cursor = 0
            for position, index in enumerate(order):
                name, size = objects[index]
                allocation[name] = cursor
                cursor += size
                if slack > 0 and position % 3 == 0:
                    hole = min(slack, rng.randint(0, max(1, delta // 4)))
                    cursor += hole
                    slack -= hole
            defrag = Defragmenter(epsilon=epsilon, key=lambda name: int(name.split("-")[1]))
            outcome = defrag.defragment(objects, allocation)
            bound = (1 + epsilon) * volume + delta
            result.rows.append(
                [
                    count,
                    epsilon,
                    volume,
                    delta,
                    int(bound),
                    outcome.peak_footprint,
                    round(outcome.moves_per_object, 2),
                    round(outcome.cost_ratio(LinearCost()), 2),
                    round(outcome.cost_ratio(ConstantCost()), 2),
                ]
            )
            result.data.setdefault("outcomes", []).append(
                {
                    "count": count,
                    "epsilon": epsilon,
                    "peak": outcome.peak_footprint,
                    "bound": bound,
                    "sorted": outcome.layout,
                    "min_gap": outcome.min_prefix_suffix_gap,
                }
            )
    result.notes.append(
        "Peak space stays at or below the (1+eps)V + Delta bound while the "
        "objects end up sorted by key; the move cost per object is a small "
        "constant under every cost function."
    )
    return result


# --------------------------------------------------------------------------- E5
def run_e5_checkpoints(quick: bool = True) -> ExperimentResult:
    """Lemma 3.3: a flush completes within O(1/eps) checkpoints."""
    sizes = _trace_sizes(quick)
    result = ExperimentResult(
        experiment_id="E5",
        title="Checkpoints per flush vs epsilon (Lemma 3.3)",
        headers=[
            "epsilon",
            "flushes",
            "mean checkpoints/flush",
            "max checkpoints/request",
            "predicted O(1/eps) shape",
            "blocked checkpoints",
        ],
    )
    for epsilon in EPSILON_SWEEP:
        trace = churn_trace(
            sizes["churn"], UniformSizes(1, 64), target_live=sizes["live"], seed=47
        )
        allocator = CheckpointedReallocator(epsilon=epsilon)
        metrics = run_trace(allocator, trace)
        flushes = max(1, metrics.flushes)
        result.rows.append(
            [
                epsilon,
                metrics.flushes,
                round(metrics.total_checkpoints / flushes, 2),
                metrics.max_request_checkpoints,
                round(predicted_checkpoints_per_flush(epsilon, constant=4.0), 1),
                allocator.blocked_checkpoints,
            ]
        )
    result.notes.append(
        "Checkpoint counts grow roughly like 1/eps as eps shrinks and stay far "
        "below the number of objects involved in a flush."
    )
    return result


# --------------------------------------------------------------------------- E6
def run_e6_transient_footprint(quick: bool = True) -> ExperimentResult:
    """Lemmas 3.1 and 3.5: footprint during a flush stays (1+O(eps))V + 2*Delta."""
    sizes = _trace_sizes(quick)
    epsilon = 0.25
    trace = churn_trace(
        sizes["churn"], BimodalSizes(4, 512, 0.04), target_live=sizes["live"], seed=59
    )
    result = ExperimentResult(
        experiment_id="E6",
        title="Transient footprint during flushes (Lemmas 3.1 / 3.5)",
        headers=[
            "variant",
            "max transient footprint",
            "peak volume",
            "Delta",
            "bound (1+3*eps)Vpeak + 2*Delta",
            "within bound",
        ],
    )
    peak_volume = trace.peak_volume()
    delta = trace.delta
    for label, cls in PAPER_VARIANTS[1:]:
        allocator = cls(epsilon=epsilon)
        metrics = run_trace(allocator, trace)
        # The working space additionally holds the flushed buffers (an eps
        # fraction of the volume) and, for the deamortized variant, the tail
        # buffer and the log — all O(eps V) terms — plus the 2*Delta noted in
        # DESIGN.md (we do not subtract the trigger size from L / L').
        bound = (1 + 3 * epsilon) * peak_volume + 2 * delta
        result.rows.append(
            [
                label,
                allocator.stats.max_transient_footprint,
                peak_volume,
                delta,
                int(bound),
                allocator.stats.max_transient_footprint <= bound,
            ]
        )
    result.notes.append(
        "Even in the middle of a flush the structure never outgrows "
        "(1+O(eps))V plus an additive O(Delta) of working space."
    )
    return result


# --------------------------------------------------------------------------- E7
def run_e7_worst_case(quick: bool = True) -> ExperimentResult:
    """Lemma 3.6: per-update reallocated volume is O((1/eps) w + Delta)."""
    sizes = _trace_sizes(quick)
    epsilon = 0.25
    trace = churn_trace(
        sizes["churn"], BimodalSizes(8, 512, 0.05), target_live=sizes["live"], seed=61
    )
    result = ExperimentResult(
        experiment_id="E7",
        title="Worst-case per-update reallocation (Lemma 3.6)",
        headers=[
            "variant",
            "max volume moved by one request",
            "worst-case bound for that request",
            "bound respected",
            "amortized moved volume per request",
        ],
    )
    for label, cls in (
        ("amortized (Sec. 2)", CostObliviousReallocator),
        ("deamortized (Sec. 3.3)", DeamortizedReallocator),
    ):
        allocator = cls(epsilon=epsilon)
        watcher = _WorstCaseBoundObserver(epsilon)
        run_trace(allocator, trace, observers=[watcher])
        result.rows.append(
            [
                label,
                watcher.worst_moved,
                int(watcher.worst_bound),
                watcher.violations == 0
                if isinstance(allocator, DeamortizedReallocator)
                else "n/a (amortized)",
                round(allocator.stats.amortized_moved_volume_per_request, 1),
            ]
        )
        result.data[label] = {"worst": watcher.worst_moved, "violations": watcher.violations}
    result.notes.append(
        "The amortized variant occasionally rebuilds everything in one request; "
        "the deamortized variant never exceeds (4/eps')w + Delta moved volume on "
        "any single update while keeping the same amortized cost."
    )
    return result


# --------------------------------------------------------------------------- E8
def run_e8_lower_bound(quick: bool = True) -> ExperimentResult:
    """Lemma 3.7: some update must cost Omega(f(Delta))."""
    deltas = (64, 256) if quick else (64, 256, 1024, 4096)
    costs = (ConstantCost(), LinearCost(), SolidStateCost())
    result = ExperimentResult(
        experiment_id="E8",
        title="Worst-case lower bound instance (Lemma 3.7)",
        headers=[
            "Delta",
            "allocator",
            "max single-request moved volume",
            "max single-request moves",
            "f=const: worst request cost",
            "f=linear: worst request cost",
            "lower bound f(Delta) (const / linear)",
        ],
    )
    for delta in deltas:
        trace = lower_bound_trace(delta)
        for factory, label in (
            (lambda: CostObliviousReallocator(epsilon=0.5), "cost-oblivious(0.5)"),
            (lambda: IdealPackingReallocator(), "ideal-packing"),
        ):
            allocator = factory()
            watcher = _WorstRequestCostObserver(costs)
            run_trace(allocator, trace, observers=[watcher], finish_pending=False)
            # Lemma 3.7's conclusion is Omega(f(Delta)): either the big object
            # moves (cost f(Delta)) or Omega(Delta) unit objects move (cost
            # Omega(Delta f(1)), which is Omega(f(Delta)) by subadditivity).
            lower = {f.name: f(delta) for f in costs}
            result.rows.append(
                [
                    delta,
                    label,
                    watcher.worst_moved,
                    watcher.worst_moves,
                    round(watcher.worst_cost["constant"], 1),
                    round(watcher.worst_cost["linear"], 1),
                    f"{lower['constant']:.0f} / {lower['linear']:.0f}",
                ]
            )
            result.data[(delta, label)] = watcher.worst_cost
    result.notes.append(
        "On the insert-Delta / insert Delta ones / delete-Delta sequence, every "
        "algorithm that keeps a 1.5V footprint pays Omega(f(Delta)) on some "
        "request — the measured worst requests match the lower bound's shape."
    )
    return result


# --------------------------------------------------------------------------- E9
def run_e9_scaling(quick: bool = True) -> ExperimentResult:
    """Engineering: throughput and moved volume as the trace grows."""
    sizes = _trace_sizes(quick)
    result = ExperimentResult(
        experiment_id="E9",
        title="Throughput and total moved volume vs trace length",
        headers=[
            "requests",
            "allocator",
            "requests/second",
            "total moves",
            "moved volume / inserted volume",
            "max footprint/V",
        ],
    )
    for length in sizes["scaling"]:
        trace = churn_trace(length, UniformSizes(1, 64), target_live=sizes["live"], seed=71)
        inserted = trace.total_inserted_volume
        for factory in (
            # Audited (the default): the indexed overlap check is O(log n)
            # per placement, so even the throughput table runs validated.
            lambda: CostObliviousReallocator(epsilon=0.25),
            FirstFitAllocator,
            LoggingCompactingReallocator,
        ):
            allocator = factory()
            metrics = run_trace(allocator, trace)
            result.rows.append(
                [
                    length,
                    allocator.describe(),
                    int(metrics.requests_per_second),
                    metrics.total_moves,
                    round(metrics.total_moved_volume / max(inserted, 1), 2),
                    round(metrics.max_footprint_ratio, 3),
                ]
            )
    result.notes.append(
        "Moved volume stays a constant multiple of inserted volume as traces "
        "grow (amortization at work); absolute throughput is simulator-bound."
    )
    return result


# ------------------------------------------------------------------- figures
def run_f1_motivation(quick: bool = True) -> ExperimentResult:
    """Figure 1: moving blocks into holes shrinks the footprint."""
    result = ExperimentResult(
        experiment_id="F1",
        title="Figure 1: reallocation closes holes left by deletions",
        headers=["allocator", "footprint after deletions", "live volume", "footprint/V"],
    )
    trace = fragmentation_attack_trace(pairs=40, small_size=2, large_size=32)
    for factory in (FirstFitAllocator, lambda: CostObliviousReallocator(epsilon=0.25)):
        allocator = factory()
        metrics = run_trace(allocator, trace)
        result.rows.append(
            [
                allocator.describe(),
                metrics.final_footprint,
                metrics.final_volume,
                round(metrics.final_footprint / max(metrics.final_volume, 1), 2),
            ]
        )
    result.notes.append(
        "The non-moving allocator is stuck with the peak footprint; the "
        "reallocator compacts the survivors (the paper's Figure 1, measured)."
    )
    return result


def run_f2_layout(quick: bool = True) -> ExperimentResult:
    """Figure 2: the size-class region layout rendered from live state."""
    trace = churn_trace(600, ZipfSizes(1.4, 128), target_live=120, seed=5)
    allocator = CostObliviousReallocator(epsilon=0.5, trace=True)
    run_trace(allocator, trace)
    picture = render_layout(allocator)
    result = ExperimentResult(
        experiment_id="F2",
        title="Figure 2: payload and buffer segments per size class",
        headers=["size class", "payload used/capacity", "buffer used/capacity"],
    )
    for index in allocator.region_indices():
        region = allocator.region(index)
        payload_volume = sum(allocator.size_of(n) for n in region.payload)
        result.rows.append(
            [
                index,
                f"{payload_volume}/{region.payload_capacity}",
                f"{region.buffer_used}/{region.buffer_capacity}",
            ]
        )
    result.notes.append(picture)
    return result


def run_f3_flush_walkthrough(quick: bool = True) -> ExperimentResult:
    """Figure 3: the moves performed by a single buffer flush, step by step."""
    allocator = CostObliviousReallocator(epsilon=0.5, trace=True)
    # A small deterministic scenario mirroring the figure: a few objects per
    # class, some deletions, then an insert that triggers a flush.
    sizes = [6, 6, 3, 3, 12, 12, 2, 2]
    for index, size in enumerate(sizes):
        allocator.insert(f"o{index}", size)
    allocator.delete("o1")
    allocator.delete("o6")
    flush_record = None
    step = len(sizes)
    while flush_record is None:
        record = allocator.insert(f"fill{step}", 3)
        step += 1
        if record.flush is not None:
            flush_record = record
    result = ExperimentResult(
        experiment_id="F3",
        title="Figure 3: anatomy of one buffer flush",
        headers=["step", "object", "size", "from", "to", "reason"],
    )
    for move_index, move in enumerate(flush_record.moves):
        result.rows.append(
            [
                move_index,
                move.name,
                move.size,
                str(move.source) if move.source else "(new)",
                str(move.destination),
                move.reason,
            ]
        )
    result.notes.append(render_layout(allocator))
    result.notes.append(
        f"The flush covered size classes {flush_record.flush.classes_flushed} "
        f"with boundary class {flush_record.flush.boundary_class}; buffers are "
        "empty again afterwards (Invariant 2.4)."
    )
    return result


def run_footprint_series(quick: bool = True) -> ExperimentResult:
    """Supplementary figure: footprint vs volume over time for three allocators."""
    sizes = _trace_sizes(quick)
    trace = sawtooth_trace(peak_objects=sizes["live"], rounds=3, size=16)
    result = ExperimentResult(
        experiment_id="F4",
        title="Footprint tracking a sawtooth volume profile",
        headers=["allocator", "max footprint/V", "final footprint"],
    )
    for factory in (
        FirstFitAllocator,
        lambda: CostObliviousReallocator(epsilon=0.25),
        IdealPackingReallocator,
    ):
        allocator = factory()
        metrics = run_trace(allocator, trace, sample_every=max(1, len(trace) // 120))
        result.rows.append(
            [
                allocator.describe(),
                round(metrics.max_footprint_ratio, 3),
                metrics.final_footprint,
            ]
        )
        result.notes.append(
            render_series(
                metrics.footprint_series,
                label=f"footprint over time — {allocator.describe()}",
            )
        )
    return result
