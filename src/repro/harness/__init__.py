"""Experiment harness: one registered experiment per paper artefact.

``repro.harness.EXPERIMENTS`` maps experiment ids (``"E1"`` ... ``"E9"``,
``"F2"``, ``"F3"``) to runnable experiments; each returns an
:class:`~repro.harness.results.ExperimentResult` whose table is printed by
the corresponding benchmark in ``benchmarks/`` and by the CLI.
"""

from repro.harness.results import ExperimentResult
from repro.harness.experiments import EXPERIMENTS, Experiment, get_experiment, run_experiment

__all__ = [
    "ExperimentResult",
    "Experiment",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
]
