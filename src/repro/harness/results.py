"""Result container shared by all experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.metrics.report import ascii_table


@dataclass
class ExperimentResult:
    """A rendered experiment: a table plus free-form notes.

    ``rows`` are kept as raw values (not strings) so tests can make numeric
    assertions against exactly what the benchmark prints.
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: Machine-readable extras (per-experiment; used by tests).
    data: Dict[str, object] = field(default_factory=dict)

    def to_text(self) -> str:
        """The table and notes as printed by the benchmarks and the CLI."""
        parts = [ascii_table(self.headers, self.rows, title=f"{self.experiment_id}: {self.title}")]
        for note in self.notes:
            parts.append(note)
        return "\n".join(parts)

    def column(self, header: str) -> List[object]:
        """All values of one column, for assertions in tests."""
        index = list(self.headers).index(header)
        return [row[index] for row in self.rows]
