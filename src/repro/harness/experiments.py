"""Experiment registry mapping ids to runnable experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.harness import runners
from repro.harness.results import ExperimentResult


@dataclass(frozen=True)
class Experiment:
    """One registered experiment: an id, what it reproduces, and a runner."""

    experiment_id: str
    title: str
    paper_reference: str
    run: Callable[[bool], ExperimentResult]

    def __call__(self, quick: bool = True) -> ExperimentResult:
        return self.run(quick)


EXPERIMENTS: Dict[str, Experiment] = {
    experiment.experiment_id: experiment
    for experiment in (
        Experiment("E1", "Footprint competitiveness vs epsilon", "Theorem 2.1 / Lemma 2.5", runners.run_e1_footprint),
        Experiment("E2", "Cost obliviousness across cost functions", "Theorem 2.1 / Lemma 2.6", runners.run_e2_cost_obliviousness),
        Experiment("E3", "Baseline allocator comparison", "Section 1 and Section 2 intuition", runners.run_e3_baselines),
        Experiment("E4", "Cost-oblivious defragmentation", "Theorem 2.7", runners.run_e4_defragmentation),
        Experiment("E5", "Checkpoints per flush", "Lemma 3.3", runners.run_e5_checkpoints),
        Experiment("E6", "Transient footprint during flushes", "Lemmas 3.1 and 3.5", runners.run_e6_transient_footprint),
        Experiment("E7", "Worst-case per-update reallocation", "Lemma 3.6", runners.run_e7_worst_case),
        Experiment("E8", "Lower-bound instance", "Lemma 3.7", runners.run_e8_lower_bound),
        Experiment("E9", "Throughput and scaling", "engineering", runners.run_e9_scaling),
        Experiment("F1", "Reallocation closes holes", "Figure 1", runners.run_f1_motivation),
        Experiment("F2", "Size-class layout", "Figure 2", runners.run_f2_layout),
        Experiment("F3", "Buffer-flush walkthrough", "Figure 3", runners.run_f3_flush_walkthrough),
        Experiment("F4", "Footprint over time", "supplementary figure", runners.run_footprint_series),
    )
}


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by id (case-insensitive)."""
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
    return EXPERIMENTS[key]


def run_experiment(experiment_id: str, quick: bool = True) -> ExperimentResult:
    """Run one experiment and return its result."""
    return get_experiment(experiment_id)(quick)
