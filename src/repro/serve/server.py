"""The live allocation service: one asyncio server, one session per tenant.

Architecture
------------

Each client connection speaks the varint-framed JSON protocol of
:mod:`repro.serve.protocol`.  After the hello exchange a connection is
bound to a *tenant*: in the default per-tenant-arena mode every tenant
gets its own allocator wrapped in an
:class:`~repro.engine.session.EngineSession`; in ``--shared`` mode all
connections feed one arena and object names are namespaced per tenant.

Every tenant owns a bounded :class:`asyncio.Queue` and a worker task.
Connection handlers decode frames and ``await queue.put(...)`` — a full
queue suspends the reader, which stops draining the socket, which is the
backpressure (the kernel's TCP window does the rest).  The worker pulls
items in order, *coalesces* consecutive batches up to ``max_batch``
requests, and applies each coalesced batch through
``loop.run_in_executor`` so the event loop keeps serving other tenants
while the allocator (pure Python, GIL-bound but executor-offloaded) runs.

Durability contract: a batch is acked only after its applied prefix has
been recorded to the tenant's block-indexed v3 trace *and* the writer was
``sync()``-ed, so every acked request is recoverable from the trace tail.
On a crash, restore = :func:`restore_session` — unpickle the last
``SNAPSHOT`` and replay the recorded tail beyond its ``requests_applied``
watermark.  Unacked requests may be lost; that is the contract (the
client retries what it never got an ack for).

Control verbs (``STATS`` / ``SNAPSHOT`` / ``DRAIN``) ride the same queue
as batches, so their responses are barriers: a DRAIN ack proves every
batch enqueued before it was applied and recorded.
"""

from __future__ import annotations

import asyncio
import os
import sys
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.session import EngineSession
from repro.faults import fault_point
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_requests,
    encode_frame,
    read_frame,
)
from repro.workloads import open_trace_writer, read_trace_tail

#: Default cap on one coalesced batch fed to the allocator in one executor hop.
DEFAULT_MAX_BATCH = 4096
#: Default per-tenant queue depth (items, not requests) before backpressure.
DEFAULT_QUEUE_DEPTH = 32
#: Tenant name used by the single shared arena.
SHARED_TENANT = "shared"


class ServeError(RuntimeError):
    """A server-side configuration or lifecycle problem."""


@dataclass
class ServeConfig:
    """Everything ``repro serve`` configures, as one value object."""

    allocator: Any = "first_fit"
    host: str = "127.0.0.1"
    port: int = 0
    shared_arena: bool = False
    max_batch: int = DEFAULT_MAX_BATCH
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    trace_dir: str = "."
    snapshot_dir: Optional[str] = None
    label: str = "serve"
    quiet: bool = True


class _Conn:
    """One client connection's write half, with serialized frame writes."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.lock = asyncio.Lock()

    async def send(self, message: Dict[str, Any]) -> None:
        try:
            async with self.lock:
                self.writer.write(encode_frame(message))
                await self.writer.drain()
        except (ConnectionError, RuntimeError):
            # The client went away mid-response; its session (and trace)
            # are finalized by the connection handler, not here.
            pass


@dataclass
class _Batch:
    requests: List[Any]
    seq: Any
    conn: _Conn


@dataclass
class _Control:
    op: str
    message: Dict[str, Any]
    conn: _Conn


@dataclass
class _Finalize:
    future: "asyncio.Future[Dict[str, Any]]"


class TenantSession:
    """One tenant's engine session, trace recorder, queue, and worker."""

    def __init__(self, name: str, config: ServeConfig, loop, stem: Optional[str] = None) -> None:
        from repro.campaign.spec import build_allocator

        self.name = name
        self.config = config
        self.loop = loop
        #: Artifact filename stem: a tenant reconnecting after its previous
        #: session finalized gets a numbered stem, so finished session traces
        #: are never overwritten.
        self.stem = stem or name
        self.trace_path = os.path.join(
            config.trace_dir, f"{config.label}-{self.stem}.v3"
        )
        allocator = build_allocator(config.allocator)
        self.session = EngineSession(allocator, label=name).open()
        # The session records its own trace directly (not via a
        # TraceRecorderObserver): an active observer would disable the
        # allocator's zero-observer fast path and cost the serve path the
        # throughput the saturation bench guards.
        self.writer = open_trace_writer(
            self.trace_path,
            version=3,
            label=name,
            metadata={"serve": True, "tenant": name},
        )
        self.queue: "asyncio.Queue[Any]" = asyncio.Queue(maxsize=config.queue_depth)
        self.worker = loop.create_task(self._run(), name=f"tenant-{name}")
        self.result: Optional[Dict[str, Any]] = None
        #: Live connections bound to this session (a tenant may reconnect,
        #: or hold several connections); finalize only when the last drops.
        self.connections = 0

    # ------------------------------------------------------------- the worker
    async def _run(self) -> None:
        while True:
            item = await self.queue.get()
            try:
                if isinstance(item, _Finalize):
                    await self._finalize(item)
                    return
                if isinstance(item, _Control):
                    await self._control(item)
                    continue
                # Coalesce consecutive batches (bounded by max_batch) into
                # one executor hop; a control item ends the run and is
                # handled right after, preserving per-connection order.
                group = [item]
                total = len(item.requests)
                trailing: Optional[Any] = None
                while total < self.config.max_batch:
                    try:
                        nxt = self.queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if isinstance(nxt, _Batch):
                        group.append(nxt)
                        total += len(nxt.requests)
                    else:
                        trailing = nxt
                        break
                await self._apply_group(group)
                if isinstance(trailing, _Finalize):
                    await self._finalize(trailing)
                    return
                if isinstance(trailing, _Control):
                    await self._control(trailing)
            except Exception as error:  # pragma: no cover - defensive
                print(
                    f"repro serve: tenant {self.name}: worker error: {error}",
                    file=sys.stderr,
                )

    def _apply_and_record(self, requests: List[Any]) -> Tuple[int, Optional[str]]:
        """Apply ``requests`` and durably record the applied prefix.

        Runs on an executor thread.  A mid-batch allocator failure rolls
        back only the failing request (``Allocator._serve_insert``), so
        the applied count is the stats delta and ``requests[:applied]``
        is exactly the prefix that took effect — which is what gets
        recorded, keeping the trace replayable to the live state.
        """
        fault_point("serve.batch.apply")
        error: Optional[str] = None
        before = self.session.requests_applied
        try:
            self.session.apply(requests)
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
        applied = self.session.requests_applied - before
        if applied:
            fault_point("serve.record.sync")
            for request in requests[:applied]:
                self.writer.write(request)
            self.writer.sync()
        return applied, error

    async def _apply_group(self, group: List[_Batch]) -> None:
        requests: List[Any] = []
        for batch in group:
            requests.extend(batch.requests)
        applied, error = await self.loop.run_in_executor(
            None, self._apply_and_record, requests
        )
        offset = 0
        for batch in group:
            want = len(batch.requests)
            got = max(0, min(applied - offset, want))
            offset += want
            response: Dict[str, Any] = {
                "ok": error is None or got == want,
                "seq": batch.seq,
                "applied": got,
            }
            if not response["ok"]:
                response["error"] = error
            await batch.conn.send(response)

    def _snapshot_sync(self, path: str) -> Dict[str, Any]:
        fault_point("serve.snapshot")
        # Sync first so the recorded trace always reaches (at least) the
        # snapshot point: restore never needs requests the trace lacks.
        self.writer.sync()
        return self.session.snapshot(path)

    async def _control(self, item: _Control) -> None:
        message, conn = item.message, item.conn
        seq = message.get("seq")
        if item.op == "stats":
            stats = self.session.stats()
            stats["recorded"] = self.writer.count
            stats["trace"] = self.trace_path
            await conn.send({"ok": True, "seq": seq, "stats": stats})
        elif item.op == "snapshot":
            path = message.get("path") or self.snapshot_path()
            try:
                described = await self.loop.run_in_executor(
                    None, self._snapshot_sync, path
                )
            except Exception as error:
                await conn.send(
                    {"ok": False, "seq": seq, "error": f"{type(error).__name__}: {error}"}
                )
                return
            await conn.send({"ok": True, "seq": seq, "snapshot": described})
        elif item.op == "drain":
            await self.loop.run_in_executor(None, self.writer.sync)
            await conn.send(
                {
                    "ok": True,
                    "seq": seq,
                    "applied": self.session.requests_applied,
                    "recorded": self.writer.count,
                }
            )
        else:  # pragma: no cover - handler validates ops before enqueueing
            await conn.send({"ok": False, "seq": seq, "error": f"unknown op {item.op!r}"})

    def _close_sync(self) -> Dict[str, Any]:
        run = self.session.close()
        self.writer.close()
        return {
            "tenant": self.name,
            "requests": run.requests,
            "trace": self.trace_path,
            "stats": {
                "volume": run.allocator.volume,
                "footprint": run.allocator.footprint,
                "num_objects": run.allocator.num_objects,
                "moves": run.allocator.stats.total_moves,
            },
        }

    async def _finalize(self, item: _Finalize) -> None:
        try:
            self.result = await self.loop.run_in_executor(None, self._close_sync)
            item.future.set_result(self.result)
        except Exception as error:
            if not item.future.done():
                item.future.set_exception(error)

    # -------------------------------------------------------------- interface
    def snapshot_path(self) -> str:
        directory = self.config.snapshot_dir or self.config.trace_dir
        return os.path.join(directory, f"{self.config.label}-{self.stem}.snap")

    async def finalize(self) -> Dict[str, Any]:
        """Enqueue the finalize barrier and wait for the session to close."""
        if self.result is not None:
            return self.result
        future: "asyncio.Future[Dict[str, Any]]" = self.loop.create_future()
        await self.queue.put(_Finalize(future))
        return await future


class ServeServer:
    """The asyncio server: accept loop, tenant registry, graceful stop."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.tenants: Dict[str, TenantSession] = {}
        self.results: List[Dict[str, Any]] = []
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop = None
        self._client_counter = 0
        self._generations: Dict[str, int] = {}
        self.host = config.host
        self.port = config.port

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        os.makedirs(self.config.trace_dir, exist_ok=True)
        if self.config.snapshot_dir:
            os.makedirs(self.config.snapshot_dir, exist_ok=True)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]

    async def stop(self) -> List[Dict[str, Any]]:
        """Stop accepting, finalize every live tenant, return their results."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for tenant in list(self.tenants.values()):
            try:
                self.results.append(await tenant.finalize())
            except Exception as error:
                print(
                    f"repro serve: tenant {tenant.name}: close failed: {error}",
                    file=sys.stderr,
                )
        self.tenants.clear()
        return self.results

    # ------------------------------------------------------------ connections
    def _tenant_for(self, hello: Dict[str, Any]) -> Tuple[TenantSession, str]:
        """Resolve (tenant session, name prefix) for a new connection."""
        if self.config.shared_arena:
            tenant = self.tenants.get(SHARED_TENANT)
            if tenant is None:
                tenant = self._new_session(SHARED_TENANT)
                self.tenants[SHARED_TENANT] = tenant
            client = str(hello.get("tenant") or self._next_client())
            return tenant, f"{client}/"
        name = str(hello.get("tenant") or self._next_client())
        if name in self.tenants:
            # A reconnecting tenant continues its live session (and trace).
            return self.tenants[name], ""
        tenant = self._new_session(name)
        self.tenants[name] = tenant
        return tenant, ""

    def _new_session(self, name: str) -> TenantSession:
        generation = self._generations.get(name, 0) + 1
        self._generations[name] = generation
        stem = name if generation == 1 else f"{name}-r{generation}"
        return TenantSession(name, self.config, self._loop, stem=stem)

    def _next_client(self) -> str:
        self._client_counter += 1
        return f"client-{self._client_counter}"

    async def _handle_connection(
        self, reader: asyncio.StreamReader, stream_writer: asyncio.StreamWriter
    ) -> None:
        conn = _Conn(stream_writer)
        tenant: Optional[TenantSession] = None
        closed_by_client = False
        try:
            fault_point("serve.accept")
            hello = await read_frame(reader)
            if hello is None:
                return
            if hello.get("op") != "hello":
                await conn.send(
                    {"ok": False, "error": "first frame must be {'op': 'hello', ...}"}
                )
                return
            tenant, prefix = self._tenant_for(hello)
            tenant.connections += 1
            await conn.send(
                {
                    "ok": True,
                    "op": "hello",
                    "protocol": PROTOCOL_VERSION,
                    "tenant": tenant.name if not prefix else prefix[:-1],
                    "mode": "shared" if self.config.shared_arena else "per-tenant",
                    "trace": tenant.trace_path,
                }
            )
            while True:
                message = await read_frame(reader)
                if message is None:
                    break
                op = message.get("op")
                if op == "batch":
                    try:
                        requests = decode_requests(message.get("reqs"), prefix)
                    except ProtocolError as error:
                        await conn.send(
                            {"ok": False, "seq": message.get("seq"), "error": str(error)}
                        )
                        continue
                    await tenant.queue.put(_Batch(requests, message.get("seq"), conn))
                elif op in ("stats", "snapshot", "drain"):
                    await tenant.queue.put(_Control(op, message, conn))
                elif op == "close":
                    closed_by_client = True
                    break
                else:
                    await conn.send(
                        {"ok": False, "seq": message.get("seq"), "error": f"unknown op {op!r}"}
                    )
        except ProtocolError as error:
            await conn.send({"ok": False, "error": str(error)})
        finally:
            if tenant is not None:
                tenant.connections -= 1
            if (
                tenant is not None
                and tenant.connections == 0
                and not self.config.shared_arena
                and tenant.name in self.tenants
            ):
                # A per-tenant arena's lifetime is its connection: finalize
                # the session so the v3 trace gets its trailer.  The shared
                # arena outlives connections and closes at server stop.
                del self.tenants[tenant.name]
                try:
                    result = await tenant.finalize()
                    self.results.append(result)
                    if closed_by_client:
                        await conn.send({"ok": True, "op": "close", "result": result})
                except Exception as error:
                    if closed_by_client:
                        await conn.send(
                            {"ok": False, "op": "close", "error": str(error)}
                        )
            elif closed_by_client:
                await conn.send({"ok": True, "op": "close"})
            try:
                stream_writer.close()
                await stream_writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass


# ---------------------------------------------------------------- entrypoints
async def _serve_until(config: ServeConfig, stop: asyncio.Event, ready=None) -> List[Dict[str, Any]]:
    server = ServeServer(config)
    await server.start()
    if not config.quiet:
        print(f"serving on {server.host}:{server.port}", flush=True)
    if ready is not None:
        ready(server)
    await stop.wait()
    return await server.stop()


def run_server(config: ServeConfig) -> int:
    """Blocking CLI entry: serve until SIGINT/SIGTERM, then drain and exit."""
    import signal

    async def _main() -> List[Dict[str, Any]]:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        return await _serve_until(config, stop)

    config.quiet = False
    results = asyncio.run(_main())
    for result in results:
        print(
            f"tenant {result['tenant']}: {result['requests']} request(s) "
            f"recorded to {result['trace']}"
        )
    return 0


@dataclass
class ServeHandle:
    """A server running on a background thread (tests and the bench)."""

    host: str
    port: int
    _loop: Any
    _stop: asyncio.Event
    _thread: threading.Thread
    results: List[Dict[str, Any]] = field(default_factory=list)

    def stop(self) -> List[Dict[str, Any]]:
        """Signal the server to drain and wait for the thread to finish."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
            self._thread.join(timeout=60)
        return self.results


def start_background(config: ServeConfig) -> ServeHandle:
    """Start a server on a daemon thread; returns once the port is bound."""
    started = threading.Event()
    box: Dict[str, Any] = {}

    def _thread_main() -> None:
        async def _main() -> List[Dict[str, Any]]:
            stop = asyncio.Event()
            box["stop"] = stop
            box["loop"] = asyncio.get_running_loop()

            def _ready(server: ServeServer) -> None:
                box["host"], box["port"] = server.host, server.port
                started.set()

            return await _serve_until(config, stop, ready=_ready)

        try:
            box["results"] = asyncio.run(_main())
        except Exception as error:  # pragma: no cover - surfaced via timeout
            box["error"] = error
        finally:
            started.set()

    thread = threading.Thread(target=_thread_main, name="repro-serve", daemon=True)
    thread.start()
    if not started.wait(timeout=30) or "port" not in box:
        raise ServeError(f"server failed to start: {box.get('error')}")
    handle = ServeHandle(
        host=box["host"],
        port=box["port"],
        _loop=box["loop"],
        _stop=box["stop"],
        _thread=thread,
    )

    original_stop = handle.stop

    def _stop_and_collect() -> List[Dict[str, Any]]:
        original_stop()
        handle.results = box.get("results") or []
        return handle.results

    handle.stop = _stop_and_collect  # type: ignore[method-assign]
    return handle


# -------------------------------------------------------------------- restore
def restore_session(snapshot_path, trace_path) -> Tuple[EngineSession, int]:
    """Recover a served session after a crash: snapshot + recorded tail.

    Unpickles the last ``SNAPSHOT`` of the session, reads the (possibly
    trailer-less) v3 trace with :func:`~repro.workloads.read_trace_tail`,
    and replays every recorded request beyond the snapshot's
    ``requests_applied`` watermark.  Because batches are acked only after
    their applied prefix is recorded and synced, the restored session is
    state-identical to the crashed one for every acked request.

    Returns ``(session, replayed)`` — the reopened session and how many
    tail requests were replayed on top of the snapshot.
    """
    session = EngineSession.restore(snapshot_path)
    tail = read_trace_tail(trace_path)
    pending = tail.requests[session.requests_applied :]
    if pending:
        session.apply(pending)
    return session, len(pending)
