"""The live allocation service: serve allocator sessions over a socket.

``repro serve`` turns the batch replay engine into a long-running
service: each client connection is a tenant feeding an incremental
:class:`~repro.engine.session.EngineSession`, every session is recorded
as a replayable block-indexed v3 trace, and ``STATS`` / ``SNAPSHOT`` /
``DRAIN`` control verbs expose live state.  ``repro load`` is the
matching saturation harness.  See :mod:`repro.serve.protocol` for the
wire format and :mod:`repro.serve.server` for the durability contract.
"""

from repro.serve.client import (
    LOAD_PATTERNS,
    ClientReport,
    LoadReport,
    ServeClient,
    ServeClientError,
    load_pattern_trace,
    run_load,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_requests,
    encode_frame,
    encode_requests,
    read_frame,
    read_frame_sync,
)
from repro.serve.server import (
    DEFAULT_MAX_BATCH,
    DEFAULT_QUEUE_DEPTH,
    ServeConfig,
    ServeError,
    ServeHandle,
    ServeServer,
    TenantSession,
    restore_session,
    run_server,
    start_background,
)

__all__ = [
    "LOAD_PATTERNS",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_QUEUE_DEPTH",
    "ClientReport",
    "LoadReport",
    "ProtocolError",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServeError",
    "ServeHandle",
    "ServeServer",
    "TenantSession",
    "decode_requests",
    "encode_frame",
    "encode_requests",
    "load_pattern_trace",
    "read_frame",
    "read_frame_sync",
    "restore_session",
    "run_load",
    "run_server",
    "start_background",
]
