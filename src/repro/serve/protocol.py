"""Wire protocol of the live allocation service: varint-length-prefixed JSON.

Every message on the wire is one *frame*: an unsigned LEB128 varint giving
the byte length of a UTF-8 JSON document, followed by that document.  The
varint prefix makes frames self-delimiting over a plain byte stream with
one allocation per message and no sentinel-escaping; JSON keeps the
payloads debuggable with ``nc``/``socat`` and trivially versionable.

Client → server messages are objects with an ``op`` field:

``{"op": "hello", "tenant": NAME, "protocol": 1}``
    First frame on every connection.  ``tenant`` is optional (the server
    assigns ``client-N``).
``{"op": "batch", "seq": N, "reqs": [["i", name, size], ["d", name], ...]}``
    A batch of allocation requests.  Requests use compact arrays, not
    objects — the hot path of the saturation harness.
``{"op": "stats", "seq": N}`` / ``{"op": "snapshot", "seq": N, "path": P}``
    / ``{"op": "drain", "seq": N}``
    Control verbs; they queue behind earlier batches of the same tenant,
    so a DRAIN response proves everything before it was applied and
    recorded.
``{"op": "close"}``
    Finalize this connection's session (per-tenant arenas write their
    trace trailer) and say goodbye.

Server → client responses echo ``seq`` and carry ``"ok": true/false``;
responses to one connection always arrive in request order.

Sizes: names and sizes travel as JSON scalars; names arrive as strings
(matching what trace files round-trip — names are stringified on save in
every trace format, so a served session's recorded trace replays offline
byte-identically).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, BinaryIO, Dict, List, Optional, Sequence

from repro.workloads.base import DELETE, INSERT, Request

#: Protocol version spoken by this module (echoed in the hello exchange).
PROTOCOL_VERSION = 1

#: Hard ceiling on one frame's JSON body.  A 16 MiB frame is ~500k compact
#: requests — far beyond any sane batch; anything larger is a corrupt or
#: hostile stream and is refused before allocation.
MAX_FRAME_BYTES = 16 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed frame, message, or request encoding."""


# ----------------------------------------------------------------- framing
def _encode_varint(value: int) -> bytes:
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def encode_frame(message: Dict[str, Any]) -> bytes:
    """Encode one message as a length-prefixed frame."""
    body = json.dumps(message, separators=(",", ":"), sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return _encode_varint(len(body)) + body


def _decode_body(body: bytes) -> Dict[str, Any]:
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame body is not valid JSON: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError(f"frame body must be a JSON object, got {type(message).__name__}")
    return message


async def read_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """Read one frame from an asyncio stream.

    Returns ``None`` on a clean EOF at a frame boundary; raises
    :class:`ProtocolError` on a connection cut mid-frame or a malformed
    prefix/body.
    """
    length = 0
    shift = 0
    first = True
    while True:
        byte = await reader.read(1)
        if not byte:
            if first:
                return None
            raise ProtocolError("connection closed inside a frame length prefix")
        first = False
        length |= (byte[0] & 0x7F) << shift
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame length exceeds the {MAX_FRAME_BYTES}-byte limit")
        if not byte[0] & 0x80:
            break
        shift += 7
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError(
            f"connection closed inside a frame body "
            f"({len(error.partial)}/{length} bytes)"
        ) from error
    return _decode_body(body)


def read_frame_sync(stream: BinaryIO) -> Optional[Dict[str, Any]]:
    """Blocking counterpart of :func:`read_frame` over a file-like socket
    (``socket.makefile("rb")``)."""
    length = 0
    shift = 0
    first = True
    while True:
        byte = stream.read(1)
        if not byte:
            if first:
                return None
            raise ProtocolError("connection closed inside a frame length prefix")
        first = False
        length |= (byte[0] & 0x7F) << shift
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame length exceeds the {MAX_FRAME_BYTES}-byte limit")
        if not byte[0] & 0x80:
            break
        shift += 7
    body = b""
    while len(body) < length:
        chunk = stream.read(length - len(body))
        if not chunk:
            raise ProtocolError(
                f"connection closed inside a frame body ({len(body)}/{length} bytes)"
            )
        body += chunk
    return _decode_body(body)


# ------------------------------------------------------------- request codec
def encode_requests(requests: Sequence[Request]) -> List[List[Any]]:
    """Compact on-the-wire form: ``["i", name, size]`` / ``["d", name]``."""
    out: List[List[Any]] = []
    for request in requests:
        if request.op == INSERT:
            out.append(["i", str(request.name), request.size])
        else:
            out.append(["d", str(request.name)])
    return out


def decode_requests(payload: Any, prefix: str = "") -> List[Request]:
    """Decode a batch body back into :class:`Request` objects.

    ``prefix`` namespaces the names (shared-arena mode prefixes each
    tenant's objects with ``"<tenant>/"`` so clients cannot collide).
    """
    if not isinstance(payload, list):
        raise ProtocolError("batch 'reqs' must be a list")
    requests: List[Request] = []
    try:
        for item in payload:
            tag = item[0]
            if tag == "i":
                requests.append(Request(INSERT, prefix + str(item[1]), int(item[2])))
            elif tag == "d":
                requests.append(Request(DELETE, prefix + str(item[1])))
            else:
                raise ProtocolError(f"unknown request tag {tag!r}")
    except ProtocolError:
        raise
    except (TypeError, ValueError, IndexError, KeyError) as error:
        raise ProtocolError(f"malformed request in batch: {error}") from error
    return requests
