"""Client side of the live allocation service: a sync client + load harness.

:class:`ServeClient` is a small blocking-socket client — the natural shape
for tests, scripts, and the per-thread workers of the saturation harness
(the server is the async side; clients stay simple).  It supports
*pipelining*: :meth:`send_batch` fires a batch without waiting, and
:meth:`drain_acks` collects responses later, so a loader can keep
``window`` batches in flight and actually saturate the server instead of
ping-ponging one batch per round trip.

:func:`run_load` is the ``repro load`` harness: N client threads, each
generating a deterministic synthetic workload (per-client seed), batching
it over the wire, and reporting aggregate applied-requests-per-second —
the number ``benchmarks/bench_serve.py`` guards against single-process
replay throughput.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    encode_frame,
    encode_requests,
    read_frame_sync,
)
from repro.workloads import (
    UniformSizes,
    churn_trace,
    grow_then_shrink_trace,
    sliding_window_trace,
)
from repro.workloads.base import Request

#: Patterns the load generator can synthesize, per client, deterministically.
LOAD_PATTERNS = ("churn", "grow_shrink", "sliding")


class ServeClientError(RuntimeError):
    """The server refused a request or the connection failed."""


class ServeClient:
    """A blocking client for one connection to ``repro serve``."""

    def __init__(
        self,
        host: str,
        port: int,
        tenant: Optional[str] = None,
        timeout: float = 60.0,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._file = self._sock.makefile("rb")
        self._seq = 0
        self._inflight = 0
        hello: Dict[str, Any] = {"op": "hello", "protocol": PROTOCOL_VERSION}
        if tenant is not None:
            hello["tenant"] = tenant
        self._send(hello)
        response = self._recv()
        if not response.get("ok"):
            raise ServeClientError(f"hello refused: {response.get('error')}")
        self.tenant: str = response["tenant"]
        self.mode: str = response.get("mode", "per-tenant")
        self.trace_path: str = response.get("trace", "")

    # -------------------------------------------------------------- plumbing
    def _send(self, message: Dict[str, Any]) -> None:
        self._sock.sendall(encode_frame(message))

    def _recv(self) -> Dict[str, Any]:
        response = read_frame_sync(self._file)
        if response is None:
            raise ServeClientError("server closed the connection")
        return response

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # ------------------------------------------------------------- pipelining
    def send_batch(self, requests: Sequence[Request]) -> int:
        """Fire one batch without waiting for its ack; returns its seq."""
        seq = self._next_seq()
        self._send({"op": "batch", "seq": seq, "reqs": encode_requests(requests)})
        self._inflight += 1
        return seq

    def drain_acks(self, count: Optional[int] = None) -> List[Dict[str, Any]]:
        """Collect ``count`` batch acks (default: everything in flight)."""
        want = self._inflight if count is None else min(count, self._inflight)
        acks = []
        for _ in range(want):
            acks.append(self._recv())
            self._inflight -= 1
        return acks

    # ------------------------------------------------------------ one-shot ops
    def apply(self, requests: Sequence[Request]) -> Dict[str, Any]:
        """Send one batch and wait for its ack."""
        self.send_batch(requests)
        [ack] = self.drain_acks(1)
        return ack

    def _control(self, op: str, **extra: Any) -> Dict[str, Any]:
        if self._inflight:
            self.drain_acks()
        message = {"op": op, "seq": self._next_seq()}
        message.update(extra)
        self._send(message)
        response = self._recv()
        if not response.get("ok"):
            raise ServeClientError(f"{op} failed: {response.get('error')}")
        return response

    def stats(self) -> Dict[str, Any]:
        """Live session stats (requests, footprint, rps, recorded count)."""
        return self._control("stats")["stats"]

    def snapshot(self, path: Optional[str] = None) -> Dict[str, Any]:
        """Checkpoint the session server-side; returns the snapshot info."""
        extra = {"path": path} if path else {}
        return self._control("snapshot", **extra)["snapshot"]

    def drain(self) -> Dict[str, Any]:
        """Barrier: returns once everything enqueued is applied + recorded."""
        return self._control("drain")

    def close(self) -> Optional[Dict[str, Any]]:
        """Finalize the session (per-tenant mode) and close the connection."""
        result = None
        try:
            if self._inflight:
                self.drain_acks()
            self._send({"op": "close"})
            goodbye = read_frame_sync(self._file)
            if goodbye is not None:
                result = goodbye.get("result")
        except (OSError, ProtocolError, ServeClientError):
            pass
        finally:
            try:
                self._file.close()
                self._sock.close()
            except OSError:
                pass
        return result

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ------------------------------------------------------------ load generation
def load_pattern_trace(
    pattern: str, requests: int, seed: int, target_live: int = 200
):
    """The deterministic per-client workload of the saturation harness."""
    sizes = UniformSizes(1, 64)
    if pattern == "churn":
        return churn_trace(requests, sizes, target_live=target_live, seed=seed)
    if pattern == "grow_shrink":
        return grow_then_shrink_trace(max(1, requests // 2), sizes, seed=seed)
    if pattern == "sliding":
        return sliding_window_trace(
            max(1, requests // 2), max(1, target_live), sizes, seed=seed
        )
    raise ValueError(f"unknown load pattern {pattern!r} (known: {LOAD_PATTERNS})")


@dataclass
class ClientReport:
    """One load client's outcome."""

    tenant: str
    sent: int
    applied: int
    batches: int
    errors: int
    elapsed_seconds: float
    error: Optional[str] = None


@dataclass
class LoadReport:
    """Aggregate outcome of one :func:`run_load` run (JSON-safe via to_dict)."""

    clients: List[ClientReport] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def sent(self) -> int:
        return sum(c.sent for c in self.clients)

    @property
    def applied(self) -> int:
        return sum(c.applied for c in self.clients)

    @property
    def errors(self) -> int:
        return sum(c.errors for c in self.clients) + sum(
            1 for c in self.clients if c.error
        )

    @property
    def requests_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return round(self.applied / self.elapsed_seconds, 1)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "clients": len(self.clients),
            "sent": self.sent,
            "applied": self.applied,
            "errors": self.errors,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "requests_per_second": self.requests_per_second,
            "per_client": [
                {
                    "tenant": c.tenant,
                    "sent": c.sent,
                    "applied": c.applied,
                    "batches": c.batches,
                    "errors": c.errors,
                    "elapsed_seconds": round(c.elapsed_seconds, 6),
                    **({"error": c.error} if c.error else {}),
                }
                for c in self.clients
            ],
        }


def _run_one_client(
    host: str,
    port: int,
    tenant: str,
    requests_source,
    batch: int,
    window: int,
    out: List[Optional[ClientReport]],
    index: int,
) -> None:
    started = time.perf_counter()
    sent = applied = batches = errors = 0
    error: Optional[str] = None
    try:
        with ServeClient(host, port, tenant=tenant) as client:
            requests = list(requests_source)
            pending = 0
            for offset in range(0, len(requests), batch):
                chunk = requests[offset : offset + batch]
                client.send_batch(chunk)
                sent += len(chunk)
                batches += 1
                pending += 1
                if pending >= window:
                    for ack in client.drain_acks(1):
                        applied += int(ack.get("applied", 0))
                        if not ack.get("ok"):
                            errors += 1
                    pending -= 1
            for ack in client.drain_acks():
                applied += int(ack.get("applied", 0))
                if not ack.get("ok"):
                    errors += 1
    except (OSError, ProtocolError, ServeClientError) as exc:
        error = f"{type(exc).__name__}: {exc}"
    out[index] = ClientReport(
        tenant=tenant,
        sent=sent,
        applied=applied,
        batches=batches,
        errors=errors,
        elapsed_seconds=time.perf_counter() - started,
        error=error,
    )


def run_load(
    host: str,
    port: int,
    clients: int = 4,
    requests: int = 10_000,
    pattern: str = "churn",
    target_live: int = 200,
    seed: int = 0,
    batch: int = 500,
    window: int = 4,
) -> LoadReport:
    """Saturate a server: ``clients`` threads, ``requests`` each, pipelined.

    Every client is a tenant named ``load-<i>`` running a deterministic
    synthetic workload seeded with ``seed + i`` — so a load run against a
    per-tenant server leaves N independently replayable traces whose
    offline replay must match the live sessions exactly.
    """
    if clients < 1:
        raise ValueError("need at least one client")
    traces = [
        load_pattern_trace(pattern, requests, seed + i, target_live=target_live)
        for i in range(clients)
    ]
    reports: List[Optional[ClientReport]] = [None] * clients
    threads = [
        threading.Thread(
            target=_run_one_client,
            args=(host, port, f"load-{i}", traces[i], batch, window, reports, i),
            name=f"load-{i}",
        )
        for i in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report = LoadReport(elapsed_seconds=time.perf_counter() - started)
    for item in reports:
        if item is not None:
            report.clients.append(item)
    return report
