"""Combinators over cost functions that preserve membership in ``F_sa``.

Closure properties used here:

* a positive scaling of a subadditive monotone function stays subadditive
  and monotone,
* a sum of subadditive monotone functions stays subadditive and monotone,
* a pointwise minimum of subadditive monotone functions stays subadditive
  and monotone (the minimum models a device that picks the cheapest of
  several transfer mechanisms).

A pointwise *maximum* does **not** preserve subadditivity in general, so no
``MaxCost`` is provided.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.costs.base import CostFunction, CostFunctionError, validate_cost_function


class ScaledCost(CostFunction):
    """``f(w) = factor * inner(w)`` for a positive ``factor``."""

    def __init__(self, inner: CostFunction, factor: float) -> None:
        if factor <= 0:
            raise CostFunctionError("factor must be positive")
        self.inner = inner
        self.factor = factor
        self.name = f"{factor:g}*{inner.name}"

    def cost(self, size: int) -> float:
        return self.factor * self.inner(size)


class SumCost(CostFunction):
    """``f(w) = sum_i inner_i(w)``."""

    def __init__(self, parts: Sequence[CostFunction]) -> None:
        if not parts:
            raise CostFunctionError("SumCost needs at least one part")
        self.parts = tuple(parts)
        self.name = "+".join(p.name for p in self.parts)

    def cost(self, size: int) -> float:
        return sum(part(size) for part in self.parts)


class MinCost(CostFunction):
    """``f(w) = min_i inner_i(w)`` — cheapest of several mechanisms."""

    def __init__(self, parts: Sequence[CostFunction]) -> None:
        if not parts:
            raise CostFunctionError("MinCost needs at least one part")
        self.parts = tuple(parts)
        self.name = "min(" + ",".join(p.name for p in self.parts) + ")"

    def cost(self, size: int) -> float:
        return min(part(size) for part in self.parts)


class TabulatedCost(CostFunction):
    """A cost function backed by measured per-size costs.

    ``table`` maps sizes to measured costs; sizes inside the measured range
    are charged by rounding *up* to the next measured size, and sizes beyond
    the largest measurement are charged ``max(f(largest), r * size)`` where
    ``r`` is the smallest measured per-unit rate — an extrapolation that
    provably preserves subadditivity given a subadditive table.
    ``validate=True`` runs the empirical F_sa checker over the measured range
    so that bad measurements are rejected loudly instead of silently breaking
    the competitive analysis.
    """

    def __init__(self, table: Dict[int, float], validate: bool = True) -> None:
        if not table:
            raise CostFunctionError("table must not be empty")
        if any(size <= 0 or cost <= 0 for size, cost in table.items()):
            raise CostFunctionError("table sizes and costs must be positive")
        self._sizes = sorted(table)
        self._table = dict(table)
        self._unit_rate = min(cost / size for size, cost in table.items())
        self.name = "tabulated"
        if validate:
            validate_cost_function(self, max_size=self._sizes[-1])

    def cost(self, size: int) -> float:
        if size in self._table:
            return self._table[size]
        for known in self._sizes:
            if known >= size:
                return self._table[known]
        largest = self._sizes[-1]
        return max(self._table[largest], self._unit_rate * size)
