"""Cost-function library for storage reallocation.

The paper analyses reallocators against the class ``F_sa`` of monotonically
increasing, subadditive cost functions.  This package provides:

* the :class:`~repro.costs.base.CostFunction` interface,
* a catalogue of standard cost functions (linear, constant, affine, power,
  logarithmic, capped, block-granular),
* device-derived cost functions (rotating disk, SSD, RAM),
* combinators that preserve membership in ``F_sa``, and
* empirical checkers for monotonicity and subadditivity used by the tests.
"""

from repro.costs.base import (
    CostFunction,
    CostFunctionError,
    is_monotone,
    is_subadditive,
    subadditivity_counterexample,
    monotonicity_counterexample,
    validate_cost_function,
)
from repro.costs.standard import (
    LinearCost,
    ConstantCost,
    AffineCost,
    PowerCost,
    LogCost,
    CappedLinearCost,
    BlockCost,
    PiecewiseLinearConcaveCost,
)
from repro.costs.device import (
    RotatingDiskCost,
    SolidStateCost,
    MainMemoryCost,
    NetworkedStoreCost,
)
from repro.costs.composite import (
    ScaledCost,
    SumCost,
    MinCost,
    TabulatedCost,
)

#: The cost functions used by the cost-obliviousness experiments (E2).  A
#: single execution of a reallocator is charged under all of them at once.
STANDARD_COST_SUITE = (
    LinearCost(),
    ConstantCost(),
    AffineCost(fixed=8.0, per_unit=1.0),
    PowerCost(exponent=0.5),
    LogCost(),
    CappedLinearCost(cap=64.0),
    RotatingDiskCost(),
    SolidStateCost(),
    MainMemoryCost(),
)

__all__ = [
    "CostFunction",
    "CostFunctionError",
    "is_monotone",
    "is_subadditive",
    "subadditivity_counterexample",
    "monotonicity_counterexample",
    "validate_cost_function",
    "LinearCost",
    "ConstantCost",
    "AffineCost",
    "PowerCost",
    "LogCost",
    "CappedLinearCost",
    "BlockCost",
    "PiecewiseLinearConcaveCost",
    "RotatingDiskCost",
    "SolidStateCost",
    "MainMemoryCost",
    "NetworkedStoreCost",
    "ScaledCost",
    "SumCost",
    "MinCost",
    "TabulatedCost",
    "STANDARD_COST_SUITE",
]
