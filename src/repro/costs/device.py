"""Cost functions derived from simulated storage devices.

The paper motivates cost obliviousness by pointing out that the "right" cost
model differs between RAM, rotating disks and SSDs, and that faithful models
are hard to pin down.  These classes mirror the timing models in
:mod:`repro.storage.devices` so the same device can be used both to *drive* a
simulation (producing elapsed time) and to *charge* an execution after the
fact.
"""

from __future__ import annotations

import math

from repro.costs.base import CostFunction, CostFunctionError


class RotatingDiskCost(CostFunction):
    """Seek plus transfer: ``f(w) = seek_ms + w / bandwidth``.

    Defaults roughly model a 7200 RPM disk with 8 ms average seek and
    128 units of payload transferred per millisecond.
    """

    def __init__(self, seek_ms: float = 8.0, units_per_ms: float = 128.0) -> None:
        if seek_ms < 0 or units_per_ms <= 0:
            raise CostFunctionError("seek_ms must be >= 0 and units_per_ms > 0")
        self.seek_ms = seek_ms
        self.units_per_ms = units_per_ms
        self.name = "disk"

    def cost(self, size: int) -> float:
        return self.seek_ms + size / self.units_per_ms


class SolidStateCost(CostFunction):
    """Page-granular flash: ``f(w) = ceil(w / page) * page_cost + issue_cost``.

    Writes must target erased pages, so cost is charged per page touched with
    a small per-request issue overhead.
    """

    def __init__(
        self,
        page_size: int = 8,
        page_cost: float = 0.2,
        issue_cost: float = 0.05,
    ) -> None:
        if page_size <= 0 or page_cost <= 0 or issue_cost < 0:
            raise CostFunctionError("page_size and page_cost must be positive")
        self.page_size = page_size
        self.page_cost = page_cost
        self.issue_cost = issue_cost
        self.name = "ssd"

    def cost(self, size: int) -> float:
        return self.issue_cost + math.ceil(size / self.page_size) * self.page_cost


class MainMemoryCost(CostFunction):
    """In-core copying: essentially linear with a tiny per-call overhead."""

    def __init__(self, per_unit: float = 0.001, call_overhead: float = 0.0005) -> None:
        if per_unit <= 0 or call_overhead < 0:
            raise CostFunctionError("per_unit must be positive")
        self.per_unit = per_unit
        self.call_overhead = call_overhead
        self.name = "ram"

    def cost(self, size: int) -> float:
        return self.call_overhead + self.per_unit * size


class NetworkedStoreCost(CostFunction):
    """Remote object store: round-trip latency plus bandwidth, capped batches.

    Requests larger than ``batch`` units are streamed, so the latency term is
    paid once regardless of size — a strongly subadditive regime where moving
    one huge object is far cheaper than moving many small ones.
    """

    def __init__(
        self,
        round_trip: float = 2.0,
        units_per_ms: float = 64.0,
        batch: int = 1024,
    ) -> None:
        if round_trip < 0 or units_per_ms <= 0 or batch <= 0:
            raise CostFunctionError("invalid network parameters")
        self.round_trip = round_trip
        self.units_per_ms = units_per_ms
        self.batch = batch
        self.name = "network"

    def cost(self, size: int) -> float:
        return self.round_trip + min(size, self.batch) / self.units_per_ms + max(
            0, size - self.batch
        ) / (self.units_per_ms * 4)
