"""Cost-function interface and empirical property checkers.

The paper's competitive analysis holds for every *monotonically increasing,
subadditive* cost function ``f``: moving or allocating a size-``w`` object
costs ``f(w)``, with ``f(x + y) <= f(x) + f(y)`` for all positive ``x, y``.
The reallocation algorithms never evaluate ``f`` — cost functions exist only
so that experiments can charge an execution after the fact and verify the
competitive bounds.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Iterable, Optional, Sequence, Tuple


class CostFunctionError(ValueError):
    """Raised when a cost function violates the F_sa requirements."""


class CostFunction(ABC):
    """A monotonically increasing, subadditive cost function ``f(w)``.

    Subclasses implement :meth:`cost` for positive integer sizes.  The object
    is callable, hashable by its :attr:`name`, and renders as its name so it
    can be used directly as a table column header in reports.
    """

    #: Short human-readable identifier, e.g. ``"linear"`` or ``"disk"``.
    name: str = "cost"

    @abstractmethod
    def cost(self, size: int) -> float:
        """Return the cost of allocating or moving an object of ``size``."""

    def __call__(self, size: int) -> float:
        if size <= 0:
            raise ValueError(f"object sizes must be positive, got {size}")
        return self.cost(size)

    def total(self, sizes: Iterable[int]) -> float:
        """Return the summed cost of allocating every size in ``sizes``."""
        return sum(self(size) for size in sizes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"

    def __str__(self) -> str:
        return self.name


def monotonicity_counterexample(
    function: CostFunction, sizes: Sequence[int]
) -> Optional[Tuple[int, int]]:
    """Return a pair ``(small, large)`` with ``f(small) > f(large)``, if any.

    ``sizes`` is scanned in sorted order; ``None`` means no violation was
    found on the sampled sizes.
    """
    ordered = sorted(set(s for s in sizes if s > 0))
    for smaller, larger in zip(ordered, ordered[1:]):
        if function(smaller) > function(larger) + 1e-9:
            return (smaller, larger)
    return None


def subadditivity_counterexample(
    function: CostFunction, sizes: Sequence[int]
) -> Optional[Tuple[int, int]]:
    """Return a pair ``(x, y)`` with ``f(x + y) > f(x) + f(y)``, if any."""
    positive = sorted(set(s for s in sizes if s > 0))
    for x, y in itertools.combinations_with_replacement(positive, 2):
        if function(x + y) > function(x) + function(y) + 1e-9:
            return (x, y)
    return None


def is_monotone(function: CostFunction, sizes: Sequence[int]) -> bool:
    """True if ``function`` is nondecreasing on every sampled size."""
    return monotonicity_counterexample(function, sizes) is None


def is_subadditive(function: CostFunction, sizes: Sequence[int]) -> bool:
    """True if ``function`` is subadditive on every sampled pair of sizes."""
    return subadditivity_counterexample(function, sizes) is None


def validate_cost_function(
    function: CostFunction, max_size: int = 256
) -> None:
    """Raise :class:`CostFunctionError` if ``function`` leaves F_sa.

    The check is empirical: it samples all sizes up to ``max_size`` for
    monotonicity and all pairs up to ``max_size`` for subadditivity.  It is
    used by the test-suite and by :class:`repro.costs.composite.TabulatedCost`
    to validate user-supplied measurements.
    """
    sizes = list(range(1, max_size + 1))
    bad = monotonicity_counterexample(function, sizes)
    if bad is not None:
        raise CostFunctionError(
            f"{function.name} is not monotonically increasing: "
            f"f({bad[0]}) > f({bad[1]})"
        )
    bad = subadditivity_counterexample(function, sizes)
    if bad is not None:
        raise CostFunctionError(
            f"{function.name} is not subadditive: "
            f"f({bad[0]} + {bad[1]}) > f({bad[0]}) + f({bad[1]})"
        )
