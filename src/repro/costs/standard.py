"""Standard analytic cost functions.

Every class here is monotonically increasing and subadditive, i.e. a member
of the class ``F_sa`` the paper's guarantees cover.  The two extremes the
paper keeps returning to are :class:`LinearCost` (``f(w) = w``, the RAM /
garbage-collection model) and :class:`ConstantCost` (``f(w) = 1``, the
seek-dominated model); everything realistic lies between them.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.costs.base import CostFunction, CostFunctionError


class LinearCost(CostFunction):
    """``f(w) = per_unit * w`` — moving data costs bandwidth only."""

    def __init__(self, per_unit: float = 1.0) -> None:
        if per_unit <= 0:
            raise CostFunctionError("per_unit must be positive")
        self.per_unit = per_unit
        self.name = "linear" if per_unit == 1.0 else f"linear({per_unit:g})"

    def cost(self, size: int) -> float:
        return self.per_unit * size


class ConstantCost(CostFunction):
    """``f(w) = value`` — every move costs the same (pure seek model)."""

    def __init__(self, value: float = 1.0) -> None:
        if value <= 0:
            raise CostFunctionError("value must be positive")
        self.value = value
        self.name = "constant" if value == 1.0 else f"constant({value:g})"

    def cost(self, size: int) -> float:
        return self.value


class AffineCost(CostFunction):
    """``f(w) = fixed + per_unit * w`` — a seek plus a transfer.

    This is the textbook model for a rotating disk and is subadditive because
    the fixed term is paid once on the left-hand side of ``f(x + y)`` but
    twice on the right-hand side.
    """

    def __init__(self, fixed: float = 1.0, per_unit: float = 1.0) -> None:
        if fixed < 0 or per_unit < 0 or (fixed == 0 and per_unit == 0):
            raise CostFunctionError("fixed and per_unit must be nonnegative, not both zero")
        self.fixed = fixed
        self.per_unit = per_unit
        self.name = f"affine({fixed:g}+{per_unit:g}w)"

    def cost(self, size: int) -> float:
        return self.fixed + self.per_unit * size


class PowerCost(CostFunction):
    """``f(w) = scale * w**exponent`` with ``exponent <= 1`` (concave)."""

    def __init__(self, exponent: float = 0.5, scale: float = 1.0) -> None:
        if not 0 < exponent <= 1:
            raise CostFunctionError("exponent must lie in (0, 1] to stay subadditive")
        if scale <= 0:
            raise CostFunctionError("scale must be positive")
        self.exponent = exponent
        self.scale = scale
        self.name = f"power({exponent:g})"

    def cost(self, size: int) -> float:
        return self.scale * size**self.exponent


class LogCost(CostFunction):
    """``f(w) = scale * log2(1 + w)`` — grows, but far slower than linear."""

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise CostFunctionError("scale must be positive")
        self.scale = scale
        self.name = "log"

    def cost(self, size: int) -> float:
        return self.scale * math.log2(1.0 + size)


class CappedLinearCost(CostFunction):
    """``f(w) = min(w, cap)`` — linear until the device saturates."""

    def __init__(self, cap: float = 64.0, per_unit: float = 1.0) -> None:
        if cap <= 0 or per_unit <= 0:
            raise CostFunctionError("cap and per_unit must be positive")
        self.cap = cap
        self.per_unit = per_unit
        self.name = f"capped({cap:g})"

    def cost(self, size: int) -> float:
        return min(self.per_unit * size, self.cap)


class BlockCost(CostFunction):
    """``f(w) = ceil(w / block) * per_block`` — block-granular devices.

    Rounding the transferred volume up to whole blocks preserves both
    monotonicity and subadditivity because ``ceil((x+y)/b) <= ceil(x/b) +
    ceil(y/b)``.
    """

    def __init__(self, block: int = 16, per_block: float = 1.0) -> None:
        if block <= 0 or per_block <= 0:
            raise CostFunctionError("block and per_block must be positive")
        self.block = block
        self.per_block = per_block
        self.name = f"block({block})"

    def cost(self, size: int) -> float:
        return math.ceil(size / self.block) * self.per_block


class PiecewiseLinearConcaveCost(CostFunction):
    """A concave piecewise-linear function given by its breakpoints.

    ``points`` is a sequence of ``(size, cost)`` pairs with strictly
    increasing sizes and nondecreasing costs.  The function is extended
    through the origin: below the first breakpoint the cost is interpolated
    from ``(0, 0)``, between breakpoints it is interpolated linearly, and
    beyond the last breakpoint it is extrapolated with the final slope.  The
    constructor verifies that this extension is concave (nonincreasing
    slopes, including the implicit origin segment), which together with
    ``f(0) = 0`` and monotonicity implies subadditivity.
    """

    def __init__(self, points: Sequence[Tuple[float, float]]) -> None:
        if not points:
            raise CostFunctionError("need at least one breakpoint")
        xs = [float(x) for x, _ in points]
        ys = [float(y) for _, y in points]
        if any(b <= a for a, b in zip(xs, xs[1:])):
            raise CostFunctionError("breakpoint sizes must be strictly increasing")
        if any(b < a for a, b in zip(ys, ys[1:])):
            raise CostFunctionError("breakpoint costs must be nondecreasing")
        if xs[0] <= 0 or ys[0] <= 0:
            raise CostFunctionError("breakpoints must be positive")
        full_xs = [0.0] + xs
        full_ys = [0.0] + ys
        slopes = [
            (y2 - y1) / (x2 - x1)
            for x1, y1, x2, y2 in zip(full_xs, full_ys, full_xs[1:], full_ys[1:])
        ]
        if any(s2 > s1 + 1e-12 for s1, s2 in zip(slopes, slopes[1:])):
            raise CostFunctionError(
                "breakpoints (extended through the origin) must be concave"
            )
        self._xs = full_xs
        self._ys = full_ys
        self._slopes = slopes
        self.name = "piecewise"

    def cost(self, size: int) -> float:
        xs, ys = self._xs, self._ys
        for i in range(len(xs) - 1):
            if size <= xs[i + 1]:
                return ys[i] + self._slopes[i] * (size - xs[i])
        return ys[-1] + self._slopes[-1] * (size - xs[-1])
