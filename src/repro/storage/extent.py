"""Extent arithmetic: half-open integer intervals of the address space."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List


@dataclass(frozen=True, order=True)
class Extent:
    """A half-open interval ``[start, start + length)`` of addresses."""

    start: int
    length: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"extent start must be nonnegative, got {self.start}")
        if self.length <= 0:
            raise ValueError(f"extent length must be positive, got {self.length}")

    @property
    def end(self) -> int:
        """One past the last address covered by this extent."""
        return self.start + self.length

    def overlaps(self, other: "Extent") -> bool:
        """True if the two extents share at least one address."""
        return self.start < other.end and other.start < self.end

    def contains(self, address: int) -> bool:
        """True if ``address`` falls inside this extent."""
        return self.start <= address < self.end

    def contains_extent(self, other: "Extent") -> bool:
        """True if ``other`` lies entirely inside this extent."""
        return self.start <= other.start and other.end <= self.end

    def shifted(self, delta: int) -> "Extent":
        """Return a copy moved by ``delta`` addresses."""
        return Extent(self.start + delta, self.length)

    def __str__(self) -> str:
        return f"[{self.start}, {self.end})"


def coalesce(extents: Iterable[Extent]) -> List[Extent]:
    """Merge overlapping or adjacent extents into a minimal sorted list."""
    ordered = sorted(extents, key=lambda e: e.start)
    merged: List[Extent] = []
    for extent in ordered:
        if merged and extent.start <= merged[-1].end:
            last = merged[-1]
            merged[-1] = Extent(last.start, max(last.end, extent.end) - last.start)
        else:
            merged.append(extent)
    return merged


def total_length(extents: Iterable[Extent]) -> int:
    """Total number of distinct addresses covered by ``extents``."""
    return sum(extent.length for extent in coalesce(extents))
