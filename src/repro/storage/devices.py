"""Simulated storage devices with timing models.

The paper's point is that the *same* reallocation algorithm must work whether
objects live in RAM, on a rotating disk, or on flash — media with wildly
different move costs.  A :class:`DeviceModel` turns each object move into
elapsed simulated time and byte counters, and can hand back the matching
:class:`~repro.costs.base.CostFunction` so experiments can relate simulated
time to the analytic charge.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.costs.base import CostFunction
from repro.costs.device import MainMemoryCost, RotatingDiskCost, SolidStateCost


@dataclass
class DeviceStats:
    """Aggregate counters maintained by a :class:`DeviceModel`."""

    reads: int = 0
    writes: int = 0
    moves: int = 0
    units_read: int = 0
    units_written: int = 0
    elapsed_ms: float = 0.0
    per_operation_ms: list = field(default_factory=list)

    def record(self, units: int, elapsed: float, is_move: bool) -> None:
        self.reads += 1
        self.writes += 1
        if is_move:
            self.moves += 1
        self.units_read += units
        self.units_written += units
        self.elapsed_ms += elapsed
        self.per_operation_ms.append(elapsed)


class DeviceModel(ABC):
    """A storage medium that charges simulated time for writes and moves."""

    name: str = "device"

    def __init__(self) -> None:
        self.stats = DeviceStats()

    @abstractmethod
    def transfer_time(self, size: int) -> float:
        """Milliseconds needed to write ``size`` units to a fresh location."""

    @abstractmethod
    def cost_function(self) -> CostFunction:
        """The analytic cost function matching this device."""

    def write(self, size: int) -> float:
        """Simulate the initial allocation write of a ``size``-unit object."""
        elapsed = self.transfer_time(size)
        self.stats.record(size, elapsed, is_move=False)
        return elapsed

    def move(self, size: int) -> float:
        """Simulate moving a ``size``-unit object (read + write elsewhere)."""
        elapsed = 2.0 * self.transfer_time(size)
        self.stats.record(size, elapsed, is_move=True)
        return elapsed

    def reset(self) -> None:
        self.stats = DeviceStats()


class MainMemoryDevice(DeviceModel):
    """DRAM: pure bandwidth, negligible fixed overhead."""

    name = "ram"

    def __init__(self, units_per_ms: float = 1_000_000.0, call_overhead_ms: float = 0.0005) -> None:
        super().__init__()
        self.units_per_ms = units_per_ms
        self.call_overhead_ms = call_overhead_ms

    def transfer_time(self, size: int) -> float:
        return self.call_overhead_ms + size / self.units_per_ms

    def cost_function(self) -> CostFunction:
        return MainMemoryCost(per_unit=1.0 / self.units_per_ms, call_overhead=self.call_overhead_ms)


class RotatingDiskDevice(DeviceModel):
    """Rotating disk: a seek per request plus sequential bandwidth."""

    name = "disk"

    def __init__(self, seek_ms: float = 8.0, units_per_ms: float = 128.0) -> None:
        super().__init__()
        self.seek_ms = seek_ms
        self.units_per_ms = units_per_ms

    def transfer_time(self, size: int) -> float:
        return self.seek_ms + size / self.units_per_ms

    def cost_function(self) -> CostFunction:
        return RotatingDiskCost(seek_ms=self.seek_ms, units_per_ms=self.units_per_ms)


class SolidStateDevice(DeviceModel):
    """Flash SSD: page-granular writes; moved-from pages need erasure later.

    The erase bookkeeping models the non-overlapping constraint the paper
    attributes to SSDs: a page cannot be rewritten before it is erased, so
    in-place overwrites are impossible and moves always target fresh pages.
    """

    name = "ssd"

    def __init__(
        self,
        page_size: int = 8,
        page_write_ms: float = 0.2,
        issue_ms: float = 0.05,
        erase_ms: float = 1.5,
        erase_block_pages: int = 64,
    ) -> None:
        super().__init__()
        self.page_size = page_size
        self.page_write_ms = page_write_ms
        self.issue_ms = issue_ms
        self.erase_ms = erase_ms
        self.erase_block_pages = erase_block_pages
        self.dirty_pages = 0
        self.erases = 0

    def transfer_time(self, size: int) -> float:
        pages = math.ceil(size / self.page_size)
        return self.issue_ms + pages * self.page_write_ms

    def move(self, size: int) -> float:
        elapsed = super().move(size)
        # The vacated pages become dirty; garbage collection erases whole
        # blocks once enough pages have accumulated.
        self.dirty_pages += math.ceil(size / self.page_size)
        while self.dirty_pages >= self.erase_block_pages:
            self.dirty_pages -= self.erase_block_pages
            self.erases += 1
            self.stats.elapsed_ms += self.erase_ms
        return elapsed

    def cost_function(self) -> CostFunction:
        return SolidStateCost(
            page_size=self.page_size,
            page_cost=self.page_write_ms,
            issue_cost=self.issue_ms,
        )

    def reset(self) -> None:
        super().reset()
        self.dirty_pages = 0
        self.erases = 0
