"""Block translation layer with checkpoint/crash semantics.

TokuDB-style indirection: clients address blocks by an immutable logical
name; the translation layer maps names to physical addresses that the
reallocator is free to change.  The *durable* copy of the map is the one
written out at the last checkpoint — after a crash, lookups revert to it.

This substrate is what makes the checkpointed reallocator's guarantee
meaningful: because the reallocator never overwrites space freed since the
last checkpoint, the durable map always points at intact data, and
:meth:`BlockTranslationLayer.crash` therefore never loses a block.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, Optional

from repro.storage.checkpoint import CheckpointManager
from repro.storage.extent import Extent


class RecoveryError(RuntimeError):
    """Recovery found a durable mapping pointing at clobbered data."""


class BlockTranslationLayer:
    """Logical-name to physical-extent map with checkpointed durability."""

    def __init__(self, checkpoints: Optional[CheckpointManager] = None) -> None:
        self.checkpoints = checkpoints if checkpoints is not None else CheckpointManager()
        self._volatile: Dict[Hashable, Extent] = {}
        self._durable: Dict[Hashable, Extent] = {}
        #: Content tag per physical address region, used to detect data loss
        #: during crash-recovery tests.  Maps name -> extent it was last
        #: durably written at.
        self.updates_since_checkpoint = 0

    # ------------------------------------------------------------- volatile
    def record_allocation(self, name: Hashable, extent: Extent) -> None:
        """Record that ``name`` now lives at ``extent`` (new block)."""
        self._volatile[name] = extent
        self.updates_since_checkpoint += 1

    def record_move(self, name: Hashable, new_extent: Extent) -> None:
        """Record that ``name`` moved; its old extent is frozen until checkpoint."""
        old = self._volatile.get(name)
        if old is not None:
            self.checkpoints.record_free(old)
        self._volatile[name] = new_extent
        self.updates_since_checkpoint += 1

    def record_free(self, name: Hashable) -> None:
        """Record that ``name`` was deleted; its space is frozen until checkpoint."""
        old = self._volatile.pop(name, None)
        if old is not None:
            self.checkpoints.record_free(old)
        self.updates_since_checkpoint += 1

    def lookup(self, name: Hashable) -> Extent:
        """Current (volatile) location of ``name``."""
        return self._volatile[name]

    def __contains__(self, name: Hashable) -> bool:
        return name in self._volatile

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._volatile)

    def __len__(self) -> int:
        return len(self._volatile)

    # -------------------------------------------------------------- durable
    def checkpoint(self) -> int:
        """Persist the volatile map; freed space becomes reusable."""
        self._durable = dict(self._volatile)
        self.updates_since_checkpoint = 0
        return self.checkpoints.checkpoint()

    def durable_lookup(self, name: Hashable) -> Extent:
        """Location of ``name`` as of the last checkpoint."""
        return self._durable[name]

    def crash(self) -> None:
        """Simulate a crash: the volatile map is lost, recovery reloads durable."""
        self._volatile = dict(self._durable)
        self.updates_since_checkpoint = 0
        self.checkpoints.recover()

    def verify_recoverable(self, live_data: Dict[Hashable, Extent]) -> None:
        """Check every durable mapping still points at the block's data.

        ``live_data`` maps names to the extents where their data is
        *physically intact* (for simulation purposes, any location the block
        occupied that has not been overwritten).  Raises
        :class:`RecoveryError` if a durable mapping points elsewhere.
        """
        for name, durable_extent in self._durable.items():
            intact = live_data.get(name)
            if intact is None or intact != durable_extent:
                raise RecoveryError(
                    f"durable map for {name!r} points at {durable_extent} but "
                    f"intact data is at {intact}"
                )
