"""An arbitrarily large linear address space with indexed overlap detection.

The reallocators in :mod:`repro.core` mirror every placement into an
:class:`AddressSpace`.  Its two jobs are to *audit* the algorithms — raising
:class:`OverlapError` whenever two live objects would occupy the same
addresses — and to answer footprint queries (the paper's objective: the
largest allocated address).

Footprint and volume are maintained incrementally (lazy max-heap of extent
end addresses plus a running volume counter); the heap is compacted whenever
lazily-deleted entries dominate, so its memory stays bounded by the live set
even on delete-heavy traces.

Overlap auditing rides on an address-ordered index: a bisect-maintained list
of ``(start, order, end, name)`` entries.  While validation is on, the live
extents are pairwise disjoint by construction, so a placement can only clash
with its nearest neighbours in address order — one bisect plus two neighbour
probes, O(log n) per request instead of the pre-index scan over every live
object.  The same index makes :meth:`free_gaps` and :meth:`verify_disjoint`
single ordered walks with no sorting.  With ``validate=False`` the index is
not maintained at all (overlapping extents would break its invariant), and
the two queries fall back to sorting on demand, exactly like the pre-index
implementation.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from collections import Counter
from typing import Dict, Hashable, Iterator, List, Optional, Tuple

from repro.obs.telemetry import get_telemetry
from repro.storage.extent import Extent

#: Below this many heap entries compaction is never worth the rebuild.
_HEAP_COMPACT_MIN = 64


class OverlapError(RuntimeError):
    """Two live objects were placed on overlapping addresses."""


class AddressSpace:
    """Tracks which extent every live object occupies.

    Parameters
    ----------
    validate:
        When True (default) every placement and move is checked against the
        neighbouring live extents and :class:`OverlapError` is raised on a
        clash.  When False the check is skipped and the address index is not
        maintained (used for large unaudited benchmark runs).  The flag is
        fixed at construction time.
    """

    def __init__(self, validate: bool = True) -> None:
        self._validate = validate
        self._extents: Dict[Hashable, Extent] = {}
        self._volume = 0
        self._end_counts: Counter = Counter()
        self._end_heap: List[int] = []
        self._tracked_ends = 0
        # Address-ordered index, maintained only while validating: entries
        # are (start, order, end, name) where ``order`` is a unique serial
        # so bisection never compares the (possibly uncomparable) names.
        self._index: List[Tuple[int, int, int, Hashable]] = []
        self._order: Dict[Hashable, int] = {}
        self._order_seq = 0
        # Bound once at construction, only when telemetry is enabled; the
        # hot paths pay a single attribute-is-None check while it is off.
        telemetry = get_telemetry()
        if telemetry.enabled:
            self._c_probes = telemetry.counter("address_space.audit_probes")
            self._c_compactions = telemetry.counter("address_space.heap_compactions")
        else:
            self._c_probes = None
            self._c_compactions = None

    @property
    def validate(self) -> bool:
        """Whether placements are audited (fixed at construction time)."""
        return self._validate

    def __len__(self) -> int:
        return len(self._extents)

    def __contains__(self, name: Hashable) -> bool:
        return name in self._extents

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._extents)

    def extent_of(self, name: Hashable) -> Extent:
        """Return the extent occupied by ``name`` (KeyError if absent)."""
        return self._extents[name]

    def items(self) -> Iterator[Tuple[Hashable, Extent]]:
        return iter(self._extents.items())

    # -------------------------------------------------------------- internal
    def _find_overlap(
        self, extent: Extent, ignore: Optional[Hashable] = None
    ) -> Optional[Hashable]:
        """Nearest-neighbour overlap probe on the address-ordered index.

        Sound because the indexed extents (minus ``ignore``) are pairwise
        disjoint: sorted by start they are also sorted by end, so only the
        closest non-ignored entry on each side can reach into ``extent``.
        """
        counter = self._c_probes
        if counter is not None:
            counter.value += 1
        index = self._index
        pos = bisect_left(index, (extent.start,))
        i = pos - 1
        while i >= 0:  # nearest predecessor (start < extent.start)
            _, _, end, name = index[i]
            if name == ignore:
                i -= 1
                continue
            if end > extent.start:
                return name
            break
        i = pos
        size = len(index)
        while i < size:  # nearest successor (start >= extent.start)
            start, _, _, name = index[i]
            if name == ignore:
                i += 1
                continue
            if start < extent.end:
                return name
            break
        return None

    def _index_add(self, name: Hashable, extent: Extent) -> None:
        order = self._order_seq
        self._order_seq += 1
        self._order[name] = order
        insort(self._index, (extent.start, order, extent.end, name))

    def _index_remove(self, name: Hashable, extent: Extent) -> None:
        key = (extent.start, self._order.pop(name))
        del self._index[bisect_left(self._index, key)]

    def _track_end(self, end: int) -> None:
        self._end_counts[end] += 1
        self._tracked_ends += 1
        heapq.heappush(self._end_heap, -end)

    def _untrack_end(self, end: int) -> None:
        remaining = self._end_counts[end] - 1
        if remaining:
            self._end_counts[end] = remaining
        else:
            del self._end_counts[end]
        self._tracked_ends -= 1
        heap = self._end_heap
        if (
            len(heap) > _HEAP_COMPACT_MIN
            and len(heap) - self._tracked_ends > 2 * self._tracked_ends
        ):
            # Stale (lazily deleted) entries outnumber live ones 2:1 —
            # rebuild from the distinct live end addresses.  One entry per
            # distinct end suffices: footprint() only pops ends that are no
            # longer in the counter.
            compactions = self._c_compactions
            if compactions is not None:
                compactions.value += 1
            self._end_heap = [-end for end in self._end_counts]
            heapq.heapify(self._end_heap)

    # ------------------------------------------------------------ mutation
    def place(self, name: Hashable, extent: Extent) -> None:
        """Place a new object; raises if the name exists or addresses clash."""
        if name in self._extents:
            raise KeyError(f"object {name!r} is already placed")
        if self._validate:
            clash = self._find_overlap(extent)
            if clash is not None:
                raise OverlapError(
                    f"placing {name!r} at {extent} overlaps {clash!r} at "
                    f"{self._extents[clash]}"
                )
            self._index_add(name, extent)
        self._extents[name] = extent
        self._volume += extent.length
        self._track_end(extent.end)

    def move(self, name: Hashable, extent: Extent) -> Extent:
        """Move an existing object to ``extent``; returns the old extent."""
        if name not in self._extents:
            raise KeyError(f"object {name!r} is not placed")
        old = self._extents[name]
        if self._validate:
            clash = self._find_overlap(extent, ignore=name)
            if clash is not None:
                raise OverlapError(
                    f"moving {name!r} to {extent} overlaps {clash!r} at "
                    f"{self._extents[clash]}"
                )
            self._index_remove(name, old)
            self._index_add(name, extent)
        self._extents[name] = extent
        self._volume += extent.length - old.length
        self._untrack_end(old.end)
        self._track_end(extent.end)
        return old

    def remove(self, name: Hashable) -> Extent:
        """Remove an object and return the extent it used to occupy."""
        extent = self._extents.pop(name)
        if self._validate:
            self._index_remove(name, extent)
        self._volume -= extent.length
        self._untrack_end(extent.end)
        return extent

    # -------------------------------------------------------------- queries
    def footprint(self) -> int:
        """Largest allocated address (the paper's footprint objective)."""
        heap = self._end_heap
        counts = self._end_counts
        while heap and -heap[0] not in counts:
            heapq.heappop(heap)
        return -heap[0] if heap else 0

    def volume(self) -> int:
        """Total size of live objects (the paper's ``V``)."""
        return self._volume

    def utilization(self) -> float:
        """Volume divided by footprint (1.0 means a perfectly packed prefix)."""
        footprint = self.footprint()
        if footprint == 0:
            return 1.0
        return self._volume / footprint

    def _ordered_spans(self) -> Iterator[Tuple[int, int, Hashable]]:
        """Yield (start, end, name) in address order; sorts only if unindexed."""
        if self._validate:
            for start, _, end, name in self._index:
                yield start, end, name
        else:
            for name, extent in sorted(
                self._extents.items(), key=lambda item: item[1].start
            ):
                yield extent.start, extent.end, name

    def free_gaps(self) -> List[Extent]:
        """Return the maximal free extents below the footprint."""
        gaps: List[Extent] = []
        cursor = 0
        for start, end, _ in self._ordered_spans():
            if start > cursor:
                gaps.append(Extent(cursor, start - cursor))
            if end > cursor:
                cursor = end
        return gaps

    def verify_disjoint(self) -> None:
        """Exhaustively re-check that all live extents are pairwise disjoint."""
        previous: Optional[Tuple[int, int, Hashable]] = None
        for span in self._ordered_spans():
            if previous is not None and previous[1] > span[0]:
                name_a, name_b = previous[2], span[2]
                raise OverlapError(
                    f"{name_a!r} at {self._extents[name_a]} overlaps "
                    f"{name_b!r} at {self._extents[name_b]}"
                )
            previous = span

    def snapshot(self) -> Dict[Hashable, Extent]:
        """A copy of the current name -> extent mapping."""
        return dict(self._extents)
