"""An arbitrarily large linear address space with overlap detection.

The reallocators in :mod:`repro.core` mirror every placement into an
:class:`AddressSpace`.  Its two jobs are to *audit* the algorithms — raising
:class:`OverlapError` whenever two live objects would occupy the same
addresses — and to answer footprint queries (the paper's objective: the
largest allocated address).

Footprint and volume are maintained incrementally (lazy max-heap of extent
end addresses plus a running volume counter) so per-request accounting stays
cheap even for million-request traces.  Overlap auditing is a linear scan per
placement; it is enabled by default and switched off by the benchmark harness
for very large runs (``validate=False``), where the algorithm-level tests
have already established correctness.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Dict, Hashable, Iterator, List, Optional, Tuple

from repro.storage.extent import Extent


class OverlapError(RuntimeError):
    """Two live objects were placed on overlapping addresses."""


class AddressSpace:
    """Tracks which extent every live object occupies.

    Parameters
    ----------
    validate:
        When True (default) every placement and move is checked against all
        live extents and :class:`OverlapError` is raised on a clash.  When
        False the check is skipped (used for large benchmark runs).
    """

    def __init__(self, validate: bool = True) -> None:
        self.validate = validate
        self._extents: Dict[Hashable, Extent] = {}
        self._volume = 0
        self._end_counts: Counter = Counter()
        self._end_heap: List[int] = []

    def __len__(self) -> int:
        return len(self._extents)

    def __contains__(self, name: Hashable) -> bool:
        return name in self._extents

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._extents)

    def extent_of(self, name: Hashable) -> Extent:
        """Return the extent occupied by ``name`` (KeyError if absent)."""
        return self._extents[name]

    def items(self) -> Iterator[Tuple[Hashable, Extent]]:
        return iter(self._extents.items())

    # -------------------------------------------------------------- internal
    def _find_overlap(
        self, extent: Extent, ignore: Optional[Hashable] = None
    ) -> Optional[Hashable]:
        for name, existing in self._extents.items():
            if name == ignore:
                continue
            if existing.overlaps(extent):
                return name
        return None

    def _track_end(self, end: int) -> None:
        self._end_counts[end] += 1
        heapq.heappush(self._end_heap, -end)

    def _untrack_end(self, end: int) -> None:
        remaining = self._end_counts[end] - 1
        if remaining:
            self._end_counts[end] = remaining
        else:
            del self._end_counts[end]

    # ------------------------------------------------------------ mutation
    def place(self, name: Hashable, extent: Extent) -> None:
        """Place a new object; raises if the name exists or addresses clash."""
        if name in self._extents:
            raise KeyError(f"object {name!r} is already placed")
        if self.validate:
            clash = self._find_overlap(extent)
            if clash is not None:
                raise OverlapError(
                    f"placing {name!r} at {extent} overlaps {clash!r} at "
                    f"{self._extents[clash]}"
                )
        self._extents[name] = extent
        self._volume += extent.length
        self._track_end(extent.end)

    def move(self, name: Hashable, extent: Extent) -> Extent:
        """Move an existing object to ``extent``; returns the old extent."""
        if name not in self._extents:
            raise KeyError(f"object {name!r} is not placed")
        if self.validate:
            clash = self._find_overlap(extent, ignore=name)
            if clash is not None:
                raise OverlapError(
                    f"moving {name!r} to {extent} overlaps {clash!r} at "
                    f"{self._extents[clash]}"
                )
        old = self._extents[name]
        self._extents[name] = extent
        self._volume += extent.length - old.length
        self._untrack_end(old.end)
        self._track_end(extent.end)
        return old

    def remove(self, name: Hashable) -> Extent:
        """Remove an object and return the extent it used to occupy."""
        extent = self._extents.pop(name)
        self._volume -= extent.length
        self._untrack_end(extent.end)
        return extent

    # -------------------------------------------------------------- queries
    def footprint(self) -> int:
        """Largest allocated address (the paper's footprint objective)."""
        heap = self._end_heap
        counts = self._end_counts
        while heap and -heap[0] not in counts:
            heapq.heappop(heap)
        return -heap[0] if heap else 0

    def volume(self) -> int:
        """Total size of live objects (the paper's ``V``)."""
        return self._volume

    def utilization(self) -> float:
        """Volume divided by footprint (1.0 means a perfectly packed prefix)."""
        footprint = self.footprint()
        if footprint == 0:
            return 1.0
        return self._volume / footprint

    def free_gaps(self) -> List[Extent]:
        """Return the maximal free extents below the footprint."""
        gaps: List[Extent] = []
        cursor = 0
        for extent in sorted(self._extents.values(), key=lambda e: e.start):
            if extent.start > cursor:
                gaps.append(Extent(cursor, extent.start - cursor))
            cursor = max(cursor, extent.end)
        return gaps

    def verify_disjoint(self) -> None:
        """Exhaustively re-check that all live extents are pairwise disjoint."""
        ordered = sorted(self._extents.items(), key=lambda item: item[1].start)
        for (name_a, ext_a), (name_b, ext_b) in zip(ordered, ordered[1:]):
            if ext_a.end > ext_b.start:
                raise OverlapError(
                    f"{name_a!r} at {ext_a} overlaps {name_b!r} at {ext_b}"
                )

    def snapshot(self) -> Dict[Hashable, Extent]:
        """A copy of the current name -> extent mapping."""
        return dict(self._extents)
