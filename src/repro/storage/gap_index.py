"""A two-way index over the free gaps of a linear address space.

The classical free-list allocators (:mod:`repro.allocators.free_list`) keep
the maximal free extents below the high-water mark and, per insert, pick one
by policy: First Fit wants the lowest-addressed fitting gap, Best Fit the
tightest, Worst Fit the widest.  A flat address-ordered list answers each of
those with a full scan; :class:`GapIndex` answers all three in O(log n) by
maintaining the same gap set in two orders at once:

* an **address-ordered treap** whose nodes carry the maximum gap length in
  their subtree (for leftmost-fitting descent — exact First Fit) and subtree
  sizes (for rank queries, which Next Fit's roving pointer needs), and whose
  key order gives the predecessor/successor probes that make coalescing a
  pair of O(log n) lookups;
* a **size-ordered treap** over ``(length, start)`` keys, where the Best
  Fit answer is the ceiling of the request size and the Worst Fit answer is
  the lowest-addressed key of the maximum length — both O(log n) descents.
  (Earlier revisions kept this order in a flat ``bisect``/``insort`` list,
  which answers the queries in O(log n) but pays O(n) memmove per insert
  and delete; with hundreds of thousands of live gaps the *mutations*
  dominated, see ``benchmarks/bench_address_space.py``.)

Every policy answer is *identical* to the one the linear scans produce —
the index changes the cost of a query, never its result.  A running total
of gap lengths makes ``free volume`` O(1).

The treap's priorities come from a fixed-seed generator, so tree shapes —
and therefore runtimes — are reproducible; results never depend on shape.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

from repro.obs.telemetry import get_telemetry
from repro.storage.extent import Extent


class _Node:
    __slots__ = ("start", "length", "priority", "left", "right", "max_length", "count")

    def __init__(self, start: int, length: int, priority: int) -> None:
        self.start = start
        self.length = length
        self.priority = priority
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.max_length = length
        self.count = 1


def _pull(node: _Node) -> _Node:
    """Recompute a node's subtree aggregates from its children."""
    max_length = node.length
    count = 1
    left, right = node.left, node.right
    if left is not None:
        count += left.count
        if left.max_length > max_length:
            max_length = left.max_length
    if right is not None:
        count += right.count
        if right.max_length > max_length:
            max_length = right.max_length
    node.max_length = max_length
    node.count = count
    return node


def _insert(root: Optional[_Node], node: _Node) -> _Node:
    if root is None:
        return node
    if node.priority > root.priority:
        # Rotate ``node`` to the top: split ``root`` around node.start.
        node.left, node.right = _split(root, node.start)
        return _pull(node)
    if node.start < root.start:
        root.left = _insert(root.left, node)
    else:
        root.right = _insert(root.right, node)
    return _pull(root)


def _split(root: Optional[_Node], start: int) -> Tuple[Optional[_Node], Optional[_Node]]:
    """Split into (< start, > start) subtrees; ``start`` itself must be absent."""
    if root is None:
        return None, None
    if root.start < start:
        left, right = _split(root.right, start)
        root.right = left
        return _pull(root), right
    left, right = _split(root.left, start)
    root.left = right
    return left, _pull(root)


def _merge(left: Optional[_Node], right: Optional[_Node]) -> Optional[_Node]:
    if left is None:
        return right
    if right is None:
        return left
    if left.priority > right.priority:
        left.right = _merge(left.right, right)
        return _pull(left)
    right.left = _merge(left, right.left)
    return _pull(right)


def _fit_at_or_after(node: Optional[_Node], rank: int, size: int) -> Optional[Tuple[int, int]]:
    """``(rank, start)`` of the lowest-ranked gap with rank >= ``rank`` and
    length >= ``size`` in ``node``'s subtree (ranks subtree-relative), or None.

    O(height): the recursion follows the single rank boundary path; every
    subtree fully inside the range is entered only when its ``max_length``
    guarantees a fit, in which case the plain leftmost-fit descent succeeds
    without backtracking.
    """
    if node is None or node.max_length < size or rank >= node.count:
        return None
    if rank <= 0:
        # Whole subtree in range: plain leftmost-fit descent, tracking rank.
        base = 0
        while True:
            left = node.left
            left_count = left.count if left is not None else 0
            if left is not None and left.max_length >= size:
                node = left
            elif node.length >= size:
                return base + left_count, node.start
            else:
                base += left_count + 1
                node = node.right  # guaranteed by the subtree max
    left = node.left
    left_count = left.count if left is not None else 0
    if rank < left_count:
        found = _fit_at_or_after(left, rank, size)
        if found is not None:
            return found
    if rank <= left_count and node.length >= size:
        return left_count, node.start
    found = _fit_at_or_after(node.right, rank - left_count - 1, size)
    if found is not None:
        return found[0] + left_count + 1, found[1]
    return None


class _SizeNode:
    """Node of the size-ordered treap: keyed by ``(length, start)``."""

    __slots__ = ("key", "priority", "left", "right")

    def __init__(self, key: Tuple[int, int], priority: int) -> None:
        self.key = key
        self.priority = priority
        self.left: Optional[_SizeNode] = None
        self.right: Optional[_SizeNode] = None


def _size_split(
    root: Optional[_SizeNode], key: Tuple[int, int]
) -> Tuple[Optional[_SizeNode], Optional[_SizeNode]]:
    """Split into (< key, > key) subtrees; ``key`` itself must be absent."""
    if root is None:
        return None, None
    if root.key < key:
        left, right = _size_split(root.right, key)
        root.right = left
        return root, right
    left, right = _size_split(root.left, key)
    root.left = right
    return left, root


def _size_insert(root: Optional[_SizeNode], node: _SizeNode) -> _SizeNode:
    if root is None:
        return node
    if node.priority > root.priority:
        node.left, node.right = _size_split(root, node.key)
        return node
    if node.key < root.key:
        root.left = _size_insert(root.left, node)
    else:
        root.right = _size_insert(root.right, node)
    return root


def _size_merge(
    left: Optional[_SizeNode], right: Optional[_SizeNode]
) -> Optional[_SizeNode]:
    if left is None:
        return right
    if right is None:
        return left
    if left.priority > right.priority:
        left.right = _size_merge(left.right, right)
        return left
    right.left = _size_merge(left, right.left)
    return right


def _size_delete(root: _SizeNode, key: Tuple[int, int]) -> Optional[_SizeNode]:
    if root.key == key:
        return _size_merge(root.left, root.right)
    if key < root.key:
        assert root.left is not None, f"no size entry {key}"
        root.left = _size_delete(root.left, key)
    else:
        assert root.right is not None, f"no size entry {key}"
        root.right = _size_delete(root.right, key)
    return root


def _size_ceiling(
    root: Optional[_SizeNode], probe: Tuple[int, ...]
) -> Optional[Tuple[int, int]]:
    """Smallest key >= ``probe`` (a 1-tuple probe sorts before every
    ``(length, start)`` key of that length, so ``(size,)`` finds the
    tightest fitting gap, address-lowest on ties)."""
    found: Optional[Tuple[int, int]] = None
    while root is not None:
        if root.key >= probe:
            found = root.key
            root = root.left
        else:
            root = root.right
    return found


def _size_max(root: _SizeNode) -> Tuple[int, int]:
    while root.right is not None:
        root = root.right
    return root.key


def _delete(root: _Node, start: int) -> Optional[_Node]:
    if root.start == start:
        return _merge(root.left, root.right)
    if start < root.start:
        assert root.left is not None, f"no gap at {start}"
        root.left = _delete(root.left, start)
    else:
        assert root.right is not None, f"no gap at {start}"
        root.right = _delete(root.right, start)
    return _pull(root)


class GapIndex:
    """Address- and size-indexed set of disjoint, non-adjacent free gaps."""

    def __init__(self) -> None:
        self._root: Optional[_Node] = None
        self._size_root: Optional[_SizeNode] = None
        self._total = 0
        self._rng = random.Random(0x9A95)
        # Telemetry counters are bound once, at construction, and only when
        # the process-current session is enabled; with telemetry off every
        # hot method pays exactly one attribute-is-None check.
        telemetry = get_telemetry()
        if telemetry.enabled:
            self._c_queries = telemetry.counter("gap_index.policy_queries")
            self._c_adds = telemetry.counter("gap_index.gap_adds")
            self._c_removes = telemetry.counter("gap_index.gap_removes")
            self._c_coalesces = telemetry.counter("gap_index.coalesce_probes")
        else:
            self._c_queries = None
            self._c_adds = None
            self._c_removes = None
            self._c_coalesces = None

    # ------------------------------------------------------------- basics
    def __len__(self) -> int:
        return self._root.count if self._root is not None else 0

    def __bool__(self) -> bool:
        return self._root is not None

    def __iter__(self) -> Iterator[Extent]:
        """Yield the gaps as extents in address order."""
        for start, length in self._walk(self._root):
            yield Extent(start, length)

    def _walk(self, node: Optional[_Node]) -> Iterator[Tuple[int, int]]:
        stack: List[_Node] = []
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.start, node.length
            node = node.right

    @property
    def total_free(self) -> int:
        """Sum of all gap lengths (maintained as a running counter)."""
        return self._total

    def length_at(self, start: int) -> Optional[int]:
        """Length of the gap starting exactly at ``start`` (None if absent)."""
        node = self._root
        while node is not None:
            if start == node.start:
                return node.length
            node = node.left if start < node.start else node.right
        return None

    # ----------------------------------------------------------- mutation
    def add(self, extent: Extent) -> None:
        """Insert a gap; the caller guarantees disjointness from existing gaps."""
        counter = self._c_adds
        if counter is not None:
            counter.value += 1
        node = _Node(extent.start, extent.length, self._rng.getrandbits(62))
        self._root = _insert(self._root, node)
        size_node = _SizeNode((extent.length, extent.start), self._rng.getrandbits(62))
        self._size_root = _size_insert(self._size_root, size_node)
        self._total += extent.length

    def remove(self, start: int) -> Extent:
        """Remove and return the gap starting at ``start``."""
        length = self.length_at(start)
        if length is None:
            raise KeyError(f"no gap starts at address {start}")
        self._remove_known(start, length)
        return Extent(start, length)

    def _remove_known(self, start: int, length: int) -> None:
        counter = self._c_removes
        if counter is not None:
            counter.value += 1
        self._root = _delete(self._root, start)
        assert self._size_root is not None, f"no gap at {start}"
        self._size_root = _size_delete(self._size_root, (length, start))
        self._total -= length

    def take(self, start: int, size: int) -> None:
        """Allocate ``size`` units from the front of the gap at ``start``."""
        length = self.length_at(start)
        if length is None:
            raise KeyError(f"no gap starts at address {start}")
        if length < size:
            # Raise before mutating: a failed insert must leave the free
            # list intact so the request can be retried.
            raise ValueError(
                f"gap {Extent(start, length)} is smaller than the request ({size})"
            )
        self._remove_known(start, length)
        if length > size:
            self.add(Extent(start + size, length - size))

    def absorb_adjacent(self, extent: Extent) -> Extent:
        """Remove gaps adjacent to ``extent`` and return the merged extent.

        The merged extent is *not* inserted: the caller decides whether it
        becomes a gap or shrinks the high-water mark.
        """
        counter = self._c_coalesces
        if counter is not None:
            counter.value += 1
        start, end = extent.start, extent.end
        predecessor = self._neighbor(extent.start, before=True)
        if predecessor is not None and predecessor.end == start:
            self._remove_known(predecessor.start, predecessor.length)
            start = predecessor.start
        successor = self._neighbor(extent.start, before=False)
        if successor is not None and successor.start == end:
            self._remove_known(successor.start, successor.length)
            end = successor.end
        return Extent(start, end - start)

    def _neighbor(self, start: int, before: bool) -> Optional[Extent]:
        """Nearest gap strictly before/after ``start`` in address order."""
        node = self._root
        found: Optional[_Node] = None
        while node is not None:
            if (node.start < start) if before else (node.start > start):
                found = node
                node = node.right if before else node.left
            else:
                node = node.left if before else node.right
        return Extent(found.start, found.length) if found is not None else None

    # ------------------------------------------------------ policy queries
    def first_fit(self, size: int) -> Optional[int]:
        """Start of the lowest-addressed gap with length >= ``size``."""
        counter = self._c_queries
        if counter is not None:
            counter.value += 1
        node = self._root
        if node is None or node.max_length < size:
            return None
        while True:
            if node.left is not None and node.left.max_length >= size:
                node = node.left
            elif node.length >= size:
                return node.start
            else:
                node = node.right  # guaranteed by the subtree max

    def best_fit(self, size: int) -> Optional[int]:
        """Start of the tightest fitting gap (address-lowest on ties)."""
        counter = self._c_queries
        if counter is not None:
            counter.value += 1
        found = _size_ceiling(self._size_root, (size,))
        if found is None:
            return None
        return found[1]

    def worst_fit(self, size: int) -> Optional[int]:
        """Start of the widest gap (address-lowest on ties), if it fits."""
        counter = self._c_queries
        if counter is not None:
            counter.value += 1
        if self._size_root is None:
            return None
        widest = _size_max(self._size_root)[0]
        if widest < size:
            return None
        found = _size_ceiling(self._size_root, (widest,))
        assert found is not None  # the max key itself is >= (widest,)
        return found[1]

    def next_fit(self, size: int, rover: int) -> Optional[Tuple[int, int]]:
        """``(rank, start)`` of the gap Next Fit's cyclic probe picks.

        Equivalent to scanning :meth:`scan` ``(rover)`` for the first gap
        with ``length >= size`` — including the seed scan's clamp of an
        out-of-range rover to the last gap — but O(log n): one rank-bounded
        descent over ranks ``>= min(rover, len - 1)`` plus, on wrap-around,
        one plain leftmost-fit descent over the low ranks.
        """
        counter = self._c_queries
        if counter is not None:
            counter.value += 1
        total = len(self)
        if total == 0:
            return None
        rank = min(rover, total - 1)
        found = _fit_at_or_after(self._root, rank, size)
        if found is None and rank > 0:
            # Wrap around: the lowest-ranked fit overall necessarily sits
            # below ``rank`` (anything at or above it was just ruled out).
            found = _fit_at_or_after(self._root, 0, size)
        return found

    def free_extents(self) -> List[Extent]:
        """The gaps as a list of extents in address order (an O(n) walk)."""
        return list(self)

    def scan(self, rank: int) -> Iterator[Tuple[int, int, int]]:
        """Yield every ``(rank, start, length)`` once, cyclically from ``rank``.

        This is Next Fit's probe order: the address-ordered gap list read
        from position ``rank`` with wrap-around.
        """
        total = len(self)
        if total == 0:
            return
        rank = min(rank, total - 1)
        for offset, (start, length) in enumerate(self._walk_from(rank)):
            yield rank + offset, start, length
        for position, (start, length) in enumerate(self._walk(self._root)):
            if position >= rank:
                return
            yield position, start, length

    def _walk_from(self, rank: int) -> Iterator[Tuple[int, int]]:
        """In-order walk starting at the node of the given rank."""
        stack: List[_Node] = []
        node = self._root
        while node is not None:
            left_count = node.left.count if node.left is not None else 0
            if rank < left_count:
                stack.append(node)
                node = node.left
            elif rank == left_count:
                stack.append(node)
                break
            else:
                rank -= left_count + 1
                node = node.right
        while stack:
            node = stack.pop()
            yield node.start, node.length
            child = node.right
            while child is not None:
                stack.append(child)
                child = child.left
