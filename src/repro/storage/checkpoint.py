"""Checkpoint manager enforcing the durability rule of Section 3.1.

When an object is moved, the logical-to-physical map changes; until the next
checkpoint persists that map, the *old* copy of the object must remain intact
so a crash can recover it.  Consequently an allocator may not write into any
address range that was freed (by a delete or by a move away from it) after
the most recent checkpoint.

:class:`CheckpointManager` records freed extents, raises
:class:`FreedSpaceViolation` if an algorithm writes into one of them, and
exposes counters used by experiment E5 (checkpoints per flush, Lemma 3.3).
"""

from __future__ import annotations

from typing import List, Optional

from repro.faults.injector import fault_point
from repro.storage.extent import Extent, coalesce


class FreedSpaceViolation(RuntimeError):
    """An algorithm wrote into space freed since the last checkpoint."""


class CheckpointManager:
    """Tracks freed-but-not-yet-checkpointed space and checkpoint counts.

    Parameters
    ----------
    enforce:
        If True (default), :meth:`assert_writable` raises on violations.  The
        checkpointed reallocator is always run with enforcement on in tests;
        turning it off lets experiments measure how often a *non*-compliant
        algorithm would have violated durability.
    """

    def __init__(self, enforce: bool = True) -> None:
        self.enforce = enforce
        self._frozen: List[Extent] = []
        self.checkpoints_taken = 0
        self.violations = 0

    # ------------------------------------------------------------------ API
    def record_free(self, extent: Extent) -> None:
        """Mark ``extent`` as freed since the last checkpoint."""
        self._frozen.append(extent)
        if len(self._frozen) > 64:
            self._frozen = coalesce(self._frozen)

    def frozen_extents(self) -> List[Extent]:
        """The extents currently unwritable because they await a checkpoint."""
        self._frozen = coalesce(self._frozen)
        return list(self._frozen)

    def is_writable(self, extent: Extent) -> bool:
        """True if ``extent`` does not intersect any frozen extent."""
        return all(not extent.overlaps(frozen) for frozen in self._frozen)

    def assert_writable(self, extent: Extent, context: Optional[str] = None) -> None:
        """Raise :class:`FreedSpaceViolation` if ``extent`` is frozen."""
        if self.is_writable(extent):
            return
        self.violations += 1
        if self.enforce:
            suffix = f" ({context})" if context else ""
            raise FreedSpaceViolation(
                f"write to {extent} intersects space freed since the last "
                f"checkpoint{suffix}"
            )

    def checkpoint(self) -> int:
        """Persist the translation map: all frozen space becomes reusable.

        Returns the total number of checkpoints taken so far.
        """
        fault_point("checkpoint.persist")
        self._frozen.clear()
        self.checkpoints_taken += 1
        return self.checkpoints_taken

    def reset_counters(self) -> None:
        """Zero the checkpoint and violation counters (frozen space kept)."""
        self.checkpoints_taken = 0
        self.violations = 0
