"""Checkpoint manager enforcing the durability rule of Section 3.1.

When an object is moved, the logical-to-physical map changes; until the next
checkpoint persists that map, the *old* copy of the object must remain intact
so a crash can recover it.  Consequently an allocator may not write into any
address range that was freed (by a delete or by a move away from it) after
the most recent checkpoint.

:class:`CheckpointManager` records freed extents, raises
:class:`FreedSpaceViolation` if an algorithm writes into one of them, and
exposes counters used by experiment E5 (checkpoints per flush, Lemma 3.3).

The module also carries the snapshot file helpers
(:func:`write_snapshot` / :func:`read_snapshot`) that the engine's session
layer and the live allocation service build their checkpoint/restore on:
an atomically-replaced pickle with a small header, written through the
same ``.tmp`` + ``os.replace`` discipline as every other artifact.
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Dict, List, Optional

from repro.faults.injector import fault_point, fault_write
from repro.storage.extent import Extent, coalesce


class FreedSpaceViolation(RuntimeError):
    """An algorithm wrote into space freed since the last checkpoint."""


class CheckpointManager:
    """Tracks freed-but-not-yet-checkpointed space and checkpoint counts.

    Parameters
    ----------
    enforce:
        If True (default), :meth:`assert_writable` raises on violations.  The
        checkpointed reallocator is always run with enforcement on in tests;
        turning it off lets experiments measure how often a *non*-compliant
        algorithm would have violated durability.
    """

    def __init__(self, enforce: bool = True) -> None:
        self.enforce = enforce
        self._frozen: List[Extent] = []
        self.checkpoints_taken = 0
        self.violations = 0

    # ------------------------------------------------------------------ API
    def record_free(self, extent: Extent) -> None:
        """Mark ``extent`` as freed since the last checkpoint."""
        self._frozen.append(extent)
        if len(self._frozen) > 64:
            self._frozen = coalesce(self._frozen)

    def frozen_extents(self) -> List[Extent]:
        """The extents currently unwritable because they await a checkpoint."""
        self._frozen = coalesce(self._frozen)
        return list(self._frozen)

    def is_writable(self, extent: Extent) -> bool:
        """True if ``extent`` does not intersect any frozen extent."""
        return all(not extent.overlaps(frozen) for frozen in self._frozen)

    def assert_writable(self, extent: Extent, context: Optional[str] = None) -> None:
        """Raise :class:`FreedSpaceViolation` if ``extent`` is frozen."""
        if self.is_writable(extent):
            return
        self.violations += 1
        if self.enforce:
            suffix = f" ({context})" if context else ""
            raise FreedSpaceViolation(
                f"write to {extent} intersects space freed since the last "
                f"checkpoint{suffix}"
            )

    def checkpoint(self) -> int:
        """Persist the translation map: all frozen space becomes reusable.

        Returns the total number of checkpoints taken so far.
        """
        fault_point("checkpoint.persist")
        self._frozen.clear()
        self.checkpoints_taken += 1
        return self.checkpoints_taken

    def recover(self) -> None:
        """Crash recovery: thaw all frozen space, keep the counters.

        Space freed since the last checkpoint was, by definition, never
        reused, so after a crash the pre-crash frozen set is irrelevant.
        Callers (e.g. ``BlockTranslationLayer.crash``) use this instead of
        poking the private extent list.
        """
        self._frozen.clear()

    def reset_counters(self) -> None:
        """Zero the checkpoint and violation counters (frozen space kept)."""
        self.checkpoints_taken = 0
        self.violations = 0

    # -------------------------------------------------------- serialization
    def to_state(self) -> Dict[str, Any]:
        """A JSON-safe dict capturing the manager's full state.

        Round-trips through :meth:`from_state`; used by session snapshots
        so checkpoint bookkeeping survives a serialize/restore cycle
        without callers reaching into private attributes.
        """
        self._frozen = coalesce(self._frozen)
        return {
            "enforce": self.enforce,
            "frozen": [[extent.start, extent.length] for extent in self._frozen],
            "checkpoints_taken": self.checkpoints_taken,
            "violations": self.violations,
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "CheckpointManager":
        """Rebuild a manager from a :meth:`to_state` dict."""
        manager = cls(enforce=bool(state.get("enforce", True)))
        manager._frozen = [
            Extent(int(start), int(length)) for start, length in state.get("frozen", [])
        ]
        manager.checkpoints_taken = int(state.get("checkpoints_taken", 0))
        manager.violations = int(state.get("violations", 0))
        return manager


# ------------------------------------------------------------ snapshot files
SNAPSHOT_MAGIC = b"\x93RPSNAP1"


class SnapshotError(RuntimeError):
    """A snapshot file is missing, truncated, or not a snapshot at all."""


def write_snapshot(path, payload: Any) -> None:
    """Atomically write ``payload`` (any picklable object) to ``path``.

    The bytes land in a ``.tmp`` sibling first and are atomically renamed
    over ``path``, so a crash mid-write never leaves a half-snapshot under
    the final name.  The ``checkpoint.snapshot`` fault site covers the body
    write for the chaos harness.
    """
    data = SNAPSHOT_MAGIC + pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as handle:
        fault_write("checkpoint.snapshot", handle, data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def read_snapshot(path) -> Any:
    """Read a :func:`write_snapshot` file back; loud on anything malformed."""
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as error:
        raise SnapshotError(f"{path}: cannot read snapshot ({error})") from error
    if not blob.startswith(SNAPSHOT_MAGIC):
        raise SnapshotError(
            f"{path}: not a snapshot file (bad magic {blob[:8]!r})"
        )
    try:
        return pickle.loads(blob[len(SNAPSHOT_MAGIC):])
    except Exception as error:
        raise SnapshotError(
            f"{path}: truncated or corrupt snapshot ({error})"
        ) from error
