"""Simulated storage substrate.

The paper assumes objects live in "an arbitrarily large array (address
space)" on some physical medium (RAM, rotating disk, SSD) and, in the
database setting of Section 3, behind a block translation layer with
checkpoint-based durability.  This package provides those substrates:

* :mod:`repro.storage.extent` / :mod:`repro.storage.address_space` — extent
  arithmetic and an address space that detects overlapping placements via a
  bisect-maintained address-ordered index,
* :mod:`repro.storage.gap_index` — the address+size indexed free-gap set
  behind the classical free-list allocators (O(log n) first/best/worst fit),
* :mod:`repro.storage.devices` — timing models for RAM, disk and SSD that
  can both drive a simulation and derive a cost function,
* :mod:`repro.storage.checkpoint` — the checkpoint manager that enforces the
  "never write to space freed since the last checkpoint" rule,
* :mod:`repro.storage.translation` — a TokuDB-style block translation layer
  with crash/recovery semantics.
"""

from repro.storage.extent import Extent, coalesce, total_length
from repro.storage.address_space import AddressSpace, OverlapError
from repro.storage.gap_index import GapIndex
from repro.storage.checkpoint import CheckpointManager, FreedSpaceViolation
from repro.storage.devices import (
    DeviceModel,
    MainMemoryDevice,
    RotatingDiskDevice,
    SolidStateDevice,
    DeviceStats,
)
from repro.storage.translation import BlockTranslationLayer, RecoveryError

__all__ = [
    "Extent",
    "coalesce",
    "total_length",
    "AddressSpace",
    "OverlapError",
    "GapIndex",
    "CheckpointManager",
    "FreedSpaceViolation",
    "DeviceModel",
    "MainMemoryDevice",
    "RotatingDiskDevice",
    "SolidStateDevice",
    "DeviceStats",
    "BlockTranslationLayer",
    "RecoveryError",
]
