"""The paper's primary contribution: cost-oblivious storage reallocation.

Contents
--------

* :mod:`repro.core.size_classes` — power-of-two size-class arithmetic.
* :mod:`repro.core.base` — the :class:`~repro.core.base.Allocator` interface
  shared by the paper's reallocators and every baseline, with uniform move /
  cost accounting.
* :mod:`repro.core.reallocator` — the Section 2 amortized cost-oblivious
  reallocator (Theorem 2.1).
* :mod:`repro.core.checkpointed` — the Section 3.2 variant that completes
  every buffer flush within ``O(1/eps)`` checkpoints and never overwrites
  space freed since the last checkpoint (Lemmas 3.1–3.3).
* :mod:`repro.core.deamortized` — the Section 3.3 variant with worst-case
  per-update reallocation volume ``O((1/eps) w + Delta)`` (Lemmas 3.4–3.6).
* :mod:`repro.core.defragmenter` — the Theorem 2.7 cost-oblivious
  defragmenter / sorter.
* :mod:`repro.core.invariants` — executable checks of Invariants 2.2–2.4.
* :mod:`repro.core.layout` — ASCII rendering of the region layout
  (reproduces Figures 2 and 3).
"""

from repro.core.base import Allocator, AllocationError
from repro.core.events import MoveEvent, RequestRecord, FlushRecord
from repro.core.stats import AllocatorStats
from repro.core.size_classes import (
    size_class_of,
    class_min_size,
    class_max_size,
    num_size_classes,
)
from repro.core.reallocator import CostObliviousReallocator
from repro.core.checkpointed import CheckpointedReallocator
from repro.core.deamortized import DeamortizedReallocator
from repro.core.defragmenter import Defragmenter, DefragmentationResult
from repro.core.invariants import check_invariants, InvariantViolation
from repro.core.layout import render_layout, layout_regions

__all__ = [
    "Allocator",
    "AllocationError",
    "MoveEvent",
    "RequestRecord",
    "FlushRecord",
    "AllocatorStats",
    "size_class_of",
    "class_min_size",
    "class_max_size",
    "num_size_classes",
    "CostObliviousReallocator",
    "CheckpointedReallocator",
    "DeamortizedReallocator",
    "Defragmenter",
    "DefragmentationResult",
    "check_invariants",
    "InvariantViolation",
    "render_layout",
    "layout_regions",
]
