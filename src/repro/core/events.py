"""Event records emitted by allocators: moves, requests, and flushes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional, Sequence, Tuple

from repro.storage.extent import Extent


@dataclass(frozen=True, slots=True)
class MoveEvent:
    """One physical relocation of an object.

    ``source`` is ``None`` for the object's very first placement (an
    allocation, which the competitive analysis charges to the allocation cost
    rather than the reallocation cost).  ``reason`` is a short tag such as
    ``"flush:pack"`` or ``"defrag:crunch"`` describing which step of which
    procedure performed the move.
    """

    name: Hashable
    size: int
    source: Optional[Extent]
    destination: Extent
    reason: str = ""

    @property
    def is_reallocation(self) -> bool:
        """True if this event moves existing data (source is known)."""
        return self.source is not None


@dataclass(frozen=True, slots=True)
class FlushRecord:
    """Summary of one buffer-flush operation."""

    boundary_class: int
    classes_flushed: Tuple[int, ...]
    moved_volume: int
    move_count: int
    checkpoints: int = 0


@dataclass(slots=True)
class RequestRecord:
    """Everything that happened while serving one insert/delete request."""

    index: int
    op: str
    name: Hashable
    size: int
    moves: Sequence[MoveEvent] = field(default_factory=tuple)
    flush: Optional[FlushRecord] = None
    checkpoints: int = 0
    footprint_after: int = 0
    volume_after: int = 0

    @property
    def moved_volume(self) -> int:
        """Total volume of data relocated while serving this request."""
        return sum(move.size for move in self.moves if move.is_reallocation)

    @property
    def move_count(self) -> int:
        """Number of relocations performed while serving this request."""
        return sum(1 for move in self.moves if move.is_reallocation)
