"""The Section 3.2 reallocator: footprint minimization in a database context.

This variant extends :class:`~repro.core.reallocator.CostObliviousReallocator`
with the durability constraints of Section 3:

* **Non-overlapping moves** — an object's new location is always disjoint
  from its old location, so a crash mid-move never corrupts the only copy.
* **Checkpointed reuse** — space freed since the last checkpoint (by a
  delete or by moving an object away) may not be rewritten until the block
  translation map has been checkpointed.  Every write is checked against the
  :class:`~repro.storage.checkpoint.CheckpointManager`.
* **Phased flushes** — a buffer flush is broken into phases, each moving at
  most ``B + Delta`` volume, with a checkpoint between phases.  Lemma 3.2
  shows the phases never overlap sources with destinations and Lemma 3.3
  bounds the number of checkpoints per flush by ``O(1/eps)``.
* **Insert-before-flush** — the triggering insert is placed (at the end of
  the last buffer segment, exceeding its capacity) *before* the flush, at
  the price of one extra reallocation for that object, so the request never
  blocks on the whole flush.

The additive ``Delta`` working space is unavoidable (a largest object can
only move to a disjoint location), giving the Lemma 3.1 footprint bound
``(1 + O(eps)) V + Delta`` during a flush.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.events import FlushRecord
from repro.core.reallocator import BufferEntry, CostObliviousReallocator, FlushPlan
from repro.core.size_classes import size_class_of
from repro.storage.extent import Extent
from repro.storage.translation import BlockTranslationLayer


class CheckpointedReallocator(CostObliviousReallocator):
    """Cost-oblivious reallocator honouring checkpointed durability.

    Parameters
    ----------
    epsilon:
        Footprint slack as in the base class.
    translation:
        An existing :class:`~repro.storage.translation.BlockTranslationLayer`
        to share (e.g. with a database engine); a private one is created if
        omitted.
    track_recovery:
        Maintain a shadow map of where each object's data is physically
        intact, so tests can verify that a crash at any point is recoverable
        from the last checkpointed translation map.  Adds overhead; leave
        False for benchmarks.
    """

    name = "checkpointed"

    def __init__(
        self,
        epsilon: float = 0.5,
        translation: Optional[BlockTranslationLayer] = None,
        trace: bool = False,
        audit: bool = True,
        track_recovery: bool = False,
    ) -> None:
        super().__init__(epsilon=epsilon, trace=trace, audit=audit)
        self.translation = translation if translation is not None else BlockTranslationLayer()
        self.checkpoints = self.translation.checkpoints
        self.track_recovery = track_recovery
        #: Checkpoints taken because a write would otherwise have hit frozen
        #: space.  The phase structure should make this stay at zero; tests
        #: assert it does.
        self.blocked_checkpoints = 0
        #: name -> list of extents where the object's data is still intact.
        self._shadow: Dict[Hashable, List[Extent]] = {}

    # --------------------------------------------------- checkpoint plumbing
    def checkpoint(self) -> int:
        """System-initiated checkpoint: persist the map, unfreeze space."""
        self._note_checkpoint()
        count = self.translation.checkpoint()
        if self.track_recovery:
            # Shadow copies of blocks that are neither live nor referenced by
            # the freshly persisted map can no longer matter for recovery.
            durable = set(self.translation._durable)  # noqa: SLF001
            for name in list(self._shadow):
                if name not in self._sizes and name not in durable:
                    del self._shadow[name]
        return count

    def _ensure_writable(self, extent: Extent, reason: str) -> None:
        """Block (i.e. checkpoint) if ``extent`` was freed since the last one."""
        if self.checkpoints.is_writable(extent):
            return
        self.blocked_checkpoints += 1
        self.checkpoint()

    def _record_write(self, name: Hashable, extent: Extent, moved_from: Optional[Extent]) -> None:
        if not self.track_recovery:
            return
        # Writing to ``extent`` clobbers whatever data previously lived there.
        for other, copies in self._shadow.items():
            if other == name:
                continue
            self._shadow[other] = [c for c in copies if not c.overlaps(extent)]
        copies = self._shadow.setdefault(name, [])
        copies = [c for c in copies if not c.overlaps(extent)]
        copies.append(extent)
        self._shadow[name] = copies

    # ---------------------------------------------------- placement plumbing
    def _place_object(self, name: Hashable, size: int, address: int, reason: str = "place") -> None:
        extent = Extent(address, size)
        self._ensure_writable(extent, reason)
        super()._place_object(name, size, address, reason)
        self.translation.record_allocation(name, extent)
        self._record_write(name, extent, moved_from=None)

    def _move_object(self, name: Hashable, new_address: int, reason: str = "move") -> None:
        size = self._size_lookup(name)
        old = self.space.extent_of(name)
        if old.start == new_address:
            return
        new_extent = Extent(new_address, size)
        if new_extent.overlaps(old):
            raise RuntimeError(
                f"non-overlapping constraint violated: moving {name!r} from "
                f"{old} to {new_extent}"
            )
        self._ensure_writable(new_extent, reason)
        super()._move_object(name, new_address, reason)
        self.translation.record_move(name, new_extent)
        self._record_write(name, new_extent, moved_from=old)

    def _free_object(self, name: Hashable) -> Extent:
        extent = super()._free_object(name)
        self.translation.record_free(name)
        # Note: the shadow copies of a deleted block are kept — its data is
        # still physically intact (freed space is frozen until the next
        # checkpoint) and the last checkpointed translation map may still
        # reference it, so recovery must be able to find it.  Stale shadows
        # are pruned at checkpoint time.
        return extent

    # -------------------------------------------------------------- requests
    def _do_insert(self, name: Hashable, size: int) -> None:
        cls = size_class_of(size)
        indices = self.region_indices()
        if not indices or cls > indices[-1]:
            self._create_region_for(name, size, cls)
            return
        if self._try_buffer_insert(name, size, cls):
            return
        # Place the object at the end of the *last* buffer segment, allowed
        # to exceed its capacity, then run the flush (Section 3.2): the
        # request is never deferred until after the flush.
        last_index = indices[-1]
        last = self._regions[last_index]
        address = last.buffer_start + last.buffer_used
        last.buffer.append(BufferEntry(name, size, cls))
        last.buffer_used += size
        self._placement[name] = ("buffer", last_index, len(last.buffer) - 1)
        self._place_object(name, size, address, reason="insert:overfill")
        self._flush_checkpointed(trigger_class=cls, trigger_size=size)

    def _do_delete(self, name: Hashable, size: int) -> None:
        placement = self._placement.pop(name)
        if placement[0] == "buffer":
            _, cls_index, slot = placement
            region = self._regions[cls_index]
            entry = region.buffer[slot]
            region.buffer[slot] = BufferEntry(None, entry.size, entry.size_class)
            self._free_object(name)
            return
        _, cls_index = placement
        region = self._regions[cls_index]
        del region.payload[name]
        self._free_object(name)
        cls = size_class_of(size)
        if self._try_buffer_record(size, cls):
            return
        # "Trigger the flush without using space for the dummy delete request."
        self._flush_checkpointed(trigger_class=cls, trigger_size=0)

    # ------------------------------------------------------- phased flushing
    def _flush_checkpointed(self, trigger_class: int, trigger_size: int) -> None:
        plan = self._plan_flush(trigger_class, pending_insert=None)
        checkpoints_before = self._current_checkpoints
        moved_volume, move_count = self._execute_phased_moves(plan, trigger_size)
        self._install_plan(plan)
        self._note_flush(
            FlushRecord(
                boundary_class=plan.boundary,
                classes_flushed=tuple(plan.flushed_indices),
                moved_volume=moved_volume,
                move_count=move_count,
                checkpoints=self._current_checkpoints - checkpoints_before,
            )
        )

    def _flush_offsets(self, plan: FlushPlan, trigger_size: int) -> Tuple[int, int]:
        """Compute the paper's ``B`` (flushed buffer space excluding the
        trigger) and the overflow base ``max(L, L') + B + Delta``.

        Deviation from the paper: Section 3.2 subtracts the triggering
        insert's size ``w`` from both ``L`` and ``L'``.  That optimisation is
        only safe when the new object's final slot is the very last of the
        rebuilt suffix; when it belongs to a smaller size class, unpacking a
        larger object can collide with the packed block.  We therefore keep
        the full ``L = S`` and ``L' = S'``, which costs at most one extra
        ``Delta`` of transient working space (the Lemma 3.1 bound becomes
        ``(1 + O(eps)) V + 2 Delta``) but guarantees disjoint moves for every
        request pattern.  DESIGN.md discusses this in detail.
        """
        buffer_space = sum(
            self._regions[i].buffer_used for i in plan.flushed_indices
        )
        buffer_space = max(0, buffer_space - trigger_size)
        last_end = max(plan.old_end, self.space.footprint())  # the paper's L
        desired_end = plan.new_end  # the paper's L'
        delta = max(self.delta, 1)
        overflow_base = max(last_end, desired_end) + buffer_space + delta
        return buffer_space, overflow_base

    def _build_phased_items(
        self, plan: FlushPlan, trigger_size: int
    ) -> Tuple[List[Tuple], int]:
        """Plan the phased move sequence of Section 3.2 without executing it.

        Returns ``(items, overflow_end)`` where each item is either
        ``("move", name, size, target, reason)`` or ``("checkpoint",)``.
        The deamortized variant (Section 3.3) replays these items
        incrementally; this class replays them eagerly.
        """
        items: List[Tuple] = []
        buffer_space, overflow_base = self._flush_offsets(plan, trigger_size)
        # Close a phase once the volume moved in it exceeds the flushed
        # buffer space B (at least Delta, so a phase always makes progress).
        phase_limit = max(buffer_space, max(self.delta, 1))
        expected: Dict[Hashable, int] = {
            name: self.space.extent_of(name).start
            for name, _size, _cls in plan.payload_objects + plan.buffered_objects
        }

        def plan_move(obj_name: Hashable, obj_size: int, target: int, reason: str) -> int:
            if expected[obj_name] == target:
                return 0
            items.append(("move", obj_name, obj_size, target, reason))
            expected[obj_name] = target
            return obj_size

        # Phase A: every buffered object (including the flush trigger) moves
        # to the overflow area beyond max(L, L') + B + Delta.  All targets
        # are beyond every live object, so a single checkpoint suffices.
        overflow_cursor = overflow_base
        for obj_name, obj_size, _cls in plan.buffered_objects:
            plan_move(obj_name, obj_size, overflow_cursor, "flush:to-overflow")
            overflow_cursor += obj_size
        items.append(("checkpoint",))

        # Phase B: pack payload segments as late as possible, right-justified
        # against the overflow base, largest classes first, in phases of at
        # most B + Delta moved volume.
        pack_cursor = overflow_base
        phase_volume = 0
        for obj_name, obj_size, _cls in sorted(
            plan.payload_objects,
            key=lambda item: self.space.extent_of(item[0]).start,
            reverse=True,
        ):
            if phase_volume > phase_limit:
                items.append(("checkpoint",))
                phase_volume = 0
            pack_cursor -= obj_size
            phase_volume += plan_move(obj_name, obj_size, pack_cursor, "flush:pack-right")
        if plan.payload_objects:
            items.append(("checkpoint",))

        # Phase C: unpack payload segments to their final destinations,
        # smallest classes first, again in phases of at most B + Delta volume.
        phase_volume = 0
        for obj_name, obj_size, _cls in sorted(
            plan.payload_objects, key=lambda item: plan.final_address[item[0]]
        ):
            if phase_volume > phase_limit:
                items.append(("checkpoint",))
                phase_volume = 0
            phase_volume += plan_move(
                obj_name, obj_size, plan.final_address[obj_name], "flush:unpack"
            )
        if plan.payload_objects:
            items.append(("checkpoint",))

        # Phase D: buffered objects from the overflow area to the end of
        # their class's payload segment; sources and destinations are
        # disjoint by construction, so one final checkpoint covers it.
        for obj_name, obj_size, _cls in plan.buffered_objects:
            plan_move(obj_name, obj_size, plan.final_address[obj_name], "flush:place")
        items.append(("checkpoint",))

        return items, overflow_cursor

    def _execute_phased_moves(self, plan: FlushPlan, trigger_size: int) -> Tuple[int, int]:
        items, overflow_end = self._build_phased_items(plan, trigger_size)
        self._note_transient_footprint(overflow_end)
        moved_volume = 0
        move_count = 0
        for item in items:
            if item[0] == "checkpoint":
                self.checkpoint()
                continue
            _tag, obj_name, obj_size, target, reason = item
            if self.space.extent_of(obj_name).start == target:
                continue
            self._move_object(obj_name, target, reason=reason)
            moved_volume += obj_size
            move_count += 1
        return moved_volume, move_count

    # ------------------------------------------------------- crash recovery
    def crash_and_recover(self) -> None:
        """Verify that a crash at this instant would be recoverable.

        Requires ``track_recovery=True``.  Checks that every block named by
        the last *checkpointed* translation map still has physically intact
        data at the address that map records — which is exactly what a
        post-crash recovery would read.  Raises
        :class:`~repro.storage.translation.RecoveryError` otherwise; the
        checkpointed discipline (never overwrite space freed since the last
        checkpoint) is designed to make that impossible.

        The in-memory allocator state is left untouched: after a real crash
        the allocator would be rebuilt from the durable map and the redo log
        replayed, which is the storage engine's job, not the reallocator's.
        """
        if not self.track_recovery:
            raise RuntimeError("construct with track_recovery=True to use crash_and_recover")
        intact: Dict[Hashable, Extent] = {}
        for name in self.translation._durable:  # noqa: SLF001 - deliberate white-box check
            durable_extent = self.translation._durable[name]
            copies = self._shadow.get(name, [])
            if durable_extent in copies:
                intact[name] = durable_extent
        self.translation.verify_recoverable(intact)

    def describe(self) -> str:
        return f"{self.name}(eps={self.epsilon:g})"
