"""Power-of-two size-class arithmetic.

The paper groups objects into size classes: *"the i-th size class contains
objects of size w, where 2^(i-1) <= w < 2^i"*, so there are
``floor(log2 Delta) + 1`` classes when the largest object has size ``Delta``.
Classes are 1-indexed throughout this code base to match the paper.
"""

from __future__ import annotations


def size_class_of(size: int) -> int:
    """Return the 1-indexed size class of a size-``size`` object.

    Class ``i`` covers sizes ``2**(i-1) .. 2**i - 1``; e.g. size 1 is class 1,
    sizes 2–3 are class 2, sizes 4–7 are class 3.
    """
    if size < 1:
        raise ValueError(f"object sizes must be at least 1, got {size}")
    return int(size).bit_length()


def class_min_size(index: int) -> int:
    """Smallest object size belonging to class ``index``."""
    if index < 1:
        raise ValueError(f"size classes are 1-indexed, got {index}")
    return 1 << (index - 1)


def class_max_size(index: int) -> int:
    """Largest object size belonging to class ``index``."""
    if index < 1:
        raise ValueError(f"size classes are 1-indexed, got {index}")
    return (1 << index) - 1


def num_size_classes(delta: int) -> int:
    """Number of size classes needed for objects up to size ``delta``.

    Equals ``floor(log2 delta) + 1`` as in the paper.
    """
    if delta < 1:
        raise ValueError(f"delta must be at least 1, got {delta}")
    return int(delta).bit_length()
