"""Aggregate accounting shared by every allocator.

The paper's competitive measure compares, for a cost function ``f``,

* the **allocation cost** ``sum f(w)`` over every object ever inserted
  (including objects later deleted), against
* the **reallocation cost** ``sum f(w)`` over every move of existing data.

Because the algorithms are cost oblivious, one execution can be charged under
many cost functions after the fact; the stats therefore store *size
histograms* of allocations and moves rather than pre-computed costs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.costs.base import CostFunction


@dataclass
class AllocatorStats:
    """Counters maintained by :class:`repro.core.base.Allocator`."""

    requests: int = 0
    inserts: int = 0
    deletes: int = 0
    flushes: int = 0
    checkpoints: int = 0
    #: Histogram of sizes of every object ever inserted.
    allocated_sizes: Counter = field(default_factory=Counter)
    #: Histogram of sizes of every reallocation (move of existing data).
    moved_sizes: Counter = field(default_factory=Counter)
    total_allocated_volume: int = 0
    total_moved_volume: int = 0
    total_moves: int = 0
    #: Largest footprint observed immediately after any request.
    max_footprint: int = 0
    #: Largest footprint/volume ratio observed after any request with V > 0.
    max_footprint_ratio: float = 0.0
    #: Sum of footprint/volume ratios over the requests counted in
    #: :attr:`footprint_ratio_samples` (for the mean ratio).
    footprint_ratio_sum: float = 0.0
    #: Number of requests that ended with V > 0.
    footprint_ratio_samples: int = 0
    #: Largest footprint observed at any instant, including mid-flush.
    max_transient_footprint: int = 0
    #: Largest volume moved while serving a single request.
    max_request_moved_volume: int = 0
    #: Largest number of checkpoints used by a single request.
    max_request_checkpoints: int = 0
    #: Per-request moved volume, recorded only when tracing is enabled.
    request_moved_volumes: Optional[List[int]] = None

    # ------------------------------------------------------------ recording
    def record_allocation(self, size: int) -> None:
        self.allocated_sizes[size] += 1
        self.total_allocated_volume += size

    def record_move(self, size: int) -> None:
        self.moved_sizes[size] += 1
        self.total_moved_volume += size
        self.total_moves += 1

    def record_footprint(self, footprint: int, volume: int) -> None:
        if footprint > self.max_footprint:
            self.max_footprint = footprint
        if footprint > self.max_transient_footprint:
            self.max_transient_footprint = footprint
        if volume > 0:
            ratio = footprint / volume
            if ratio > self.max_footprint_ratio:
                self.max_footprint_ratio = ratio
            self.footprint_ratio_sum += ratio
            self.footprint_ratio_samples += 1

    def record_transient_footprint(self, footprint: int) -> None:
        self.max_transient_footprint = max(self.max_transient_footprint, footprint)

    # ------------------------------------------------------------- charging
    def allocation_cost(self, cost_function: CostFunction) -> float:
        """Total cost of every initial allocation under ``cost_function``."""
        return sum(
            cost_function(size) * count
            for size, count in self.allocated_sizes.items()
        )

    def reallocation_cost(self, cost_function: CostFunction) -> float:
        """Total cost of every reallocation under ``cost_function``."""
        return sum(
            cost_function(size) * count
            for size, count in self.moved_sizes.items()
        )

    def cost_ratio(self, cost_function: CostFunction) -> float:
        """Reallocation cost divided by allocation cost (the paper's ``b``).

        Returns 0.0 when nothing has been allocated yet.
        """
        allocation = self.allocation_cost(cost_function)
        if allocation == 0:
            return 0.0
        return self.reallocation_cost(cost_function) / allocation

    def cost_report(self, cost_functions) -> Dict[str, float]:
        """Cost ratio per cost-function name (for tables)."""
        return {f.name: self.cost_ratio(f) for f in cost_functions}

    @property
    def mean_footprint_ratio(self) -> float:
        """Average footprint/volume ratio over the requests with V > 0."""
        if self.footprint_ratio_samples == 0:
            return 0.0
        return self.footprint_ratio_sum / self.footprint_ratio_samples

    @property
    def amortized_moves_per_insert(self) -> float:
        """Average number of reallocations charged per insert."""
        if self.inserts == 0:
            return 0.0
        return self.total_moves / self.inserts

    @property
    def amortized_moved_volume_per_request(self) -> float:
        """Average volume moved per request."""
        if self.requests == 0:
            return 0.0
        return self.total_moved_volume / self.requests
