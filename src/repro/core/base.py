"""The allocator interface shared by the paper's reallocators and baselines.

Every allocator — the cost-oblivious reallocators of Sections 2 and 3, the
non-moving baselines (First Fit, Best Fit, Buddy, ...) and the moving
baselines (logging-and-compacting, size-class-gap) — implements the same
online interface:

* :meth:`Allocator.insert` — serve an ``<INSERTOBJECT, name, length>`` request,
* :meth:`Allocator.delete` — serve a ``<DELETEOBJECT, name>`` request.

The base class provides uniform bookkeeping so that every experiment charges
every algorithm identically: an :class:`~repro.storage.address_space.AddressSpace`
that audits placements for overlaps, an :class:`~repro.core.stats.AllocatorStats`
with allocation/move histograms, and optional per-request tracing.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Hashable, List, Optional

from repro.core.events import FlushRecord, MoveEvent, RequestRecord
from repro.core.stats import AllocatorStats
from repro.storage.address_space import AddressSpace
from repro.storage.extent import Extent


class AllocationError(RuntimeError):
    """An invalid request: duplicate insert, unknown delete, bad size."""


class Allocator(ABC):
    """Base class for every storage (re)allocator in this library.

    Parameters
    ----------
    trace:
        When True, every request's :class:`~repro.core.events.RequestRecord`
        (including its individual moves) is retained in :attr:`history`.
        Leave False for large benchmark runs; the aggregate statistics in
        :attr:`stats` are always maintained.
    audit:
        When True (default) every placement is checked for overlaps against
        all live objects.  Benchmarks switch this off for very large traces.
    """

    #: Human-readable identifier used in benchmark tables.
    name: str = "allocator"
    #: Whether the algorithm ever moves previously allocated objects.
    supports_reallocation: bool = False

    def __init__(self, trace: bool = False, audit: bool = True) -> None:
        self.space = AddressSpace(validate=audit)
        self.stats = AllocatorStats()
        self.trace = trace
        self.history: List[RequestRecord] = []
        self._sizes: Dict[Hashable, int] = {}
        self._delta = 0
        self._current_moves: List[MoveEvent] = []
        self._current_flush: Optional[FlushRecord] = None
        self._current_checkpoints = 0

    # ----------------------------------------------------------- properties
    @property
    def volume(self) -> int:
        """Total size of the currently active objects (the paper's ``V``)."""
        return self.space.volume()

    @property
    def footprint(self) -> int:
        """Largest allocated address (the paper's footprint objective)."""
        return self.space.footprint()

    @property
    def delta(self) -> int:
        """Largest object size seen so far (the paper's ``Delta``)."""
        return self._delta

    @property
    def num_objects(self) -> int:
        """Number of currently active objects."""
        return len(self.space)

    def __contains__(self, name: Hashable) -> bool:
        return name in self._sizes

    def size_of(self, name: Hashable) -> int:
        """Size of the active object ``name``."""
        return self._sizes[name]

    def address_of(self, name: Hashable) -> int:
        """Current starting address of the active object ``name``."""
        return self.space.extent_of(name).start

    # ------------------------------------------------------------ requests
    def insert(self, name: Hashable, size: int) -> RequestRecord:
        """Serve an insert (malloc) request and return its record."""
        if size < 1:
            raise AllocationError(f"object size must be >= 1, got {size}")
        if name in self._sizes:
            raise AllocationError(f"object {name!r} is already allocated")
        self._begin_request()
        self._sizes[name] = size
        self._delta = max(self._delta, size)
        self.stats.record_allocation(size)
        self.stats.inserts += 1
        self._do_insert(name, size)
        return self._finish_request("insert", name, size)

    def delete(self, name: Hashable) -> RequestRecord:
        """Serve a delete (free) request and return its record."""
        if name not in self._sizes:
            raise AllocationError(f"object {name!r} is not allocated")
        size = self._sizes[name]
        self._begin_request()
        self._do_delete(name, size)
        del self._sizes[name]
        self.stats.deletes += 1
        return self._finish_request("delete", name, size)

    def run(self, requests) -> None:
        """Serve a whole trace of :class:`repro.workloads.base.Request` objects."""
        for request in requests:
            if request.is_insert:
                self.insert(request.name, request.size)
            else:
                self.delete(request.name)

    # -------------------------------------------------- subclass obligations
    @abstractmethod
    def _do_insert(self, name: Hashable, size: int) -> None:
        """Place the new object ``name`` somewhere in the address space."""

    @abstractmethod
    def _do_delete(self, name: Hashable, size: int) -> None:
        """Release object ``name`` (and possibly reorganise)."""

    # ------------------------------------------------------ helper plumbing
    def _begin_request(self) -> None:
        self._current_moves = []
        self._current_flush = None
        self._current_checkpoints = 0
        self.stats.requests += 1

    def _finish_request(self, op: str, name: Hashable, size: int) -> RequestRecord:
        footprint = self.footprint
        volume = self.volume
        self.stats.record_footprint(footprint, volume)
        moved_volume = sum(m.size for m in self._current_moves if m.is_reallocation)
        self.stats.max_request_moved_volume = max(
            self.stats.max_request_moved_volume, moved_volume
        )
        self.stats.max_request_checkpoints = max(
            self.stats.max_request_checkpoints, self._current_checkpoints
        )
        if self.stats.request_moved_volumes is not None:
            self.stats.request_moved_volumes.append(moved_volume)
        record = RequestRecord(
            index=self.stats.requests,
            op=op,
            name=name,
            size=size,
            moves=tuple(self._current_moves),
            flush=self._current_flush,
            checkpoints=self._current_checkpoints,
            footprint_after=footprint,
            volume_after=volume,
        )
        if self.trace:
            self.history.append(record)
        return record

    def _place_object(self, name: Hashable, size: int, address: int, reason: str = "place") -> None:
        """Record the first placement of ``name`` at ``address``."""
        extent = Extent(address, size)
        self.space.place(name, extent)
        self._current_moves.append(
            MoveEvent(name=name, size=size, source=None, destination=extent, reason=reason)
        )

    def _size_lookup(self, name: Hashable) -> int:
        """Size of an object that still occupies space (overridable)."""
        return self._sizes[name]

    def _move_object(self, name: Hashable, new_address: int, reason: str = "move") -> None:
        """Record a relocation of ``name`` to ``new_address``."""
        size = self._size_lookup(name)
        new_extent = Extent(new_address, size)
        old_extent = self.space.extent_of(name)
        if old_extent.start == new_address:
            return
        self.space.move(name, new_extent)
        self.stats.record_move(size)
        self._current_moves.append(
            MoveEvent(
                name=name, size=size, source=old_extent, destination=new_extent, reason=reason
            )
        )

    def _free_object(self, name: Hashable) -> Extent:
        """Remove ``name`` from the address space and return its old extent."""
        return self.space.remove(name)

    def _note_flush(self, record: FlushRecord) -> None:
        self.stats.flushes += 1
        self._current_flush = record

    def _note_checkpoint(self, count: int = 1) -> None:
        self.stats.checkpoints += count
        self._current_checkpoints += count

    def _note_transient_footprint(self, footprint: int) -> None:
        self.stats.record_transient_footprint(footprint)

    # --------------------------------------------------------------- extras
    def enable_request_tracking(self) -> None:
        """Start recording the moved volume of every subsequent request."""
        if self.stats.request_moved_volumes is None:
            self.stats.request_moved_volumes = []

    def describe(self) -> str:
        """One-line description used by reports."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} objects={self.num_objects} "
            f"volume={self.volume} footprint={self.footprint}>"
        )
