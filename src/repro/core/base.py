"""The allocator interface shared by the paper's reallocators and baselines.

Every allocator — the cost-oblivious reallocators of Sections 2 and 3, the
non-moving baselines (First Fit, Best Fit, Buddy, ...) and the moving
baselines (logging-and-compacting, size-class-gap) — implements the same
online interface:

* :meth:`Allocator.insert` — serve an ``<INSERTOBJECT, name, length>`` request,
* :meth:`Allocator.delete` — serve a ``<DELETEOBJECT, name>`` request.

The base class provides uniform bookkeeping so that every experiment charges
every algorithm identically: an :class:`~repro.storage.address_space.AddressSpace`
that audits placements for overlaps, an :class:`~repro.core.stats.AllocatorStats`
with allocation/move histograms, and optional per-request tracing.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Hashable, List, Optional

from repro.core.events import FlushRecord, MoveEvent, RequestRecord
from repro.core.stats import AllocatorStats
from repro.storage.address_space import AddressSpace
from repro.storage.extent import Extent


class AllocationError(RuntimeError):
    """An invalid request: duplicate insert, unknown delete, bad size."""


class Allocator(ABC):
    """Base class for every storage (re)allocator in this library.

    Parameters
    ----------
    trace:
        When True, every request's :class:`~repro.core.events.RequestRecord`
        (including its individual moves) is retained in :attr:`history`.
        Leave False for large benchmark runs; the aggregate statistics in
        :attr:`stats` are always maintained.
    audit:
        When True (default) every placement is checked for overlaps via the
        address space's sorted index — an O(log n) neighbour probe, cheap
        enough that benchmarks and campaign cells leave it on.  Set False
        only to shave the last few percent off a huge throughput-only run.
    observers:
        Observers (see :mod:`repro.engine.observers`) notified of every
        request record, move, flush, and checkpoint.  Usually attached per
        replay by the :class:`~repro.engine.SimulationEngine` rather than at
        construction time.

    Instrumentation fast path: :meth:`run` checks once whether anything can
    see per-request events (``trace`` or attached observers).  When nothing
    can, serving a request skips building ``RequestRecord``/``MoveEvent``
    objects entirely — only the aggregate :attr:`stats` are maintained —
    which is what makes zero-observer replays cheap.  Direct
    :meth:`insert`/:meth:`delete` calls always return a full record.
    """

    #: Human-readable identifier used in benchmark tables.
    name: str = "allocator"
    #: Whether the algorithm ever moves previously allocated objects.
    supports_reallocation: bool = False

    def __init__(self, trace: bool = False, audit: bool = True, observers=None) -> None:
        self.space = AddressSpace(validate=audit)
        self.stats = AllocatorStats()
        self.trace = trace
        self.history: List[RequestRecord] = []
        self._sizes: Dict[Hashable, int] = {}
        self._delta = 0
        self._observers: List = list(observers) if observers else []
        self._collect_events = True
        self._current_moves: List[MoveEvent] = []
        self._current_moved_volume = 0
        self._current_flush: Optional[FlushRecord] = None
        self._current_checkpoints = 0

    # ----------------------------------------------------------- properties
    @property
    def volume(self) -> int:
        """Total size of the currently active objects (the paper's ``V``)."""
        return self.space.volume()

    @property
    def footprint(self) -> int:
        """Largest allocated address (the paper's footprint objective)."""
        return self.space.footprint()

    @property
    def delta(self) -> int:
        """Largest object size seen so far (the paper's ``Delta``)."""
        return self._delta

    @property
    def num_objects(self) -> int:
        """Number of currently active objects."""
        return len(self.space)

    def __contains__(self, name: Hashable) -> bool:
        return name in self._sizes

    def size_of(self, name: Hashable) -> int:
        """Size of the active object ``name``."""
        return self._sizes[name]

    def address_of(self, name: Hashable) -> int:
        """Current starting address of the active object ``name``."""
        return self.space.extent_of(name).start

    # ----------------------------------------------------------- observers
    def attach_observer(self, observer) -> None:
        """Notify ``observer`` of every subsequent record/move/flush/checkpoint."""
        self._observers.append(observer)

    def detach_observer(self, observer) -> None:
        """Stop notifying ``observer`` (a no-op if it is not attached)."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    # ------------------------------------------------------------ requests
    def insert(self, name: Hashable, size: int) -> RequestRecord:
        """Serve an insert (malloc) request and return its record."""
        return self._serve_insert(name, size, collect=True)

    def delete(self, name: Hashable) -> RequestRecord:
        """Serve a delete (free) request and return its record."""
        return self._serve_delete(name, collect=True)

    def run(self, requests) -> None:
        """Serve a whole trace of :class:`repro.workloads.base.Request` objects.

        When nothing observes per-request events (``trace`` is False and no
        observer is attached) the replay skips record construction entirely;
        only :attr:`stats` are maintained.
        """
        collect = bool(self.trace or self._observers)
        for request in requests:
            if request.is_insert:
                self._serve_insert(request.name, request.size, collect)
            else:
                self._serve_delete(request.name, collect)

    def _serve_insert(self, name: Hashable, size: int, collect: bool) -> Optional[RequestRecord]:
        if size < 1:
            raise AllocationError(f"object size must be >= 1, got {size}")
        if name in self._sizes:
            raise AllocationError(f"object {name!r} is already allocated")
        self._collect_events = collect
        self._begin_request()
        # The size must be registered before _do_insert runs: a flush
        # triggered by the placement may relocate the new object, and
        # _size_lookup must resolve it.  The registration (and any placement
        # of the new object) is rolled back if _do_insert raises, so the
        # failed insert can be retried instead of dying with "already
        # allocated".  Side effects on *other* objects (moves performed by a
        # partially completed flush) are real work and stay recorded.
        self._sizes[name] = size
        previous_delta = self._delta
        if size > self._delta:
            self._delta = size
        try:
            self._do_insert(name, size)
        except BaseException:
            self._sizes.pop(name, None)
            if name in self.space:
                self.space.remove(name)
            self._delta = previous_delta
            self.stats.requests -= 1
            raise
        self.stats.record_allocation(size)
        self.stats.inserts += 1
        return self._finish_request("insert", name, size)

    def _serve_delete(self, name: Hashable, collect: bool) -> Optional[RequestRecord]:
        if name not in self._sizes:
            raise AllocationError(f"object {name!r} is not allocated")
        size = self._sizes[name]
        self._collect_events = collect
        self._begin_request()
        try:
            self._do_delete(name, size)
        except BaseException:
            # Unlike a failed insert (whose sole placement can always be
            # undone, see _serve_insert), a delete that raises midway may
            # have freed space that later moves already reused, and the
            # deamortized variant defers frees — so no faithful rollback
            # exists.  The registration is kept (the object still counts as
            # allocated) but its physical state is undefined; callers should
            # treat the allocator as poisoned after a raising delete.
            self.stats.requests -= 1
            raise
        del self._sizes[name]
        self.stats.deletes += 1
        return self._finish_request("delete", name, size)

    # -------------------------------------------------- subclass obligations
    @abstractmethod
    def _do_insert(self, name: Hashable, size: int) -> None:
        """Place the new object ``name`` somewhere in the address space."""

    @abstractmethod
    def _do_delete(self, name: Hashable, size: int) -> None:
        """Release object ``name`` (and possibly reorganise)."""

    # ------------------------------------------------------ helper plumbing
    def _begin_request(self) -> None:
        if self._collect_events:
            self._current_moves = []
        self._current_moved_volume = 0
        self._current_flush = None
        self._current_checkpoints = 0
        self.stats.requests += 1

    def _finish_request(self, op: str, name: Hashable, size: int) -> Optional[RequestRecord]:
        footprint = self.space.footprint()
        volume = self.space.volume()
        stats = self.stats
        stats.record_footprint(footprint, volume)
        moved_volume = self._current_moved_volume
        if moved_volume > stats.max_request_moved_volume:
            stats.max_request_moved_volume = moved_volume
        if self._current_checkpoints > stats.max_request_checkpoints:
            stats.max_request_checkpoints = self._current_checkpoints
        if stats.request_moved_volumes is not None:
            stats.request_moved_volumes.append(moved_volume)
        if not self._collect_events:
            return None
        record = RequestRecord(
            index=stats.requests,
            op=op,
            name=name,
            size=size,
            moves=tuple(self._current_moves),
            flush=self._current_flush,
            checkpoints=self._current_checkpoints,
            footprint_after=footprint,
            volume_after=volume,
        )
        if self.trace:
            self.history.append(record)
        for observer in self._observers:
            observer.on_request(record)
        return record

    def _place_object(self, name: Hashable, size: int, address: int, reason: str = "place") -> None:
        """Record the first placement of ``name`` at ``address``."""
        extent = Extent(address, size)
        self.space.place(name, extent)
        if self._collect_events:
            move = MoveEvent(name=name, size=size, source=None, destination=extent, reason=reason)
            self._current_moves.append(move)
            for observer in self._observers:
                observer.on_move(move)

    def _size_lookup(self, name: Hashable) -> int:
        """Size of an object that still occupies space (overridable)."""
        return self._sizes[name]

    def _move_object(self, name: Hashable, new_address: int, reason: str = "move") -> None:
        """Record a relocation of ``name`` to ``new_address``."""
        size = self._size_lookup(name)
        old_extent = self.space.extent_of(name)
        if old_extent.start == new_address:
            return
        new_extent = Extent(new_address, size)
        self.space.move(name, new_extent)
        self.stats.record_move(size)
        self._current_moved_volume += size
        if self._collect_events:
            move = MoveEvent(
                name=name, size=size, source=old_extent, destination=new_extent, reason=reason
            )
            self._current_moves.append(move)
            for observer in self._observers:
                observer.on_move(move)

    def _free_object(self, name: Hashable) -> Extent:
        """Remove ``name`` from the address space and return its old extent."""
        return self.space.remove(name)

    def _note_flush(self, record: FlushRecord) -> None:
        self.stats.flushes += 1
        self._current_flush = record
        for observer in self._observers:
            observer.on_flush(record)

    def _note_checkpoint(self, count: int = 1) -> None:
        self.stats.checkpoints += count
        self._current_checkpoints += count
        for observer in self._observers:
            observer.on_checkpoint(count)

    def _note_transient_footprint(self, footprint: int) -> None:
        self.stats.record_transient_footprint(footprint)

    # --------------------------------------------------------------- extras
    def enable_request_tracking(self) -> None:
        """Start recording the moved volume of every subsequent request."""
        if self.stats.request_moved_volumes is None:
            self.stats.request_moved_volumes = []

    def describe(self) -> str:
        """One-line description used by reports."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} objects={self.num_objects} "
            f"volume={self.volume} footprint={self.footprint}>"
        )
