"""The Section 3.3 deamortized reallocator.

The amortized reallocators may, on a single unlucky update, rebuild the whole
structure.  This variant bounds the *worst-case* reallocation work of a
size-``w`` update by ``O((1/eps) * w + Delta)`` volume (Lemma 3.6) while
keeping the amortized cost and footprint guarantees, by

* adding a **tail buffer** of capacity ``floor(eps' * V_f)`` after all size
  class regions (``V_f`` = volume at the start of the previous flush); a
  flush is only triggered once the tail buffer is full, which gives an
  in-progress flush time to finish (Lemma 3.4),
* turning the flush into an explicit **work queue** (the phased move items of
  the checkpointed variant) that is advanced by ``(4/eps') * w`` volume on
  every subsequent update of size ``w``,
* recording updates that arrive during a flush in a **log** placed after the
  flush's temporary working space; once the move queue is exhausted the log
  is drained (each entry re-inserted or re-deleted), and the flush ends when
  the drain catches up with the end of the log.

Deletes that arrive during a flush are *deferred*: the object stays active
(and may still be moved by the already-planned flush) until its log entry is
drained — exactly the paper's rule that an object being deleted remains
active until the reallocator completes the request.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Hashable, List, Optional, Set, Tuple

from repro.core.checkpointed import CheckpointedReallocator
from repro.core.events import FlushRecord
from repro.core.reallocator import BufferEntry, FlushPlan, Region
from repro.core.size_classes import size_class_of
from repro.storage.translation import BlockTranslationLayer


@dataclass
class _LogEntry:
    op: str  # "insert" or "delete"
    name: Hashable
    size: int
    size_class: int


@dataclass
class _PendingFlush:
    plan: FlushPlan
    items: List[Tuple]
    volume_at_start: int
    new_tail_capacity: int
    log_cursor: int
    next_item: int = 0
    installed: bool = False
    moved_volume: int = 0
    move_count: int = 0
    log: Deque[_LogEntry] = field(default_factory=deque)


class DeamortizedReallocator(CheckpointedReallocator):
    """Cost-oblivious reallocator with bounded worst-case update cost.

    Parameters
    ----------
    epsilon:
        Footprint slack, as in the amortized variants.
    work_factor:
        Volume of flush work performed per unit of update volume, the paper's
        ``4 / eps'``.  Exposed for the ablation benchmark; the default follows
        the paper.
    """

    name = "deamortized"

    def __init__(
        self,
        epsilon: float = 0.5,
        translation: Optional[BlockTranslationLayer] = None,
        trace: bool = False,
        audit: bool = True,
        track_recovery: bool = False,
        work_factor: Optional[float] = None,
    ) -> None:
        super().__init__(
            epsilon=epsilon,
            translation=translation,
            trace=trace,
            audit=audit,
            track_recovery=track_recovery,
        )
        # The deamortized structure parks deleted-but-unprocessed volume in
        # the class buffers, the tail buffer *and* the log, so it needs a
        # smaller internal eps' than the amortized variants to keep the
        # advertised (1 + epsilon) footprint: see space_bound().
        self.epsilon_prime = epsilon / 8.0
        self.work_factor = (
            work_factor if work_factor is not None else 4.0 / self.epsilon_prime
        )
        self._pending: Optional[_PendingFlush] = None
        self._tail_entries: List[BufferEntry] = []
        self._tail_used = 0
        self._tail_capacity = 0
        self._tail_start = 0
        #: Sizes of objects whose delete has been logged but not yet drained.
        self._deferred_deletes: Dict[Hashable, int] = {}

    # ----------------------------------------------------------- inspection
    @property
    def flush_in_progress(self) -> bool:
        """True while a flush's work queue or log still has entries."""
        return self._pending is not None

    @property
    def tail_capacity(self) -> int:
        return self._tail_capacity

    @property
    def tail_used(self) -> int:
        return self._tail_used

    def log_volume(self) -> int:
        """Total volume of updates currently recorded in the log."""
        if self._pending is None:
            return 0
        return sum(entry.size for entry in self._pending.log)

    def bounded_space(self) -> int:
        """Reserved region space plus the tail buffer (Lemma 3.5)."""
        return self.reserved_space + self._tail_capacity

    def space_bound(self, volume: int) -> float:
        """Footprint guarantee of the deamortized structure.

        Compared with Lemma 2.5, deleted-but-unprocessed volume can hide in
        the class buffers *and* the tail buffer, and the structure reserves
        an extra ``eps' V_f`` for the tail, giving a
        ``(1 + 2 eps') / (1 - 4 eps')`` ratio.  With ``eps' = eps / 8`` this
        stays within the advertised ``1 + eps`` for every ``eps <= 1/2``.
        """
        eps = self.epsilon_prime
        return (1.0 + 2.0 * eps) / (1.0 - 4.0 * eps) * volume

    def _extra_live_names(self) -> Set[Hashable]:
        extra: Set[Hashable] = {
            entry.name for entry in self._tail_entries if entry.name is not None
        }
        if self._pending is not None:
            for entry in self._pending.log:
                if entry.op == "insert" and entry.name in self.space:
                    extra.add(entry.name)
        return extra

    def _size_lookup(self, name: Hashable) -> int:
        if name in self._sizes:
            return self._sizes[name]
        return self._deferred_deletes[name]

    def size_of(self, name: Hashable) -> int:
        if name in self._sizes:
            return self._sizes[name]
        return self._deferred_deletes[name]

    # -------------------------------------------------------------- requests
    def _do_insert(self, name: Hashable, size: int) -> None:
        cls = size_class_of(size)
        if self._pending is not None:
            self._log_insert(name, size, cls)
            self._advance(size)
            return
        indices = self.region_indices()
        if not indices:
            self._create_region_for(name, size, cls)
            self._tail_capacity = max(
                self._tail_capacity, self._buffer_fraction(self.volume)
            )
            self._tail_start = self._structure_end()
            return
        if self._try_buffer_insert(name, size, cls):
            return
        fits_in_tail = self._tail_used + size <= self._tail_capacity
        self._place_in_tail(name, size, cls)
        if fits_in_tail:
            return
        # The tail buffer is (over)full: trigger a flush and immediately
        # perform this update's share of its work.
        self._start_flush(trigger_class=cls)
        self._advance(size)

    def _do_delete(self, name: Hashable, size: int) -> None:
        if self._pending is not None:
            self._log_delete(name, size)
            self._advance(size)
            return
        placement = self._placement.pop(name)
        if placement[0] == "buffer":
            _, cls_index, slot = placement
            region = self._regions[cls_index]
            entry = region.buffer[slot]
            region.buffer[slot] = BufferEntry(None, entry.size, entry.size_class)
            self._free_object(name)
            return
        if placement[0] == "tail":
            slot = placement[1]
            entry = self._tail_entries[slot]
            self._tail_entries[slot] = BufferEntry(None, entry.size, entry.size_class)
            self._free_object(name)
            return
        _, cls_index = placement
        region = self._regions[cls_index]
        del region.payload[name]
        self._free_object(name)
        cls = size_class_of(size)
        if self._try_buffer_record(size, cls):
            return
        if self._tail_used + size <= self._tail_capacity:
            self._tail_entries.append(BufferEntry(None, size, cls))
            self._tail_used += size
            return
        # Trigger the flush without consuming space for the dummy record.
        self._start_flush(trigger_class=cls)
        self._advance(size)

    # --------------------------------------------------------- tail and log
    def _place_in_tail(self, name: Hashable, size: int, cls: int) -> None:
        if not self._tail_entries:
            self._tail_start = max(self._tail_start, self._structure_end())
        address = self._tail_start + self._tail_used
        self._tail_entries.append(BufferEntry(name, size, cls))
        self._placement[name] = ("tail", len(self._tail_entries) - 1)
        self._tail_used += size
        self._place_object(name, size, address, reason="insert:tail")

    def _log_insert(self, name: Hashable, size: int, cls: int) -> None:
        pending = self._pending
        address = pending.log_cursor
        pending.log_cursor += size
        pending.log.append(_LogEntry("insert", name, size, cls))
        self._place_object(name, size, address, reason="insert:log")
        self._note_transient_footprint(pending.log_cursor)

    def _log_delete(self, name: Hashable, size: int) -> None:
        pending = self._pending
        self._deferred_deletes[name] = size
        pending.log.append(_LogEntry("delete", name, size, size_class_of(size)))

    # ------------------------------------------------------- flush lifecycle
    def _start_flush(self, trigger_class: int) -> None:
        """Plan a flush covering the class regions and the tail buffer."""
        indices = self.region_indices()
        if not indices:
            # Everything that is live sits in the tail buffer (all regions
            # emptied out).  Seed an empty region for the largest tail class
            # so the planner has a "last buffer" to fold the tail into; the
            # flush then rebuilds proper regions from those objects.
            largest = max(
                (entry.size_class for entry in self._tail_entries), default=trigger_class
            )
            self._regions[largest] = Region(
                index=largest, start=0, payload_capacity=0, buffer_capacity=0
            )
            indices = [largest]
        last = self._regions[indices[-1]]
        # The tail buffer "follows all the size-class segments", so for
        # planning purposes its entries are treated as part of the last
        # buffer: they participate in the boundary computation and are moved
        # into payload segments like any other buffered object.
        for entry in self._tail_entries:
            if entry.name is not None:
                self._placement[entry.name] = ("buffer", last.index, len(last.buffer))
            last.buffer.append(entry)
            last.buffer_used += entry.size
        self._tail_entries = []
        self._tail_used = 0

        volume_at_start = self.volume
        plan = self._plan_flush(trigger_class, pending_insert=None)
        items, overflow_end = self._build_phased_items(plan, trigger_size=0)
        self._note_transient_footprint(overflow_end)
        new_tail_capacity = self._buffer_fraction(volume_at_start)
        log_cursor = max(overflow_end, plan.new_end + new_tail_capacity)
        self._pending = _PendingFlush(
            plan=plan,
            items=items,
            volume_at_start=volume_at_start,
            new_tail_capacity=new_tail_capacity,
            log_cursor=log_cursor,
        )

    def _advance(self, update_size: int) -> None:
        """Perform the next ``work_factor * update_size`` volume of flush work."""
        pending = self._pending
        if pending is None:
            return
        budget = self.work_factor * update_size
        executed = 0.0

        # Stage 1: the planned phased moves.
        while pending.next_item < len(pending.items) and executed <= budget:
            item = pending.items[pending.next_item]
            pending.next_item += 1
            if item[0] == "checkpoint":
                self.checkpoint()
                continue
            _tag, obj_name, obj_size, target, reason = item
            if obj_name not in self.space:
                continue
            if self.space.extent_of(obj_name).start == target:
                continue
            self._move_object(obj_name, target, reason=reason)
            executed += obj_size
            pending.moved_volume += obj_size
            pending.move_count += 1
        if pending.next_item < len(pending.items):
            return

        # Stage 2: install the rebuilt regions exactly once.
        if not pending.installed:
            self._install_plan(pending.plan)
            pending.installed = True
            self._tail_capacity = pending.new_tail_capacity
            self._tail_entries = []
            self._tail_used = 0
            self._tail_start = self._structure_end()
            self._note_flush(
                FlushRecord(
                    boundary_class=pending.plan.boundary,
                    classes_flushed=tuple(pending.plan.flushed_indices),
                    moved_volume=pending.moved_volume,
                    move_count=pending.move_count,
                    checkpoints=0,
                )
            )

        # Stage 3: drain the log (re-insert / re-delete the updates that
        # arrived during the flush).
        while pending.log and executed <= budget:
            entry = pending.log.popleft()
            executed += self._drain_entry(entry)
        if pending.log:
            return

        # The flush is complete.
        self._pending = None
        if self._tail_used > self._tail_capacity and self._tail_entries:
            # The drain itself overfilled the tail; start the next flush now
            # (its work will again be spread over subsequent updates).
            trigger = min(entry.size_class for entry in self._tail_entries)
            self._start_flush(trigger_class=trigger)

    def _drain_entry(self, entry: _LogEntry) -> int:
        if entry.op == "insert":
            self._drain_insert(entry.name, entry.size, entry.size_class)
        else:
            self._drain_delete(entry.name, entry.size)
        return entry.size

    def _drain_insert(self, name: Hashable, size: int, cls: int) -> None:
        """Move a logged object from the log area into a buffer or the tail."""
        for index in self.region_indices():
            if index < cls:
                continue
            region = self._regions[index]
            if region.buffer_free >= size:
                address = region.buffer_start + region.buffer_used
                region.buffer.append(BufferEntry(name, size, cls))
                region.buffer_used += size
                self._placement[name] = ("buffer", index, len(region.buffer) - 1)
                self._move_object(name, address, reason="drain:buffer")
                return
        # Fall back to the tail buffer.  If even the tail is (over)full the
        # object simply stays where it is (in the log area) but is accounted
        # as a tail entry: the tail becomes overfull, which triggers the next
        # flush as soon as the drain finishes, and that flush pulls the
        # straggler back in.  Not moving it keeps the transient footprint
        # within the Lemma 3.5 working space instead of escalating it.
        if not self._tail_entries:
            self._tail_start = max(self._tail_start, self._structure_end())
        self._tail_entries.append(BufferEntry(name, size, cls))
        self._placement[name] = ("tail", len(self._tail_entries) - 1)
        fits = self._tail_used + size <= self._tail_capacity
        self._tail_used += size
        if fits:
            self._move_object(name, self._tail_start + self._tail_used - size, reason="drain:tail")

    def _drain_delete(self, name: Hashable, size: int) -> None:
        """Apply a logged delete to the (now flushed) structure."""
        self._deferred_deletes.pop(name, None)
        placement = self._placement.pop(name)
        if placement[0] == "buffer":
            _, cls_index, slot = placement
            region = self._regions[cls_index]
            old = region.buffer[slot]
            region.buffer[slot] = BufferEntry(None, old.size, old.size_class)
            self._free_object(name)
            return
        if placement[0] == "tail":
            slot = placement[1]
            old = self._tail_entries[slot]
            self._tail_entries[slot] = BufferEntry(None, old.size, old.size_class)
            self._free_object(name)
            return
        _, cls_index = placement
        region = self._regions[cls_index]
        del region.payload[name]
        self._free_object(name)
        cls = size_class_of(size)
        if self._try_buffer_record(size, cls):
            return
        # Record the deletion in the tail, overfilling it if necessary; a new
        # flush starts once the drain completes.
        self._tail_entries.append(BufferEntry(None, size, cls))
        self._tail_used += size

    # ----------------------------------------------------------- utilities
    def finish_pending_work(self, max_rounds: int = 1000) -> None:
        """Drive any in-progress flush to completion (test/benchmark helper)."""
        rounds = 0
        while self._pending is not None:
            rounds += 1
            if rounds > max_rounds:
                raise RuntimeError("flush did not complete within the round limit")
            remaining = sum(
                item[2] for item in self._pending.items[self._pending.next_item :]
                if item[0] == "move"
            ) + self.log_volume() + 1
            self._advance(remaining)

    def describe(self) -> str:
        return f"{self.name}(eps={self.epsilon:g})"
