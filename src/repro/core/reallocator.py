"""The Section 2 cost-oblivious storage reallocator (Theorem 2.1).

The algorithm keeps objects partially sorted by size so that the insertion or
deletion of small objects can only trigger the movement of *larger* objects,
which per unit of volume are at most as expensive under any subadditive cost
function.  Concretely:

* Objects are grouped into power-of-two **size classes**; the address space
  is divided into one **region** per (nonempty) size class, ordered by class.
* A region comprises a **payload segment** (only objects of that class,
  packed at the last flush) followed by a **buffer segment** (objects of that
  class *or smaller*, appended as they arrive), sized to an ``eps'`` fraction
  of the payload.
* Inserts go to the end of the earliest buffer of an equal-or-larger class
  with room; deletes leave a hole in the payload and append a same-size
  *delete record* to such a buffer.
* When no buffer has room, a **buffer flush** rewrites a suffix of the
  regions: it recomputes each class's volume, re-packs payload segments, and
  empties the buffers (Invariant 2.4), moving each object at most twice.

The class below implements exactly that, mirroring every placement into an
auditing :class:`~repro.storage.address_space.AddressSpace` and recording
every physical move so executions can be charged under any cost function
after the fact.  The flush is split into a *planning* step (pure computation
of the new layout) and an *execution* step (the actual moves); the
checkpointed (Section 3.2) and deamortized (Section 3.3) subclasses reuse the
planner and substitute their own executors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.base import Allocator
from repro.core.events import FlushRecord
from repro.core.size_classes import size_class_of


@dataclass
class BufferEntry:
    """One slot of a buffer segment: a live object or a delete record."""

    name: Optional[Hashable]
    size: int
    size_class: int

    @property
    def is_delete_record(self) -> bool:
        return self.name is None


@dataclass
class Region:
    """One size class's payload segment plus buffer segment."""

    index: int
    start: int
    payload_capacity: int
    buffer_capacity: int
    #: Live payload objects (name -> None) in address order.
    payload: Dict[Hashable, None] = field(default_factory=dict)
    buffer: List[BufferEntry] = field(default_factory=list)
    buffer_used: int = 0

    @property
    def end(self) -> int:
        return self.start + self.payload_capacity + self.buffer_capacity

    @property
    def buffer_start(self) -> int:
        return self.start + self.payload_capacity

    @property
    def buffer_free(self) -> int:
        return self.buffer_capacity - self.buffer_used


@dataclass
class FlushPlan:
    """Everything a flush needs: the state gathered and the target layout."""

    boundary: int
    flushed_indices: List[int]
    #: (name, size, class) for live payload objects of the flushed regions.
    payload_objects: List[Tuple[Hashable, int, int]]
    #: (name, size, class) for live buffered objects of the flushed regions.
    buffered_objects: List[Tuple[Hashable, int, int]]
    #: Per-class volume after the triggering request (the paper's ``V_t(i)``).
    volumes: Dict[int, int]
    #: Address where the rebuilt suffix starts (end of untouched regions).
    base: int
    #: End of the structure before the flush.
    old_end: int
    #: End of the structure after the flush.
    new_end: int
    #: Final start address of every object involved in the flush.
    final_address: Dict[Hashable, int] = field(default_factory=dict)
    #: Freshly built regions keyed by class, ready to be installed.
    new_regions: Dict[int, Region] = field(default_factory=dict)
    #: The flush-triggering insert, if it is only placed after the flush.
    pending_insert: Optional[Tuple[Hashable, int, int]] = None

    @property
    def payload_volume(self) -> int:
        return sum(size for _, size, _ in self.payload_objects)

    @property
    def buffered_volume(self) -> int:
        return sum(size for _, size, _ in self.buffered_objects)


class CostObliviousReallocator(Allocator):
    """Cost-oblivious reallocator, ``(1+eps, O((1/eps) log(1/eps)))``-competitive.

    Parameters
    ----------
    epsilon:
        Footprint slack, ``0 < epsilon <= 1/2``.  The reserved space after
        every request is at most ``(1 + epsilon) * V`` where ``V`` is the
        active volume.  Internally the algorithm uses ``eps' = epsilon / 3``
        so that the Lemma 2.5 bound ``(1 + eps') / (1 - eps')`` stays within
        the advertised ``1 + epsilon``.
    trace:
        Keep per-request :class:`~repro.core.events.RequestRecord` history.
    audit:
        Check every placement for overlaps (disable for huge traces).
    """

    name = "cost-oblivious"
    supports_reallocation = True

    def __init__(
        self, epsilon: float = 0.5, trace: bool = False, audit: bool = True
    ) -> None:
        if not 0 < epsilon <= 0.5:
            raise ValueError(f"epsilon must lie in (0, 1/2], got {epsilon}")
        super().__init__(trace=trace, audit=audit)
        self.epsilon = epsilon
        self.epsilon_prime = epsilon / 3.0
        self._regions: Dict[int, Region] = {}
        #: Where each live object sits: ("payload", class) or ("buffer", class, slot).
        self._placement: Dict[Hashable, Tuple] = {}

    # ------------------------------------------------------------ geometry
    @property
    def reserved_space(self) -> int:
        """Total space reserved by payload and buffer segments (Lemma 2.5)."""
        return sum(
            region.payload_capacity + region.buffer_capacity
            for region in self._regions.values()
        )

    @property
    def footprint_bound(self) -> float:
        """The reserved-space bound guaranteed after every request."""
        return (1.0 + self.epsilon) * max(self.volume, 0)

    def bounded_space(self) -> int:
        """The space measured against the footprint guarantee.

        For the amortized and checkpointed variants this is the reserved
        region space; the deamortized variant adds its tail buffer.
        """
        return self.reserved_space

    def space_bound(self, volume: int) -> float:
        """Guaranteed upper bound on :meth:`bounded_space` for ``volume``.

        Lemma 2.5: reserved space is at most ``(1 + eps') sum V_f(i)`` while
        the live volume is at least ``(1 - eps') sum V_f(i)``, so the ratio is
        ``(1 + eps') / (1 - eps')`` — which the choice ``eps' = eps / 3``
        keeps below the advertised ``1 + eps``.
        """
        eps = self.epsilon_prime
        return (1.0 + eps) / (1.0 - eps) * volume

    def region_indices(self) -> List[int]:
        """Active size-class indices in ascending order."""
        return sorted(self._regions)

    def region(self, index: int) -> Region:
        """The region for size class ``index`` (KeyError if absent)."""
        return self._regions[index]

    def buffered_volume(self) -> int:
        """Total space currently consumed inside buffer segments."""
        return sum(region.buffer_used for region in self._regions.values())

    def _buffer_fraction(self, volume: int) -> int:
        return int(self.epsilon_prime * volume)

    def _structure_end(self) -> int:
        if not self._regions:
            return 0
        return max(region.end for region in self._regions.values())

    # ------------------------------------------------------------- requests
    def _do_insert(self, name: Hashable, size: int) -> None:
        cls = size_class_of(size)
        indices = self.region_indices()
        if not indices or cls > indices[-1]:
            self._create_region_for(name, size, cls)
            return
        if self._try_buffer_insert(name, size, cls):
            return
        # No buffer can hold the object: flush a suffix of the regions (the
        # new object is counted in the recomputed class volumes and placed at
        # the end of its payload segment once the flush completes).
        self._flush(trigger_class=cls, pending_insert=(name, size, cls))

    def _do_delete(self, name: Hashable, size: int) -> None:
        placement = self._placement.pop(name)
        if placement[0] == "buffer":
            # The object never reached a payload segment; turn its buffer
            # slot into a delete record so the space stays consumed until the
            # next flush (keeps the Lemma 2.5 accounting intact).
            _, cls_index, slot = placement
            region = self._regions[cls_index]
            entry = region.buffer[slot]
            region.buffer[slot] = BufferEntry(None, entry.size, entry.size_class)
            self._free_object(name)
            return
        _, cls_index = placement
        region = self._regions[cls_index]
        del region.payload[name]
        self._free_object(name)
        cls = size_class_of(size)
        if self._try_buffer_record(size, cls):
            return
        # The delete record does not fit anywhere: flush.  The deleted object
        # is already excluded from the recomputed volumes, so no record is
        # needed afterwards.
        self._flush(trigger_class=cls, pending_insert=None)

    # ----------------------------------------------------------- placement
    def _create_region_for(self, name: Hashable, size: int, cls: int) -> None:
        """New largest size class: append a fresh region holding the object."""
        start = self._structure_end()
        region = Region(
            index=cls,
            start=start,
            payload_capacity=size,
            buffer_capacity=self._buffer_fraction(size),
        )
        region.payload[name] = None
        self._regions[cls] = region
        self._placement[name] = ("payload", cls)
        self._place_object(name, size, start, reason="insert:new-class")

    def _try_buffer_insert(self, name: Hashable, size: int, cls: int) -> bool:
        """Append the object to the earliest buffer of class >= cls with room."""
        for index in self.region_indices():
            if index < cls:
                continue
            region = self._regions[index]
            if region.buffer_free >= size:
                address = region.buffer_start + region.buffer_used
                region.buffer.append(BufferEntry(name, size, cls))
                region.buffer_used += size
                self._placement[name] = ("buffer", index, len(region.buffer) - 1)
                self._place_object(name, size, address, reason="insert:buffer")
                return True
        return False

    def _try_buffer_record(self, size: int, cls: int) -> bool:
        """Append a delete record to the earliest buffer of class >= cls with room."""
        for index in self.region_indices():
            if index < cls:
                continue
            region = self._regions[index]
            if region.buffer_free >= size:
                region.buffer.append(BufferEntry(None, size, cls))
                region.buffer_used += size
                return True
        return False

    # -------------------------------------------------------- flush planning
    def _boundary_class(self, trigger_class: int) -> int:
        """Largest ``b`` such that every buffered object in classes >= b and
        the triggering object belong to size classes >= b."""
        indices = self.region_indices()
        if not indices:
            return trigger_class
        low = trigger_class
        for j in range(indices[-1], 0, -1):
            region = self._regions.get(j)
            if region is not None:
                for entry in region.buffer:
                    if entry.size_class < low:
                        low = entry.size_class
            if low >= j:
                return j
        return 1

    def _plan_flush(
        self,
        trigger_class: int,
        pending_insert: Optional[Tuple[Hashable, int, int]] = None,
    ) -> FlushPlan:
        """Compute which regions flush and where every object ends up."""
        boundary = self._boundary_class(trigger_class)
        flushed_indices = [i for i in self.region_indices() if i >= boundary]

        volumes: Dict[int, int] = {}
        payload_objects: List[Tuple[Hashable, int, int]] = []
        buffered_objects: List[Tuple[Hashable, int, int]] = []
        for index in flushed_indices:
            region = self._regions[index]
            for obj_name in region.payload:
                obj_size = self._sizes[obj_name]
                volumes[index] = volumes.get(index, 0) + obj_size
                payload_objects.append((obj_name, obj_size, index))
            for entry in region.buffer:
                if entry.name is not None:
                    volumes[entry.size_class] = (
                        volumes.get(entry.size_class, 0) + entry.size
                    )
                    buffered_objects.append((entry.name, entry.size, entry.size_class))
        if pending_insert is not None:
            _, pending_size, pending_class = pending_insert
            volumes[pending_class] = volumes.get(pending_class, 0) + pending_size

        base = sum(
            self._regions[i].payload_capacity + self._regions[i].buffer_capacity
            for i in self.region_indices()
            if i < boundary
        )
        old_end = self._structure_end()

        new_classes = sorted(cls for cls, vol in volumes.items() if vol > 0)
        # Final destination of every object, grouped per class: surviving
        # payload objects first (in their current address order), then
        # buffered objects, then the flush-triggering insert.
        per_class: Dict[int, List[Tuple[Hashable, int]]] = {cls: [] for cls in new_classes}
        for obj_name, obj_size, cls in sorted(
            payload_objects, key=lambda item: self.space.extent_of(item[0]).start
        ):
            per_class[cls].append((obj_name, obj_size))
        for obj_name, obj_size, cls in buffered_objects:
            per_class[cls].append((obj_name, obj_size))
        if pending_insert is not None:
            pending_name, pending_size, pending_class = pending_insert
            per_class[pending_class].append((pending_name, pending_size))

        final_address: Dict[Hashable, int] = {}
        new_regions: Dict[int, Region] = {}
        cursor = base
        for cls in new_classes:
            region = Region(
                index=cls,
                start=cursor,
                payload_capacity=volumes[cls],
                buffer_capacity=self._buffer_fraction(volumes[cls]),
            )
            offset = cursor
            for obj_name, obj_size in per_class[cls]:
                final_address[obj_name] = offset
                region.payload[obj_name] = None
                offset += obj_size
            cursor = region.end
            new_regions[cls] = region

        return FlushPlan(
            boundary=boundary,
            flushed_indices=flushed_indices,
            payload_objects=payload_objects,
            buffered_objects=buffered_objects,
            volumes=volumes,
            base=base,
            old_end=old_end,
            new_end=cursor,
            final_address=final_address,
            new_regions=new_regions,
            pending_insert=pending_insert,
        )

    def _install_plan(self, plan: FlushPlan) -> None:
        """Replace the flushed regions with the plan's new regions."""
        for index in plan.flushed_indices:
            del self._regions[index]
        for cls, region in plan.new_regions.items():
            self._regions[cls] = region
            for obj_name in region.payload:
                self._placement[obj_name] = ("payload", cls)

    # ------------------------------------------------------- flush execution
    def _flush(
        self,
        trigger_class: int,
        pending_insert: Optional[Tuple[Hashable, int, int]],
    ) -> None:
        plan = self._plan_flush(trigger_class, pending_insert)
        moved_volume, move_count = self._execute_flush_moves(plan)
        self._install_plan(plan)
        if plan.pending_insert is not None:
            pending_name, pending_size, _ = plan.pending_insert
            self._place_object(
                pending_name,
                pending_size,
                plan.final_address[pending_name],
                reason="insert:flush",
            )
        self._note_flush(
            FlushRecord(
                boundary_class=plan.boundary,
                classes_flushed=tuple(plan.flushed_indices),
                moved_volume=moved_volume,
                move_count=move_count,
                checkpoints=0,
            )
        )

    def _execute_flush_moves(self, plan: FlushPlan) -> Tuple[int, int]:
        """Perform the four-step flush move sequence of Section 2.

        Returns ``(moved_volume, move_count)``.  Each buffered object moves at
        most twice (to the overflow segment and back), each payload object at
        most twice (pack left, then unpack to its final slot) — matching the
        "at most two moves per object" bound the paper uses.
        """
        moved_volume = 0
        move_count = 0
        overflow_base = max(plan.old_end, plan.new_end)

        def move(obj_name: Hashable, target: int, reason: str) -> None:
            nonlocal moved_volume, move_count
            current = self.space.extent_of(obj_name).start
            if current == target:
                return
            self._move_object(obj_name, target, reason=reason)
            moved_volume += self._sizes[obj_name]
            move_count += 1

        # Step 1: buffered objects out of the way, into the overflow segment.
        overflow_cursor = overflow_base
        for obj_name, obj_size, _cls in plan.buffered_objects:
            move(obj_name, overflow_cursor, "flush:to-overflow")
            overflow_cursor += obj_size
        self._note_transient_footprint(overflow_cursor)

        # Step 2: pack surviving payload objects as far left as possible.
        pack_cursor = plan.base
        for obj_name, obj_size, _cls in sorted(
            plan.payload_objects, key=lambda item: self.space.extent_of(item[0]).start
        ):
            move(obj_name, pack_cursor, "flush:pack")
            pack_cursor += obj_size

        # Step 3: unpack payload objects to their final destinations, from the
        # largest destination down so moves never collide.
        for obj_name, _obj_size, _cls in sorted(
            plan.payload_objects, key=lambda item: plan.final_address[item[0]], reverse=True
        ):
            move(obj_name, plan.final_address[obj_name], "flush:unpack")

        # Step 4: buffered objects from the overflow segment to the end of
        # their class's payload segment.
        for obj_name, _obj_size, _cls in plan.buffered_objects:
            move(obj_name, plan.final_address[obj_name], "flush:place")

        return moved_volume, move_count

    def describe(self) -> str:
        return f"{self.name}(eps={self.epsilon:g})"
