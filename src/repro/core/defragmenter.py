"""The Theorem 2.7 cost-oblivious defragmenter.

Given a set of objects with an existing allocation occupying at most
``(1 + eps) V`` space and an arbitrary comparison key, the defragmenter sorts
the objects in place subject to:

* the total space usage never exceeds ``(1 + eps) V + Delta`` (up to the
  transient overflow segment of the inner reallocator, which is reported
  separately), and
* the total move cost is ``O((1/eps) log(1/eps))`` times the cost of
  allocating all of the objects — under every monotone subadditive cost
  function, without knowing which one applies.

It works exactly as in the paper's proof: first **crunch** every object into
the rightmost ``V`` space (leaving a ``floor(eps V)`` prefix empty); then,
scanning that suffix left to right, pull each object out (staging it in the
extra ``Delta`` working space at the very end) and insert it into a
cost-oblivious reallocator that lives in the prefix; finally extract the
objects from the reallocator in reverse sorted order, placing each directly
in front of its successor in the suffix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.events import MoveEvent
from repro.core.reallocator import CostObliviousReallocator
from repro.core.stats import AllocatorStats
from repro.storage.address_space import AddressSpace
from repro.storage.extent import Extent


@dataclass
class DefragmentationResult:
    """Outcome of one defragmentation run."""

    #: Final name -> start address, sorted by key and packed into the suffix.
    layout: Dict[Hashable, int]
    #: Total volume of the objects.
    volume: int
    #: Largest object size.
    delta: int
    #: Initial footprint (largest occupied address before defragmentation).
    initial_footprint: int
    #: Largest address used by the suffix, staging area, or final layout.
    peak_footprint: int
    #: Largest address transiently used by the inner reallocator's prefix.
    peak_prefix_footprint: int
    #: Smallest observed gap between the prefix's reserved space and the
    #: first remaining suffix object; nonnegative means they never overlapped.
    min_prefix_suffix_gap: int
    #: Every physical move performed, in order.
    moves: List[MoveEvent] = field(default_factory=list)
    #: Aggregate statistics (allocation vs reallocation histograms).
    stats: AllocatorStats = field(default_factory=AllocatorStats)

    @property
    def total_moves(self) -> int:
        return len(self.moves)

    @property
    def moves_per_object(self) -> float:
        objects = len(self.layout)
        return self.total_moves / objects if objects else 0.0

    def cost_ratio(self, cost_function) -> float:
        """Move cost divided by the cost of allocating every object once."""
        return self.stats.cost_ratio(cost_function)


class Defragmenter:
    """Cost-oblivious defragmentation / sorting (Theorem 2.7).

    Parameters
    ----------
    epsilon:
        Space slack: the run targets ``(1 + epsilon) V + Delta`` addresses.
        Must satisfy ``0 < epsilon <= 1/2``.
    key:
        Comparison key mapping an object name to a sortable value; defaults
        to sorting by the name itself.
    """

    def __init__(
        self,
        epsilon: float = 0.5,
        key: Optional[Callable[[Hashable], object]] = None,
    ) -> None:
        if not 0 < epsilon <= 0.5:
            raise ValueError(f"epsilon must lie in (0, 1/2], got {epsilon}")
        self.epsilon = epsilon
        self.key = key if key is not None else (lambda name: name)

    def defragment(
        self,
        objects: Sequence[Tuple[Hashable, int]],
        allocation: Dict[Hashable, int],
    ) -> DefragmentationResult:
        """Sort ``objects`` (pairs of ``(name, size)``) currently placed at
        ``allocation`` (name -> start address).

        The input allocation must be overlap-free and fit within
        ``(1 + epsilon) V`` space; both conditions are validated.
        """
        sizes = dict(objects)
        if len(sizes) != len(objects):
            raise ValueError("duplicate object names in the input")
        if not sizes:
            return DefragmentationResult(
                layout={},
                volume=0,
                delta=0,
                initial_footprint=0,
                peak_footprint=0,
                peak_prefix_footprint=0,
                min_prefix_suffix_gap=0,
            )
        volume = sum(sizes.values())
        delta = max(sizes.values())

        space = AddressSpace(validate=True)
        for name, size in sizes.items():
            if name not in allocation:
                raise ValueError(f"object {name!r} has no starting address")
            space.place(name, Extent(allocation[name], size))
        initial_footprint = space.footprint()
        allowed = (1.0 + self.epsilon) * volume
        if initial_footprint > allowed + 1e-9:
            raise ValueError(
                f"initial allocation occupies {initial_footprint} which exceeds "
                f"(1+eps)V = {allowed:.1f}"
            )

        stats = AllocatorStats()
        for size in sizes.values():
            stats.record_allocation(size)
        moves: List[MoveEvent] = []
        peak = initial_footprint

        def shift(name: Hashable, target: int, reason: str) -> None:
            nonlocal peak
            size = sizes[name]
            old = space.extent_of(name)
            if old.start == target:
                return
            new = Extent(target, size)
            space.move(name, new)
            stats.record_move(size)
            moves.append(MoveEvent(name, size, old, new, reason))
            peak = max(peak, new.end)

        suffix_end = max(int(self.epsilon * volume) + volume, initial_footprint)
        staging_start = suffix_end

        # Phase 1: crunch every object into the rightmost V space, processing
        # from the rightmost object down so moves never collide.
        cursor = suffix_end
        ordered = sorted(sizes, key=lambda n: space.extent_of(n).start, reverse=True)
        for name in ordered:
            cursor -= sizes[name]
            shift(name, cursor, "defrag:crunch")
        suffix_names: List[Hashable] = list(reversed(ordered))  # ascending address

        # Phase 2: pull objects out of the suffix left to right, stage them in
        # the Delta working space at the very end, and insert them into a
        # cost-oblivious reallocator occupying the prefix.
        realloc = CostObliviousReallocator(epsilon=self.epsilon, audit=True)
        min_gap = suffix_end
        for position, name in enumerate(suffix_names):
            size = sizes[name]
            shift(name, staging_start, "defrag:stage")
            peak = max(peak, staging_start + size)
            staging_extent = space.extent_of(name)
            space.remove(name)
            record = realloc.insert(name, size)
            for event in record.moves:
                if event.source is None:
                    # The object's arrival in the prefix is a physical move
                    # out of the staging area.
                    stats.record_move(event.size)
                    moves.append(
                        MoveEvent(
                            event.name,
                            event.size,
                            staging_extent,
                            event.destination,
                            "defrag:into-prefix",
                        )
                    )
                else:
                    stats.record_move(event.size)
                    moves.append(event)
            # The theorem's key claim: the prefix never reaches the remaining
            # suffix objects.
            if position + 1 < len(suffix_names):
                next_start = space.extent_of(suffix_names[position + 1]).start
                min_gap = min(min_gap, next_start - realloc.reserved_space)

        # Phase 3: delete objects from the reallocator in reverse sorted order
        # and place each just before its successor in the suffix.
        cursor = suffix_end
        final_layout: Dict[Hashable, int] = {}
        for name in sorted(sizes, key=self.key, reverse=True):
            size = sizes[name]
            source = Extent(realloc.address_of(name), size)
            record = realloc.delete(name)
            for event in record.moves:
                if event.source is not None:
                    stats.record_move(event.size)
                    moves.append(event)
            cursor -= size
            destination = Extent(cursor, size)
            space.place(name, destination)
            stats.record_move(size)
            moves.append(MoveEvent(name, size, source, destination, "defrag:final"))
            final_layout[name] = cursor
            peak = max(peak, space.footprint())
            min_gap = min(min_gap, cursor - realloc.reserved_space)

        return DefragmentationResult(
            layout=final_layout,
            volume=volume,
            delta=delta,
            initial_footprint=initial_footprint,
            peak_footprint=peak,
            peak_prefix_footprint=realloc.stats.max_transient_footprint,
            min_prefix_suffix_gap=min_gap,
            moves=moves,
            stats=stats,
        )
