"""ASCII rendering of the reallocator's region layout.

Reproduces the paper's Figure 2 (payload + buffer segments per size class)
and, together with the flush tracing in the examples, Figure 3 (a flush
walk-through) directly from a live data structure rather than as a drawing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.reallocator import CostObliviousReallocator


@dataclass(frozen=True)
class RegionView:
    """A read-only summary of one region used for rendering and reporting."""

    index: int
    start: int
    payload_capacity: int
    buffer_capacity: int
    payload_volume: int
    payload_objects: int
    buffer_used: int
    buffer_live_objects: int
    buffer_delete_records: int

    @property
    def end(self) -> int:
        return self.start + self.payload_capacity + self.buffer_capacity


def layout_regions(reallocator: "CostObliviousReallocator") -> List[RegionView]:
    """Summarise every region of ``reallocator`` in class order."""
    views = []
    for index in reallocator.region_indices():
        region = reallocator.region(index)
        payload_volume = sum(reallocator.size_of(name) for name in region.payload)
        live = sum(1 for entry in region.buffer if entry.name is not None)
        deletes = sum(1 for entry in region.buffer if entry.name is None)
        views.append(
            RegionView(
                index=index,
                start=region.start,
                payload_capacity=region.payload_capacity,
                buffer_capacity=region.buffer_capacity,
                payload_volume=payload_volume,
                payload_objects=len(region.payload),
                buffer_used=region.buffer_used,
                buffer_live_objects=live,
                buffer_delete_records=deletes,
            )
        )
    return views


def render_layout(reallocator: "CostObliviousReallocator", width: int = 72) -> str:
    """Render the address-space layout as ASCII art (one bar per region).

    Payload space is drawn with ``#`` for occupied volume and ``.`` for holes
    left by deletions; buffer space with ``o`` for live buffered objects,
    ``x`` for delete records, and ``_`` for free buffer space — the textual
    analogue of Figure 2's light/dark shading.
    """
    views = layout_regions(reallocator)
    if not views:
        return "(empty layout)"
    total = views[-1].end
    scale = max(total, 1) / max(width, 8)
    lines = [
        f"footprint={reallocator.footprint} reserved={reallocator.reserved_space} "
        f"volume={reallocator.volume}"
    ]
    for view in views:
        payload_cells = max(1, round(view.payload_capacity / scale)) if view.payload_capacity else 0
        buffer_cells = max(1, round(view.buffer_capacity / scale)) if view.buffer_capacity else 0
        filled = 0
        if view.payload_capacity:
            filled = round(payload_cells * view.payload_volume / view.payload_capacity)
        payload_bar = "#" * filled + "." * (payload_cells - filled)
        if view.buffer_capacity:
            live_cells = round(buffer_cells * view.buffer_used / view.buffer_capacity)
            dead_cells = (
                round(live_cells * view.buffer_delete_records / max(1, view.buffer_live_objects + view.buffer_delete_records))
                if view.buffer_used
                else 0
            )
            buffer_bar = (
                "o" * (live_cells - dead_cells) + "x" * dead_cells + "_" * (buffer_cells - live_cells)
            )
        else:
            buffer_bar = ""
        lines.append(
            f"class {view.index:>2} [{view.start:>8}] |{payload_bar}|{buffer_bar}| "
            f"payload {view.payload_volume}/{view.payload_capacity} "
            f"buffer {view.buffer_used}/{view.buffer_capacity}"
        )
    return "\n".join(lines)
