"""Executable checks of the paper's structural invariants.

Invariant 2.2 of the paper says:

1. the i-th region comprises the i-th payload and i-th buffer segment,
2. the overflow segment stores elements only temporarily during reallocation,
3. the i-th payload segment only stores elements from the i-th size class,
4. the i-th buffer segment only stores elements from size classes <= i,

and Invariant 2.4 pins the segment capacities set by a flush (payload
capacity equal to the class volume at flush time, buffer capacity an
``eps'`` fraction of it).  :func:`check_invariants` re-derives all of these
from a live reallocator plus the Lemma 2.5 space bound, raising
:class:`InvariantViolation` with a precise message on the first failure.
The property-based tests call it after every request.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.size_classes import size_class_of

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.reallocator import CostObliviousReallocator


class InvariantViolation(AssertionError):
    """A structural invariant of the reallocator does not hold."""


def check_invariants(reallocator: "CostObliviousReallocator") -> None:
    """Verify Invariants 2.2–2.4 and the Lemma 2.5 space bound.

    Intended to be called between requests (the paper's invariants are
    allowed to be violated transiently inside a buffer flush).  For the
    deamortized variant, the space bound is relaxed by the additive ``Delta``
    that Lemma 3.5 allows while a flush is in progress.
    """
    indices = reallocator.region_indices()
    flush_in_progress = bool(getattr(reallocator, "flush_in_progress", False))

    # --- region geometry: ordered, contiguous, non-overlapping -------------
    cursor = 0
    for index in indices:
        region = reallocator.region(index)
        if region.index != index:
            raise InvariantViolation(f"region keyed {index} reports index {region.index}")
        if region.start != cursor:
            raise InvariantViolation(
                f"region {index} starts at {region.start}, expected {cursor} "
                "(regions must be contiguous in class order)"
            )
        if region.payload_capacity < 0 or region.buffer_capacity < 0:
            raise InvariantViolation(f"region {index} has negative capacity")
        cursor = region.end

    # --- payload and buffer contents (Invariant 2.2 items 3 and 4) ---------
    seen = set()
    for index in indices:
        region = reallocator.region(index)
        payload_volume = 0
        for name in region.payload:
            if name in seen:
                raise InvariantViolation(f"object {name!r} appears in two segments")
            seen.add(name)
            size = reallocator.size_of(name)
            payload_volume += size
            if size_class_of(size) != index:
                raise InvariantViolation(
                    f"payload of region {index} holds {name!r} of class "
                    f"{size_class_of(size)}"
                )
            extent = reallocator.space.extent_of(name)
            if not flush_in_progress and (
                extent.start < region.start
                or extent.end > region.start + region.payload_capacity
            ):
                raise InvariantViolation(
                    f"payload object {name!r} at {extent} escapes region {index}'s "
                    f"payload segment [{region.start}, {region.start + region.payload_capacity})"
                )
        if payload_volume > region.payload_capacity:
            raise InvariantViolation(
                f"region {index} payload volume {payload_volume} exceeds capacity "
                f"{region.payload_capacity}"
            )

        buffer_volume = 0
        for entry in region.buffer:
            buffer_volume += entry.size
            if entry.size_class > index and not flush_in_progress:
                # (During a deamortized flush the tail buffer — which accepts
                # every class — is temporarily folded into the last region.)
                raise InvariantViolation(
                    f"buffer of region {index} holds an entry of larger class "
                    f"{entry.size_class}"
                )
            if entry.name is not None:
                if entry.name in seen:
                    raise InvariantViolation(
                        f"object {entry.name!r} appears in two segments"
                    )
                seen.add(entry.name)
                if size_class_of(reallocator.size_of(entry.name)) != entry.size_class:
                    raise InvariantViolation(
                        f"buffer entry for {entry.name!r} records the wrong class"
                    )
                extent = reallocator.space.extent_of(entry.name)
                if extent.start < region.buffer_start or extent.end > region.end:
                    if not flush_in_progress:
                        raise InvariantViolation(
                            f"buffered object {entry.name!r} at {extent} escapes "
                            f"region {index}'s buffer segment"
                        )
        if buffer_volume != region.buffer_used:
            raise InvariantViolation(
                f"region {index} buffer_used={region.buffer_used} but entries sum "
                f"to {buffer_volume}"
            )
        if not flush_in_progress and region.buffer_used > region.buffer_capacity:
            raise InvariantViolation(
                f"region {index} buffer overfull: {region.buffer_used} > "
                f"{region.buffer_capacity}"
            )

    # --- every live object accounted for ------------------------------------
    live = set(reallocator.space)
    unaccounted = live - seen - set(getattr(reallocator, "_extra_live_names", lambda: set())())
    if unaccounted and not flush_in_progress:
        raise InvariantViolation(f"live objects not in any segment: {sorted(map(str, unaccounted))[:5]}")

    # --- pairwise disjoint placements ---------------------------------------
    reallocator.space.verify_disjoint()

    # --- Lemma 2.5 space bound ----------------------------------------------
    volume = reallocator.volume
    if volume > 0:
        bound = reallocator.space_bound(volume)
        if flush_in_progress:
            bound += reallocator.delta + getattr(reallocator, "log_volume", lambda: 0)()
        reserved = reallocator.bounded_space()
        if reserved > bound + 1e-9:
            raise InvariantViolation(
                f"reserved space {reserved} exceeds the Lemma 2.5 bound {bound:.1f} "
                f"for volume {volume}"
            )
