"""Command-line entry point: list and run the registered experiments.

Examples
--------

List everything that can be reproduced::

    python -m repro list

Run the footprint experiment with full-size traces::

    python -m repro run E1 --full

Run every experiment quickly (the same tables the benchmarks print)::

    python -m repro run all
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness import EXPERIMENTS, run_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cost-oblivious storage reallocation (PODS 2014) reproduction harness",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list the registered experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id, e.g. E1, F3, or 'all'")
    run_parser.add_argument(
        "--full",
        action="store_true",
        help="use full-size traces instead of the quick defaults",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        width = max(len(key) for key in EXPERIMENTS)
        for key in sorted(EXPERIMENTS):
            experiment = EXPERIMENTS[key]
            print(f"{key.ljust(width)}  {experiment.title}  [{experiment.paper_reference}]")
        return 0
    if args.command == "run":
        targets = sorted(EXPERIMENTS) if args.experiment.lower() == "all" else [args.experiment]
        for target in targets:
            result = run_experiment(target, quick=not args.full)
            print(result.to_text())
            print()
        return 0
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
