"""Command-line entry point: experiments, campaign sweeps, trace analytics.

Examples
--------

List everything that can be reproduced::

    python -m repro list

Run the footprint experiment with full-size traces::

    python -m repro run E1 --full

Sweep a campaign matrix over four worker processes::

    python -m repro sweep campaign.json --jobs 4 --out results/demo

Characterise a recorded trace before sweeping it (streams — a 10M-request
v2 file is analyzed without materialising it)::

    python -m repro trace analyze traces/prod.trace

Re-render the tables and terminal charts of an already-recorded sweep::

    python -m repro sweep report results/demo

Sweep with telemetry on and inspect the recorded spans and counters::

    python -m repro sweep campaign.json --telemetry --out results/demo
    python -m repro obs report results/demo/telemetry.jsonl
    python -m repro sweep report results/demo --telemetry

Re-encode a text trace into the compressed binary v2 format and inspect it
(both stream, so multi-million-request files are fine)::

    python -m repro trace convert traces/prod.trace traces/prod.v2 --format v2 --compress
    python -m repro trace info traces/prod.v2

Convert to the block-indexed v3 format and analyze it sharded over four
worker processes (byte-identical output, a fraction of the wall time)::

    python -m repro trace convert traces/prod.trace traces/prod.v3 --format v3
    python -m repro trace analyze traces/prod.v3 --jobs 4
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness import EXPERIMENTS, run_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cost-oblivious storage reallocation (PODS 2014) reproduction harness",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list the registered experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id, e.g. E1, F3, or 'all'")
    run_parser.add_argument(
        "--full",
        action="store_true",
        help="use full-size traces instead of the quick defaults",
    )

    sweep_parser = subparsers.add_parser(
        "sweep",
        help=(
            "run a campaign spec (workloads x allocators x costs x devices); "
            "subcommands: report DIR, enqueue SPEC DIR, work DIR, merge DIR, "
            "diff BASELINE CANDIDATE"
        ),
    )
    sweep_parser.add_argument(
        "spec",
        help=(
            "path to a campaign spec JSON file, or one of the literals "
            "'report', 'enqueue', 'work', 'merge', 'diff'"
        ),
    )
    sweep_parser.add_argument(
        "args",
        nargs="*",
        default=[],
        metavar="ARG",
        help=(
            "subcommand arguments: report DIR | enqueue SPEC DIR | work DIR | "
            "merge DIR | diff BASELINE CANDIDATE (artifact dirs or "
            "results.json paths)"
        ),
    )
    sweep_parser.add_argument(
        "--cell",
        default=None,
        metavar="SUBSTR",
        help="(report) only chart cells whose id contains this substring",
    )
    sweep_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes in one pool (default 1 = serial; 0 = one per CPU)",
    )
    sweep_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "run the sweep through the file-backed work queue with N local "
            "worker processes (0 = one per CPU), then merge; the queue "
            "directory is <out>, and more 'repro sweep work <out>' workers "
            "may join from other hosts on a shared filesystem"
        ),
    )
    sweep_parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="artifact directory (default: campaign-<spec name>)",
    )
    sweep_parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-cell progress lines on stderr",
    )
    sweep_parser.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help=(
            "skip cells already recorded ok in DIR/results.json (or its "
            "crash-safe journals) and only run the missing or failed ones "
            "(artifacts default to DIR)"
        ),
    )
    sweep_parser.add_argument(
        "--telemetry",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help=(
            "record spans/counters/resources while sweeping (JSONL to PATH, "
            "default <out>/telemetry.jsonl); with 'sweep report', render the "
            "recorded per-cell telemetry tables"
        ),
    )
    sweep_parser.add_argument(
        "--profile",
        action="store_true",
        help="dump a cProfile .pstats file per cell under <out>/profiles/",
    )
    sweep_parser.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "(work/merge/--workers) seconds before an unheartbeated lease is "
            "presumed dead and its cell re-queued (default 300; must exceed "
            "the longest single cell)"
        ),
    )
    sweep_parser.add_argument(
        "--max-cells",
        type=int,
        default=None,
        metavar="N",
        help="(work) stop this worker after N cells instead of draining the queue",
    )
    sweep_parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "(work/--workers) run each cell in a watchdog subprocess and record "
            "a typed worker_timeout error instead of hanging if it overruns"
        ),
    )
    sweep_parser.add_argument(
        "--tolerance",
        action="append",
        default=[],
        metavar="METRIC=PCT",
        help=(
            "(diff) allow METRIC to rise by up to PCT percent before it "
            "counts as a regression (repeatable; unlisted metrics are exact)"
        ),
    )
    sweep_parser.add_argument(
        "--fail-on-regression",
        action="store_true",
        help=(
            "(diff) exit 1 on any metric regression, missing cell, or newly "
            "erroring cell — the CI gate mode"
        ),
    )

    trace_parser = subparsers.add_parser("trace", help="trace file utilities")
    trace_sub = trace_parser.add_subparsers(dest="trace_command")
    analyze_parser = trace_sub.add_parser(
        "analyze",
        help="print footprint / size / lifetime / death-time analytics (streaming)",
    )
    analyze_parser.add_argument("path", help="path to a trace file (any known format)")
    analyze_parser.add_argument(
        "--no-chart",
        action="store_true",
        help="suppress the live-volume terminal chart after the tables",
    )
    analyze_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard the scan over N worker processes (block-indexed v3 traces; "
        "output is byte-identical to the serial scan)",
    )
    convert_parser = trace_sub.add_parser(
        "convert", help="re-encode a trace file into another format version (streaming)"
    )
    convert_parser.add_argument("input", help="source trace file (any known format)")
    convert_parser.add_argument("output", help="destination trace file")
    convert_parser.add_argument(
        "--format",
        choices=["v0", "v1", "v2", "v3"],
        default="v2",
        help="output format version (default: v2, the binary format; "
        "v3 adds a seekable block index)",
    )
    convert_parser.add_argument(
        "--compress",
        action="store_true",
        help="zlib-compress the record body (v2: one stream, v3: per block)",
    )
    convert_parser.add_argument(
        "--block-size",
        type=int,
        default=None,
        metavar="RECORDS",
        help="records per block for v3 output (default: 65536)",
    )
    info_parser = trace_sub.add_parser(
        "info", help="print a trace file's format, counts, and peak volume (streaming)"
    )
    info_parser.add_argument("path", help="path to a trace file (any known format)")

    obs_parser = subparsers.add_parser("obs", help="telemetry log utilities")
    obs_sub = obs_parser.add_subparsers(dest="obs_command")
    obs_report_parser = obs_sub.add_parser(
        "report",
        help="render a telemetry JSONL log: span timeline, counters, per-cell trees",
    )
    obs_report_parser.add_argument("path", help="path to a telemetry .jsonl log")
    obs_report_parser.add_argument(
        "--cell",
        default=None,
        metavar="SUBSTR",
        help="only render cells whose id contains this substring",
    )
    obs_report_parser.add_argument(
        "--check",
        action="store_true",
        help="validate every event against the schema and exit nonzero on problems",
    )

    chaos_parser = subparsers.add_parser(
        "chaos",
        help="fault-injection chaos testing of the distributed sweep machinery",
    )
    chaos_sub = chaos_parser.add_subparsers(dest="chaos_command")
    chaos_sub.add_parser("sites", help="list every named fault site")
    chaos_sweep_parser = chaos_sub.add_parser(
        "sweep",
        help=(
            "run a campaign spec repeatedly under fault schedules and check "
            "every run converges to the fault-free result"
        ),
    )
    chaos_sweep_parser.add_argument("spec", help="path to a campaign spec JSON file")
    chaos_sweep_parser.add_argument(
        "--faults",
        default=None,
        metavar="PLAN.json",
        help=(
            "run one explicit fault plan (JSON: {seed, rules: [{site, action, "
            "...}]}) instead of the generated schedules"
        ),
    )
    chaos_sweep_parser.add_argument(
        "--seeds",
        type=int,
        default=0,
        metavar="N",
        help="append N seeded multi-fault schedules (seeds 0..N-1)",
    )
    chaos_sweep_parser.add_argument(
        "--single-faults",
        action="store_true",
        help="prepend the systematic battery: one raise and one crash per site",
    )
    chaos_sweep_parser.add_argument(
        "--sites",
        default=None,
        metavar="GLOB",
        help="restrict generated schedules to sites matching this glob",
    )
    chaos_sweep_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per faulted round (default 1)",
    )
    chaos_sweep_parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="root directory for schedule artifacts (default: chaos-<spec name>)",
    )
    chaos_sweep_parser.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="lease TTL for the faulted rounds (default 30)",
    )
    chaos_sweep_parser.add_argument(
        "--baseline",
        default=None,
        metavar="DIR",
        help="write the fault-free baseline artifact here (default <out>/baseline)",
    )
    chaos_sweep_parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-schedule progress lines on stderr",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help=(
            "serve live allocation sessions over a socket (one replayable "
            "v3 trace per tenant; STATS/SNAPSHOT/DRAIN control verbs)"
        ),
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=0,
        metavar="N",
        help="TCP port (default 0 = pick a free port; printed on startup)",
    )
    serve_parser.add_argument(
        "--allocator",
        default="first_fit",
        metavar="KIND",
        help=(
            "allocator spec per arena: a kind name (first_fit, buddy, ...) or "
            'a JSON object like \'{"kind": "buddy", "audit": false}\''
        ),
    )
    arena = serve_parser.add_mutually_exclusive_group()
    arena.add_argument(
        "--arena-per-tenant",
        dest="shared",
        action="store_false",
        help="give every tenant its own allocator arena (the default)",
    )
    arena.add_argument(
        "--shared",
        dest="shared",
        action="store_true",
        help="one shared arena; tenant object names are namespaced",
    )
    serve_parser.set_defaults(shared=False)
    serve_parser.add_argument(
        "--max-batch",
        type=int,
        default=None,
        metavar="N",
        help="cap on one coalesced batch fed to the allocator (default 4096)",
    )
    serve_parser.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        metavar="N",
        help="per-tenant queue depth before backpressure (default 32)",
    )
    serve_parser.add_argument(
        "--trace-dir",
        default=".",
        metavar="DIR",
        help="directory for the per-tenant v3 session traces (default .)",
    )
    serve_parser.add_argument(
        "--snapshot-dir",
        default=None,
        metavar="DIR",
        help="directory for SNAPSHOT files (default: --trace-dir)",
    )
    serve_parser.add_argument(
        "--label",
        default="serve",
        help="artifact filename prefix (default 'serve')",
    )

    load_parser = subparsers.add_parser(
        "load",
        help="saturation load harness against a running 'repro serve'",
    )
    load_parser.add_argument(
        "target", metavar="HOST:PORT", help="server address, e.g. 127.0.0.1:9876"
    )
    load_parser.add_argument(
        "--clients", type=int, default=4, metavar="N", help="client threads (default 4)"
    )
    load_parser.add_argument(
        "--requests",
        type=int,
        default=10_000,
        metavar="M",
        help="requests per client (default 10000)",
    )
    load_parser.add_argument(
        "--pattern",
        choices=["churn", "grow_shrink", "sliding"],
        default="churn",
        help="synthetic workload shape per client (default churn)",
    )
    load_parser.add_argument(
        "--target-live",
        type=int,
        default=200,
        metavar="N",
        help="steady-state live objects per client (churn/sliding; default 200)",
    )
    load_parser.add_argument(
        "--seed", type=int, default=0, help="base workload seed (client i uses seed+i)"
    )
    load_parser.add_argument(
        "--batch",
        type=int,
        default=500,
        metavar="N",
        help="requests per wire batch (default 500)",
    )
    load_parser.add_argument(
        "--window",
        type=int,
        default=4,
        metavar="N",
        help="pipelined batches kept in flight per client (default 4)",
    )
    load_parser.add_argument(
        "--json",
        action="store_true",
        help="print the full report as JSON instead of the summary line",
    )
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    targets = sorted(EXPERIMENTS) if args.experiment.lower() == "all" else [args.experiment]
    for target in targets:
        try:
            result = run_experiment(target, quick=not args.full)
        except KeyError as error:
            # get_experiment raises KeyError("unknown experiment 'X'; known: ...").
            print(f"repro run: {error.args[0]}", file=sys.stderr)
            return 2
        print(result.to_text())
        print()
    return 0


def _cmd_sweep_report(args: argparse.Namespace) -> int:
    import os

    from repro.campaign import load_results, sweep_report

    if not args.args:
        print(
            "repro sweep report: name the campaign artifact directory "
            "(repro sweep report <dir>)",
            file=sys.stderr,
        )
        return 2
    results_path = os.path.join(args.args[0], "results.json")
    try:
        document = load_results(results_path)
    except (OSError, ValueError) as error:
        print(f"repro sweep report: cannot load {results_path!r}: {error}", file=sys.stderr)
        return 2
    print(
        sweep_report(
            document, cell_filter=args.cell, telemetry=args.telemetry is not None
        )
    )
    return 0


def _load_artifact(target: str):
    """Load a results document from an artifact directory or a file path."""
    import os

    from repro.campaign import load_results

    path = os.path.join(target, "results.json") if os.path.isdir(target) else target
    return path, load_results(path)


def _cmd_sweep_enqueue(args: argparse.Namespace) -> int:
    import os

    from repro.campaign import CampaignSpec, completed_records, enqueue_campaign, load_results
    from repro.campaign.queue import QueueError, results_path

    if len(args.args) != 1:
        print(
            "repro sweep enqueue: usage: repro sweep enqueue <spec.json> <dir>",
            file=sys.stderr,
        )
        return 2
    spec_file, directory = args.spec_file, args.args[0]
    try:
        spec = CampaignSpec.from_json(spec_file)
    except (OSError, ValueError) as error:
        print(f"repro sweep enqueue: cannot load spec {spec_file!r}: {error}", file=sys.stderr)
        return 2
    # A previously merged artifact in the directory is the resume point:
    # cells it records ok are not re-enqueued (the merge keeps their records).
    completed = None
    merged = results_path(directory)
    if os.path.exists(merged):
        try:
            document = load_results(merged)
        except (OSError, ValueError) as error:
            print(f"repro sweep enqueue: cannot read {merged!r}: {error}", file=sys.stderr)
            return 2
        if int(document.get("seed", 0)) != spec.seed or document.get("campaign") != spec.name:
            print(
                f"repro sweep enqueue: {directory!r} holds artifacts of campaign "
                f"{document.get('campaign')!r} (seed {document.get('seed')}); "
                "use a fresh directory",
                file=sys.stderr,
            )
            return 2
        if document.get("spec", {}).get("observers", []) != spec.observers:
            print(
                f"repro sweep enqueue: observer configuration changed since "
                f"{merged!r} was recorded; use a fresh directory",
                file=sys.stderr,
            )
            return 2
        completed = completed_records(document)
    try:
        enqueued = enqueue_campaign(
            spec,
            directory,
            completed=completed,
            telemetry=args.telemetry is not None,
            profile_dir=os.path.join(directory, "profiles") if args.profile else None,
        )
    except (QueueError, OSError, ValueError) as error:
        print(f"repro sweep enqueue: {error}", file=sys.stderr)
        return 2
    skipped = len(completed) if completed else 0
    line = f"enqueued {enqueued} cell(s) into {directory}"
    if skipped:
        line += f" ({skipped} already complete in results.json)"
    print(line)
    print(f"drain with: repro sweep work {directory}  (any number of workers)")
    print(f"then merge: repro sweep merge {directory}")
    return 0


def _cmd_sweep_work(args: argparse.Namespace) -> int:
    from repro.campaign import work_queue
    from repro.campaign.queue import DEFAULT_LEASE_TTL, QueueError, worker_token

    if len(args.args) != 1:
        print("repro sweep work: usage: repro sweep work <dir>", file=sys.stderr)
        return 2
    directory = args.args[0]
    token = worker_token()

    def progress(done, _total, record):
        if not args.quiet:
            status = "ok   " if record["status"] == "ok" else "ERROR"
            print(
                f"[{token}] {status} {record['cell_id']} "
                f"({record['elapsed_seconds']:.2f}s, {done} done)",
                file=sys.stderr,
            )

    try:
        executed = work_queue(
            directory,
            token=token,
            lease_ttl=args.lease_ttl if args.lease_ttl is not None else DEFAULT_LEASE_TTL,
            max_cells=args.max_cells,
            progress=progress,
            cell_timeout=args.cell_timeout,
        )
    except (QueueError, OSError) as error:
        print(f"repro sweep work: {error}", file=sys.stderr)
        return 2
    print(f"worker {token}: executed {executed} cell(s) from {directory}")
    return 0


def _cmd_sweep_merge(args: argparse.Namespace) -> int:
    from repro.campaign import document_table, merge_queue
    from repro.campaign.queue import DEFAULT_LEASE_TTL, QueueError

    if len(args.args) != 1:
        print("repro sweep merge: usage: repro sweep merge <dir>", file=sys.stderr)
        return 2
    try:
        merged = merge_queue(
            args.args[0],
            lease_ttl=args.lease_ttl if args.lease_ttl is not None else DEFAULT_LEASE_TTL,
        )
    except (QueueError, ValueError, OSError) as error:
        print(f"repro sweep merge: {error}", file=sys.stderr)
        return 2
    print(document_table(merged.document).to_text())
    print()
    summary = (
        f"merged {merged.records} record(s) "
        f"({merged.from_journals} from {len(merged.workers)} worker journal(s), "
        f"{merged.from_previous} carried from the previous artifact)"
    )
    if merged.reclaimed_leases:
        summary += f"; reclaimed {merged.reclaimed_leases} expired lease(s)"
    if merged.skipped_lines:
        summary += f"; skipped {merged.skipped_lines} truncated journal line(s)"
    print(summary)
    if merged.pending:
        print(
            f"pending: {len(merged.pending)} cell(s) still queued — keep workers "
            "running and merge again"
        )
    print(f"artifacts: {merged.paths['results']}  {merged.paths['csv']}")
    errors = merged.document.get("errors", 0)
    return 1 if errors else 0


def _cmd_sweep_diff(args: argparse.Namespace) -> int:
    from repro.campaign import ToleranceError, diff_documents, diff_table, parse_tolerances

    if len(args.args) != 2:
        print(
            "repro sweep diff: usage: repro sweep diff <baseline> <candidate> "
            "[--tolerance metric=pct] [--fail-on-regression] "
            "(artifact directories or results.json paths)",
            file=sys.stderr,
        )
        return 2
    try:
        tolerances = parse_tolerances(args.tolerance)
    except ToleranceError as error:
        print(f"repro sweep diff: {error}", file=sys.stderr)
        return 2
    documents = []
    for target in args.args:
        try:
            path, document = _load_artifact(target)
        except (OSError, ValueError) as error:
            print(f"repro sweep diff: cannot load {target!r}: {error}", file=sys.stderr)
            return 2
        documents.append(document)
    diff = diff_documents(documents[0], documents[1], tolerances=tolerances)
    print(diff_table(diff).to_text())
    if diff.regressions:
        print()
        print(
            f"{len(diff.regressions)} metric regression(s) beyond tolerance "
            f"across {len({d.cell_id for d in diff.regressions})} cell(s)"
        )
    if args.fail_on_regression and diff.gate_failures:
        print(
            f"repro sweep diff: gate FAILED ({len(diff.regressions)} regression(s), "
            f"{len(diff.missing_cells)} missing cell(s), "
            f"{len(diff.new_errors)} new error(s))",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import os

    if args.spec == "report":
        return _cmd_sweep_report(args)
    if args.spec == "work":
        return _cmd_sweep_work(args)
    if args.spec == "merge":
        return _cmd_sweep_merge(args)
    if args.spec == "diff":
        return _cmd_sweep_diff(args)
    if args.spec == "enqueue":
        if not args.args:
            print(
                "repro sweep enqueue: usage: repro sweep enqueue <spec.json> <dir>",
                file=sys.stderr,
            )
            return 2
        args.spec_file, args.args = args.args[0], args.args[1:]
        return _cmd_sweep_enqueue(args)
    if args.args:
        print(
            f"repro sweep: unexpected extra argument {args.args[0]!r} "
            "(did you mean 'repro sweep report <dir>'?)",
            file=sys.stderr,
        )
        return 2

    from repro.campaign import (
        CampaignSpec,
        ProgressReporter,
        SpecError,
        campaign_table,
        completed_records,
        load_results,
        run_campaign,
        write_results,
    )

    try:
        spec = CampaignSpec.from_json(args.spec)
    except (OSError, ValueError) as error:
        print(f"repro sweep: cannot load spec {args.spec!r}: {error}", file=sys.stderr)
        return 2
    completed = None
    if args.resume is not None:
        results_path = os.path.join(args.resume, "results.json")
        try:
            document = load_results(results_path)
        except (OSError, ValueError) as error:
            print(f"repro sweep: cannot resume from {args.resume!r}: {error}", file=sys.stderr)
            return 2
        # Cell ids do not encode the campaign seed, so records produced
        # under a different seed would be silently reused as matches.
        if int(document.get("seed", 0)) != spec.seed:
            print(
                f"repro sweep: cannot resume from {args.resume!r}: campaign seed "
                f"differs (recorded {document.get('seed')}, spec {spec.seed})",
                file=sys.stderr,
            )
            return 2
        # Observer config is not part of cell ids either; records produced
        # under different instrumentation would carry stale exports (e.g. a
        # series sampled with another max_points), so re-run everything.
        recorded_observers = document.get("spec", {}).get("observers", [])
        if recorded_observers != spec.observers:
            print(
                "repro sweep: observer configuration changed since the recorded "
                "run; re-running all cells",
                file=sys.stderr,
            )
        else:
            completed = completed_records(document)
            # Crash-safe journals may hold records the (possibly interrupted)
            # artifact never received — fold them in so finished work is
            # never re-run.
            completed.update(_journaled_records(args.resume, spec, completed))
    # The artifact directory is settled before the run so the default
    # telemetry log and the per-cell profile dumps can live inside it.
    out_dir = args.out
    if out_dir is None:
        out_dir = args.resume if args.resume is not None else f"campaign-{spec.name}"
    telemetry_session = None
    telemetry_path = None
    if args.telemetry is not None:
        from repro.obs import JsonlSink, configure_telemetry, reset_telemetry

        telemetry_path = args.telemetry or os.path.join(out_dir, "telemetry.jsonl")
        parent = os.path.dirname(telemetry_path)
        try:
            if parent:
                os.makedirs(parent, exist_ok=True)
            telemetry_session = configure_telemetry(sink=JsonlSink(telemetry_path))
        except OSError as error:
            print(
                f"repro sweep: cannot open telemetry log {telemetry_path!r}: {error}",
                file=sys.stderr,
            )
            return 2
    profile_dir = os.path.join(out_dir, "profiles") if args.profile else None

    if args.workers is not None:
        code = _run_queue_mode(args, spec, out_dir, completed, profile_dir)
        if telemetry_session is not None:
            telemetry_session.close()
            from repro.obs import reset_telemetry

            reset_telemetry()
        return code

    reporter = None if args.quiet else ProgressReporter()
    from repro.campaign import CellJournal
    from repro.campaign.queue import journal_dir, worker_token

    journal = CellJournal(os.path.join(journal_dir(out_dir), f"{worker_token()}.jsonl"))
    try:
        result = run_campaign(
            spec,
            jobs=args.jobs,
            progress=reporter,
            completed=completed,
            telemetry=args.telemetry is not None,
            profile_dir=profile_dir,
            journal=journal,
        )
    except SpecError as error:
        # Matrix-level spec problems (e.g. a trace_recorder path shared by
        # every cell) are caught before any cell runs; per-cell problems
        # still land as error records instead of aborting the sweep.
        print(f"repro sweep: {error}", file=sys.stderr)
        return 2
    finally:
        journal.close()
        if telemetry_session is not None:
            telemetry_session.close()
            reset_telemetry()
    if reporter is not None:
        reporter.summary(len(result.records), result.elapsed_seconds)
    if result.metadata.get("resumed"):
        print(f"resumed: {result.metadata['resumed']} cell(s) reused from {args.resume}")
    paths = write_results(result, out_dir)
    # The artifact now holds everything the journal does; drop the journal
    # so a later --resume folds one copy, not two.
    try:
        os.unlink(journal.path)
    except OSError:
        pass
    print(campaign_table(result).to_text())
    print()
    artifact_line = f"artifacts: {paths['results']}  {paths['csv']}"
    if telemetry_path is not None:
        artifact_line += f"  {telemetry_path}"
    print(artifact_line)
    if result.metadata.get("interrupted"):
        print(
            f"interrupted: {len(result.records)} record(s) saved; finish with "
            f"repro sweep {args.spec} --resume {out_dir}",
            file=sys.stderr,
        )
        return 130
    # Any failed cell makes the sweep exit nonzero so CI can gate on it; the
    # sweep itself still ran to completion and wrote every record.
    return 1 if result.error_records else 0


def _journaled_records(directory: str, spec, completed):
    """Ok records from crash-safe journals under ``directory`` that the
    merged artifact does not already carry (resume after a hard crash)."""
    import os

    from repro.campaign.executor import RECORD_VERSION
    from repro.campaign.queue import journal_dir, read_journal

    journals = journal_dir(directory)
    recovered = {}
    if not os.path.isdir(journals):
        return recovered
    for name in sorted(os.listdir(journals)):
        if not name.endswith(".jsonl"):
            continue
        records, _skipped = read_journal(os.path.join(journals, name))
        for record in records:
            cell_id = record.get("cell_id")
            if (
                record.get("status") == "ok"
                and record.get("record_version") == RECORD_VERSION
                and cell_id not in completed
            ):
                recovered[cell_id] = record
    return recovered


def _run_queue_mode(args: argparse.Namespace, spec, out_dir, completed, profile_dir) -> int:
    from repro.campaign import SpecError, document_table, run_queue_sweep
    from repro.campaign.queue import DEFAULT_LEASE_TTL, QueueError

    try:
        merged = run_queue_sweep(
            spec,
            out_dir,
            workers=args.workers,
            completed=completed,
            lease_ttl=args.lease_ttl if args.lease_ttl is not None else DEFAULT_LEASE_TTL,
            telemetry=args.telemetry is not None,
            profile_dir=profile_dir,
            cell_timeout=args.cell_timeout,
        )
    except (QueueError, SpecError) as error:
        print(f"repro sweep: {error}", file=sys.stderr)
        return 2
    print(document_table(merged.document).to_text())
    print()
    if completed:
        print(f"resumed: {len(completed)} cell(s) reused from {args.resume}")
    print(
        f"queue: {merged.from_journals} record(s) from {len(merged.workers)} worker(s)"
    )
    print(f"artifacts: {merged.paths['results']}  {merged.paths['csv']}")
    if merged.pending:
        print(
            f"interrupted: {len(merged.pending)} cell(s) still queued; finish with "
            f"repro sweep work {out_dir} + repro sweep merge {out_dir}",
            file=sys.stderr,
        )
        return 130
    return 1 if merged.document.get("errors", 0) else 0


def _cmd_trace_analyze(args: argparse.Namespace) -> int:
    from repro.campaign import analytics_result
    from repro.engine import TraceAnalyticsObserver
    from repro.metrics.report import render_series
    from repro.workloads import TraceFileSource

    # One streaming pass: the observer accumulates every statistic while the
    # file is read request by request, so a multi-million-request trace is
    # analyzed without ever materialising it.  With --jobs N and a
    # block-indexed (v3) trace, the pass shards over worker processes and
    # the merged observer is byte-identical to the serial one; anything
    # unshardable just scans serially after a note.
    observer = None
    try:
        source = TraceFileSource(args.path)
        if args.jobs > 1:
            from repro.engine import analyze_trace_parallel

            observer = analyze_trace_parallel(args.path, jobs=args.jobs)
            if observer is None:
                print(
                    f"repro trace analyze: note: --jobs {args.jobs} needs a "
                    "block-indexed plain v3 trace with at least two blocks "
                    "(convert with: repro trace convert --format v3); "
                    "scanning serially",
                    file=sys.stderr,
                )
        if observer is None:
            observer = TraceAnalyticsObserver()
            for request in source:
                observer.observe(request)
    except (OSError, ValueError) as error:
        print(f"repro trace analyze: {error}", file=sys.stderr)
        return 2
    analytics = observer.result(label=source.label)
    result = analytics_result(analytics)
    print(result.to_text())
    if source.metadata:
        print(f"metadata: {source.metadata}")
    if not args.no_chart and observer.series_volume:
        print()
        print(
            render_series(
                observer.series_volume,
                label=f"live volume over {analytics.requests} requests",
            )
        )
    return 0


def _cmd_trace_convert(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.workloads import TraceFileSource, open_trace_writer

    version = int(args.format[1:])
    if args.compress and version < 2:
        print(
            f"repro trace convert: --compress is only supported by the binary "
            f"formats (v2, v3), not {args.format}",
            file=sys.stderr,
        )
        return 2
    if args.block_size is not None and version != 3:
        print(
            f"repro trace convert: --block-size only applies to the v3 "
            f"block-indexed format, not {args.format}",
            file=sys.stderr,
        )
        return 2
    if os.path.abspath(args.input) == os.path.abspath(args.output):
        print(
            "repro trace convert: input and output are the same file; "
            "conversion streams the input while writing, so it would corrupt it",
            file=sys.stderr,
        )
        return 2
    try:
        source = TraceFileSource(args.input)
    except (OSError, ValueError) as error:
        print(f"repro trace convert: {error}", file=sys.stderr)
        return 2
    metadata = source.metadata
    if version == 0 and metadata:
        # v0 has no metadata block; converting down drops it (say so).
        print(
            f"repro trace convert: note: the v0 format cannot carry metadata; "
            f"dropping {json.dumps(metadata, sort_keys=True)}",
            file=sys.stderr,
        )
        metadata = None
    writer_options = {}
    if args.block_size is not None:
        writer_options["block_records"] = args.block_size
    try:
        writer = open_trace_writer(
            args.output,
            version=version,
            label=source.label,
            metadata=metadata,
            compress=args.compress,
            **writer_options,
        )
    except (OSError, ValueError) as error:
        print(f"repro trace convert: {error}", file=sys.stderr)
        return 2
    try:
        for request in source:
            writer.write(request)
        writer.close()
    except (OSError, ValueError) as error:
        writer.abort()
        if os.path.exists(args.output):
            os.unlink(args.output)
        print(f"repro trace convert: {error}", file=sys.stderr)
        return 2
    print(
        f"wrote {writer.count} request(s) to {args.output} "
        f"({args.format}{', zlib-compressed' if args.compress else ''}, "
        f"{os.path.getsize(args.output)} bytes)"
    )
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    import json

    from repro.workloads import trace_info

    try:
        info = trace_info(args.path)
    except (OSError, ValueError) as error:
        print(f"repro trace info: {error}", file=sys.stderr)
        return 2
    if info.seekable:
        seek_row = (
            f"yes ({info.blocks} block(s), up to {info.block_records} "
            f"records per block)"
        )
    else:
        seek_row = "not seekable (no block index; convert with --format v3 to seek)"
    rows = [
        ("path", info.path),
        ("format", info.format_description),
        ("seekable", seek_row),
        ("file size", f"{info.file_bytes} bytes"),
        ("label", info.label),
        ("requests", f"{info.requests} ({info.inserts} inserts / {info.deletes} deletes)"),
        ("distinct names", str(info.distinct_names)),
        ("delta (max object size)", str(info.delta)),
        ("peak live volume", str(info.peak_volume)),
        ("final live volume", str(info.final_volume)),
        ("total inserted volume", str(info.total_inserted_volume)),
    ]
    if info.metadata:
        rows.append(("metadata", json.dumps(info.metadata, sort_keys=True)))
    width = max(len(name) for name, _ in rows)
    for name, value in rows:
        print(f"{name.ljust(width)}  {value}")
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs import load_events, obs_report, validate_events

    try:
        events = load_events(args.path)
    except (OSError, ValueError) as error:
        print(f"repro obs report: {error}", file=sys.stderr)
        return 2
    if args.check:
        problems = validate_events(events)
        if problems:
            for problem in problems:
                print(f"repro obs report: {problem}", file=sys.stderr)
            return 1
    print(obs_report(events, cell_filter=args.cell))
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "report":
        return _cmd_obs_report(args)
    print(
        "repro obs: choose a subcommand (try: repro obs report <telemetry.jsonl>)",
        file=sys.stderr,
    )
    return 2


def _cmd_chaos_sites(args: argparse.Namespace) -> int:
    from repro.faults import SITES

    width = max(len(site) for site in SITES)
    for site in sorted(SITES):
        print(f"{site.ljust(width)}  {SITES[site]}")
    return 0


def _cmd_chaos_sweep(args: argparse.Namespace) -> int:
    import fnmatch
    import os

    from repro.campaign import CampaignSpec
    from repro.faults import SITES, FaultPlan, FaultPlanError
    from repro.faults import chaos

    try:
        spec = CampaignSpec.from_json(args.spec)
    except (OSError, ValueError) as error:
        print(f"repro chaos sweep: cannot load spec {args.spec!r}: {error}", file=sys.stderr)
        return 2
    sites = None
    if args.sites is not None:
        sites = [site for site in SITES if fnmatch.fnmatchcase(site, args.sites)]
        if not sites:
            print(
                f"repro chaos sweep: no fault site matches {args.sites!r} "
                "(see: repro chaos sites)",
                file=sys.stderr,
            )
            return 2
    plans = []
    if args.faults is not None:
        try:
            plans.append(FaultPlan.from_json(args.faults))
        except FaultPlanError as error:
            print(f"repro chaos sweep: {error}", file=sys.stderr)
            return 2
    if args.single_faults:
        plans.extend(chaos.single_fault_plans(sites=sites))
    plans.extend(chaos.seeded_plan(seed, sites=sites) for seed in range(args.seeds))
    if not plans:
        print(
            "repro chaos sweep: nothing to run — give --faults PLAN.json, "
            "--single-faults, and/or --seeds N",
            file=sys.stderr,
        )
        return 2
    out_root = args.out if args.out is not None else f"chaos-{spec.name}"

    def progress(schedule):
        if not args.quiet:
            status = "ok   " if schedule.passed else "FAIL "
            detail = f" ({schedule.detail})" if schedule.detail else ""
            print(
                f"[chaos] {status} {schedule.label} "
                f"rounds={schedule.rounds} exits={schedule.worker_exits}{detail}",
                file=sys.stderr,
            )

    report = chaos.run_chaos(
        spec,
        plans,
        out_root,
        workers=args.workers,
        lease_ttl=args.lease_ttl if args.lease_ttl is not None else chaos.HARNESS_LEASE_TTL,
        baseline_dir=args.baseline,
        progress=progress,
    )
    passed = len(report.schedules) - len(report.failed)
    print(f"chaos: {passed}/{len(report.schedules)} schedule(s) converged to the baseline")
    if report.baseline_dir:
        print(f"baseline artifact: {os.path.join(report.baseline_dir, 'results.json')}")
    for schedule in report.failed:
        print(
            f"repro chaos sweep: FAILED {schedule.label}: "
            f"{schedule.detail or 'did not match the baseline'} "
            f"(artifacts under {schedule.directory})",
            file=sys.stderr,
        )
    return 1 if report.failed else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.chaos_command == "sites":
        return _cmd_chaos_sites(args)
    if args.chaos_command == "sweep":
        return _cmd_chaos_sweep(args)
    print(
        "repro chaos: choose a subcommand (try: repro chaos sites, or "
        "repro chaos sweep <spec.json> --single-faults --seeds 5)",
        file=sys.stderr,
    )
    return 2


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.campaign.spec import SpecError
    from repro.serve import ServeConfig, run_server

    allocator = args.allocator
    if allocator.strip().startswith("{"):
        try:
            allocator = json.loads(allocator)
        except json.JSONDecodeError as error:
            print(f"repro serve: --allocator is not valid JSON: {error}", file=sys.stderr)
            return 2
    config = ServeConfig(
        allocator=allocator,
        host=args.host,
        port=args.port,
        shared_arena=args.shared,
        trace_dir=args.trace_dir,
        snapshot_dir=args.snapshot_dir,
        label=args.label,
    )
    if args.max_batch is not None:
        if args.max_batch < 1:
            print("repro serve: --max-batch must be >= 1", file=sys.stderr)
            return 2
        config.max_batch = args.max_batch
    if args.queue_depth is not None:
        if args.queue_depth < 1:
            print("repro serve: --queue-depth must be >= 1", file=sys.stderr)
            return 2
        config.queue_depth = args.queue_depth
    try:
        return run_server(config)
    except (SpecError, OSError, ValueError) as error:
        print(f"repro serve: {error}", file=sys.stderr)
        return 2


def _cmd_load(args: argparse.Namespace) -> int:
    import json

    from repro.serve import run_load

    host, sep, port_text = args.target.rpartition(":")
    if not sep or not host or not port_text.isdigit():
        print(
            f"repro load: target must be HOST:PORT, got {args.target!r}",
            file=sys.stderr,
        )
        return 2
    if args.clients < 1 or args.requests < 1 or args.batch < 1 or args.window < 1:
        print(
            "repro load: --clients/--requests/--batch/--window must be >= 1",
            file=sys.stderr,
        )
        return 2
    try:
        report = run_load(
            host,
            int(port_text),
            clients=args.clients,
            requests=args.requests,
            pattern=args.pattern,
            target_live=args.target_live,
            seed=args.seed,
            batch=args.batch,
            window=args.window,
        )
    except OSError as error:
        print(f"repro load: cannot reach {args.target}: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(
            f"{len(report.clients)} client(s): {report.applied}/{report.sent} "
            f"request(s) applied in {report.elapsed_seconds:.2f}s "
            f"({report.requests_per_second} req/s aggregate), "
            f"{report.errors} error(s)"
        )
    return 1 if report.errors or report.applied != report.sent else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    handlers = {
        "analyze": _cmd_trace_analyze,
        "convert": _cmd_trace_convert,
        "info": _cmd_trace_info,
    }
    handler = handlers.get(args.trace_command)
    if handler is None:
        print(
            "repro trace: choose a subcommand (try: repro trace analyze <path>, "
            "repro trace convert <in> <out> --format v2, or repro trace info <path>)",
            file=sys.stderr,
        )
        return 2
    return handler(args)


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        width = max(len(key) for key in EXPERIMENTS)
        for key in sorted(EXPERIMENTS):
            experiment = EXPERIMENTS[key]
            print(f"{key.ljust(width)}  {experiment.title}  [{experiment.paper_reference}]")
        return 0
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "load":
        return _cmd_load(args)
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
