"""Command-line entry point: experiments, campaign sweeps, trace analytics.

Examples
--------

List everything that can be reproduced::

    python -m repro list

Run the footprint experiment with full-size traces::

    python -m repro run E1 --full

Sweep a campaign matrix over four worker processes::

    python -m repro sweep campaign.json --jobs 4 --out results/demo

Characterise a recorded trace before sweeping it::

    python -m repro trace analyze traces/prod.trace
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness import EXPERIMENTS, run_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cost-oblivious storage reallocation (PODS 2014) reproduction harness",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list the registered experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id, e.g. E1, F3, or 'all'")
    run_parser.add_argument(
        "--full",
        action="store_true",
        help="use full-size traces instead of the quick defaults",
    )

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a campaign spec (workloads x allocators x costs x devices)"
    )
    sweep_parser.add_argument("spec", help="path to a campaign spec JSON file")
    sweep_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1 = serial; 0 = one per CPU)",
    )
    sweep_parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="artifact directory (default: campaign-<spec name>)",
    )
    sweep_parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-cell progress lines on stderr",
    )
    sweep_parser.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help=(
            "skip cells already recorded ok in DIR/results.json and only run "
            "the missing or failed ones (artifacts default to DIR)"
        ),
    )

    trace_parser = subparsers.add_parser("trace", help="trace file utilities")
    trace_sub = trace_parser.add_subparsers(dest="trace_command")
    analyze_parser = trace_sub.add_parser(
        "analyze", help="print footprint / size / lifetime / death-time analytics"
    )
    analyze_parser.add_argument("path", help="path to a trace file (v0 or v1 format)")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    targets = sorted(EXPERIMENTS) if args.experiment.lower() == "all" else [args.experiment]
    for target in targets:
        try:
            result = run_experiment(target, quick=not args.full)
        except KeyError as error:
            # get_experiment raises KeyError("unknown experiment 'X'; known: ...").
            print(f"repro run: {error.args[0]}", file=sys.stderr)
            return 2
        print(result.to_text())
        print()
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import os

    from repro.campaign import (
        CampaignSpec,
        ProgressReporter,
        SpecError,
        campaign_table,
        completed_records,
        load_results,
        run_campaign,
        write_results,
    )

    try:
        spec = CampaignSpec.from_json(args.spec)
    except (OSError, ValueError) as error:
        print(f"repro sweep: cannot load spec {args.spec!r}: {error}", file=sys.stderr)
        return 2
    completed = None
    if args.resume is not None:
        results_path = os.path.join(args.resume, "results.json")
        try:
            document = load_results(results_path)
        except (OSError, ValueError) as error:
            print(f"repro sweep: cannot resume from {args.resume!r}: {error}", file=sys.stderr)
            return 2
        # Cell ids do not encode the campaign seed, so records produced
        # under a different seed would be silently reused as matches.
        if int(document.get("seed", 0)) != spec.seed:
            print(
                f"repro sweep: cannot resume from {args.resume!r}: campaign seed "
                f"differs (recorded {document.get('seed')}, spec {spec.seed})",
                file=sys.stderr,
            )
            return 2
        # Observer config is not part of cell ids either; records produced
        # under different instrumentation would carry stale exports (e.g. a
        # series sampled with another max_points), so re-run everything.
        recorded_observers = document.get("spec", {}).get("observers", [])
        if recorded_observers != spec.observers:
            print(
                "repro sweep: observer configuration changed since the recorded "
                "run; re-running all cells",
                file=sys.stderr,
            )
        else:
            completed = completed_records(document)
    reporter = None if args.quiet else ProgressReporter()
    result = run_campaign(spec, jobs=args.jobs, progress=reporter, completed=completed)
    if reporter is not None:
        reporter.summary(len(result.records), result.elapsed_seconds)
    if result.metadata.get("resumed"):
        print(f"resumed: {result.metadata['resumed']} cell(s) reused from {args.resume}")
    out_dir = args.out
    if out_dir is None:
        out_dir = args.resume if args.resume is not None else f"campaign-{spec.name}"
    paths = write_results(result, out_dir)
    print(campaign_table(result).to_text())
    print()
    print(f"artifacts: {paths['results']}  {paths['csv']}")
    # Any failed cell makes the sweep exit nonzero so CI can gate on it; the
    # sweep itself still ran to completion and wrote every record.
    return 1 if result.error_records else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command != "analyze":
        print("repro trace: choose a subcommand (try: repro trace analyze <path>)", file=sys.stderr)
        return 2
    from repro.campaign import analytics_result, analyze_trace
    from repro.workloads import load_trace

    try:
        trace = load_trace(args.path)
    except (OSError, ValueError) as error:
        print(f"repro trace analyze: {error}", file=sys.stderr)
        return 2
    result = analytics_result(analyze_trace(trace))
    print(result.to_text())
    if trace.metadata:
        print(f"metadata: {trace.metadata}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        width = max(len(key) for key in EXPERIMENTS)
        for key in sorted(EXPERIMENTS):
            experiment = EXPERIMENTS[key]
            print(f"{key.ljust(width)}  {experiment.title}  [{experiment.paper_reference}]")
        return 0
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "trace":
        return _cmd_trace(args)
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
