"""One-pass streaming trace analytics.

:class:`TraceAnalyticsObserver` computes the full WiscSee-style trace
characterisation — footprint profile, size/lifetime percentiles, death-time
grouping — from a single pass over any request stream: a materialised
:class:`~repro.workloads.base.Trace`, a streaming
:class:`~repro.workloads.replay.TraceFileSource`, or the live request feed
of a replay (it is an :class:`~repro.engine.observers.Observer`, so it can
ride along on a :class:`~repro.engine.SimulationEngine` run).

Every statistic is *identical* to the one the materialised implementation
produced — same nearest-rank percentiles, same float accumulation order for
the mean, same death-bucket boundaries — while peak memory is bounded by
the live-object set, the distinct size/lifetime values, and one compact
byte-packed record per death, never by the request count.  The one
representational choice: object names are compared by their string form
(``str(name)``), which is exactly what every trace file format round-trips.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.observers import (
    Observer,
    ShardContext,
    decimate_series,
    planned_stride,
)


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence (0 if empty)."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def _percentile_from_counts(
    items: Sequence[Tuple[int, int]], total: int, fraction: float
) -> float:
    """Nearest-rank percentile over ``(value, count)`` pairs sorted by value.

    Equivalent to :func:`percentile` on the expanded sorted sequence of
    ``total`` values, without ever expanding it.
    """
    if total <= 0:
        return 0.0
    index = min(total - 1, max(0, round(fraction * (total - 1))))
    seen = 0
    for value, count in items:
        seen += count
        if index < seen:
            return value
    return items[-1][0]  # pragma: no cover - total always matches the counts


def size_histogram_from_counts(counts: Dict[int, int]) -> List[Dict[str, int]]:
    """Counts and volume per power-of-two bucket from a ``size -> count`` map.

    Sizes of zero (or below) get their own ``[0, 0]`` bucket instead of
    being mis-filed into ``[1, 1]`` the way the historical exponent formula
    did — a zero-sized request carries no volume and must not inflate the
    smallest real bucket.
    """
    buckets: Dict[int, Dict[str, int]] = {}
    for size, count in counts.items():
        if size <= 0:
            exponent, low, high = -1, 0, 0
        else:
            exponent = size.bit_length() - 1
            low, high = 1 << exponent, (1 << (exponent + 1)) - 1
        bucket = buckets.setdefault(
            exponent, {"low": low, "high": high, "count": 0, "volume": 0}
        )
        bucket["count"] += count
        bucket["volume"] += size * count
    return [buckets[exponent] for exponent in sorted(buckets)]


def size_histogram(sizes: Iterable[int]) -> List[Dict[str, int]]:
    """Counts and volume per power-of-two size bucket ``[2^k, 2^(k+1))``."""
    counts: Dict[int, int] = {}
    for size in sizes:
        counts[size] = counts.get(size, 0) + 1
    return size_histogram_from_counts(counts)


class _NameSet:
    """Append-only exact string-membership set, a few bytes per short name.

    The streaming analytics must remember every object name that has died
    (that is how a re-insert is told apart from a brand-new object), and a
    Python ``set`` of n string objects costs ~90 bytes per short name —
    enough to blow the streaming-peak-memory budget on multi-million-request
    traces.  This set packs the UTF-8 bytes of every added name into one
    blob with an open-addressed offset table instead, so membership stays
    exact while memory drops an order of magnitude.  Append-only by design:
    the analytics never need to forget a dead name.
    """

    __slots__ = ("_blob", "_offsets", "_lengths", "_table")

    def __init__(self) -> None:
        self._blob = bytearray()
        self._offsets = array("Q")
        self._lengths = array("I")
        self._table = array("i", [-1]) * 256

    def __len__(self) -> int:
        return len(self._offsets)

    def _slot(self, key: bytes) -> int:
        """The slot holding ``key``, or the empty slot where it would go."""
        mask = len(self._table) - 1
        index = hash(key) & mask
        table, blob = self._table, self._blob
        length = len(key)
        while True:
            entry = table[index]
            if entry < 0:
                return index
            offset = self._offsets[entry]
            if self._lengths[entry] == length and blob[offset : offset + length] == key:
                return index
            index = (index + 1) & mask

    def __contains__(self, name: str) -> bool:
        return self._table[self._slot(name.encode("utf-8"))] >= 0

    def add(self, name: str) -> None:
        key = name.encode("utf-8")
        slot = self._slot(key)
        if self._table[slot] >= 0:
            return
        entry = len(self._offsets)
        self._offsets.append(len(self._blob))
        self._lengths.append(len(key))
        self._blob += key
        self._table[slot] = entry
        if (entry + 1) * 3 >= len(self._table) * 2:
            self._grow()

    def _grow(self) -> None:
        table = array("i", [-1]) * (len(self._table) * 2)
        mask = len(table) - 1
        blob = self._blob
        for entry, (offset, length) in enumerate(zip(self._offsets, self._lengths)):
            index = hash(bytes(blob[offset : offset + length])) & mask
            while table[index] >= 0:
                index = (index + 1) & mask
            table[index] = entry
        self._table = table


@dataclass
class TraceAnalytics:
    """Every statistic :class:`TraceAnalyticsObserver` computes for one trace."""

    label: str
    requests: int
    inserts: int
    deletes: int
    distinct_objects: int
    delta: int
    inserted_volume: int
    peak_volume: int
    mean_volume: float
    final_volume: int
    turnover: float
    sizes: Dict[str, float]
    lifetimes: Dict[str, float]
    immortal_objects: int
    immortal_volume: int
    histogram: List[Dict[str, int]] = field(default_factory=list)
    death_groups: List[Dict[str, float]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


class TraceAnalyticsObserver(Observer):
    """Streaming, one-pass trace analytics usable on any request stream.

    Feed it requests directly (:meth:`observe`, e.g. while iterating a
    :class:`~repro.workloads.replay.TraceFileSource`) or attach it to a
    :class:`~repro.engine.SimulationEngine` replay (``on_request`` consumes
    the same fields from each :class:`~repro.core.events.RequestRecord`),
    then call :meth:`result` for the finished :class:`TraceAnalytics`.

    Memory is bounded by the live-object set, the distinct size/lifetime
    values, the byte-packed dead-name set, and 16 bytes per death (death
    indices must be re-bucketed once the total request count is known) —
    never by the request count.  A bounded live-volume series (adaptive
    stride, at most ``max_points`` samples) is kept alongside for terminal
    charts and campaign exports.

    Exactly mergeable (``merge_exact = True``): every statistic is derived
    purely from the request stream, so a sharded replay seeded from v3
    block-entry snapshots and merged left to right is byte-identical to the
    serial pass.  A shard seeds its live set from the snapshot with a
    sentinel birth index (the true birth lives in an earlier shard); deaths
    of those objects are resolved when :meth:`merge` joins the shards.
    :meth:`result` is only meaningful on a fully merged chain (or a serial
    observer) — an interior shard still carries unresolved sentinels.
    """

    export_key = "trace_analytics"
    mergeable = True
    merge_exact = True

    def __init__(self, death_buckets: int = 10, max_points: int = 512) -> None:
        if death_buckets < 1:
            raise ValueError(f"death_buckets must be >= 1, got {death_buckets}")
        if max_points < 2:
            raise ValueError(f"max_points must be >= 2, got {max_points}")
        self.death_buckets = int(death_buckets)
        self.max_points = int(max_points)
        self._births: Dict[object, int] = {}
        self._birth_sizes: Dict[object, int] = {}
        self._size_counts: Dict[int, int] = {}
        self._lifetime_counts: Dict[int, int] = {}
        self._death_indices = array("q")
        self._death_sizes = array("q")
        self._dead_names = _NameSet()
        self._distinct = 0
        self._requests = 0
        self._inserts = 0
        self._deletes = 0
        self._volume = 0
        # Integer accumulation of the running volume: exact at any scale and
        # order-independent, which is what makes shard merging associative.
        # float(sum) / total at result() time equals the historical
        # request-order float accumulation whenever the intermediate sums
        # stay below 2**53, and is simply more accurate beyond that.
        self._volume_sum = 0
        self._peak = 0
        self._inserted_volume = 0
        self._delta = 0
        self.series_indices: List[int] = []
        self.series_volume: List[int] = []
        self._stride = 1
        # Shard-mode state (unused, and empty, in a serial pass).
        self._shard_mode = False
        self._inserted_names: set = set()
        self._entry_pending_deaths: List[Tuple[object, int]] = []

    # ----------------------------------------------------------------- shards
    def begin_shard(self, context: ShardContext) -> None:
        self._shard_mode = True
        # Count requests at global trace indices so death indices, lifetimes
        # and series indices come out identical to the serial pass.
        self._requests = context.start_index
        volume = 0
        for name, size in context.entry_live:
            # Sentinel birth: the object was born in an earlier shard.  Its
            # true birth index is resolved at merge time.
            self._births[name] = -1
            self._birth_sizes[name] = size
            volume += size
        self._volume = volume
        # Sample at the serial run's final stride from the start; a shard
        # then never exceeds max_points samples and never decimates, and the
        # concatenated shard series equals the serial one.
        self._stride = planned_stride(context.total_records, self.max_points)

    def merge(self, other: "TraceAnalyticsObserver") -> None:
        """Fold the next (adjacent-on-the-right) shard into this one."""
        # Deaths of objects live at `other`'s entry: the merged prefix ends
        # exactly where `other` starts, so their true births are in self.
        counts = self._lifetime_counts
        for name, death_index in other._entry_pending_deaths:
            born = self._births.pop(name)
            self._birth_sizes.pop(name)
            lifetime = death_index - born
            counts[lifetime] = counts.get(lifetime, 0) + 1
        # Objects still live at `other`'s exit.  A sentinel birth (-1) means
        # the object lived through the whole shard and self already holds
        # its true birth; an in-shard birth is simply carried over.
        for name, born in other._births.items():
            if born >= 0:
                self._births[name] = born
                self._birth_sizes[name] = other._birth_sizes[name]
        for lifetime, count in other._lifetime_counts.items():
            counts[lifetime] = counts.get(lifetime, 0) + count
        sizes = self._size_counts
        for size, count in other._size_counts.items():
            sizes[size] = sizes.get(size, 0) + count
        self._death_indices.extend(other._death_indices)
        self._death_sizes.extend(other._death_sizes)
        self._inserted_names |= other._inserted_names
        self._distinct = len(self._inserted_names)
        self._requests = other._requests
        self._inserts += other._inserts
        self._deletes += other._deletes
        self._volume = other._volume
        self._volume_sum += other._volume_sum
        self._peak = max(self._peak, other._peak)
        self._inserted_volume += other._inserted_volume
        self._delta = max(self._delta, other._delta)
        self.series_indices.extend(other.series_indices)
        self.series_volume.extend(other.series_volume)

    # ------------------------------------------------------------- ingestion
    def observe(self, request) -> None:
        """Consume one request (anything with ``op``/``name``/``size``).

        Raises the same :class:`ValueError` a materialised
        :class:`~repro.workloads.base.Trace` raises at construction for an
        inconsistent stream (insert of a live name, delete of a dead one),
        so a malformed trace file fails loudly instead of yielding
        silently-wrong statistics.
        """
        index = self._requests
        self._requests += 1
        if request.op == "insert":
            name = request.name
            if name in self._births:
                raise ValueError(f"request {index}: {name!r} inserted while active")
            size = request.size
            if self._shard_mode:
                # Distinct objects = distinct names ever inserted.  A shard
                # cannot know whether a name already died in an earlier
                # shard, so it records the names it inserted; merge counts
                # the union, which is exactly the serial total.
                key = str(name)
                inserted = self._inserted_names
                if key not in inserted:
                    inserted.add(key)
                    self._distinct += 1
            # A name whose first event is this insert has never died (a
            # delete needs a live object), so "not previously dead" is
            # exactly "never seen": count it once.
            elif str(name) not in self._dead_names:
                self._distinct += 1
            self._births[name] = index
            self._birth_sizes[name] = size
            self._size_counts[size] = self._size_counts.get(size, 0) + 1
            self._inserts += 1
            self._inserted_volume += size
            if size > self._delta:
                self._delta = size
            self._volume += size
        else:
            name = request.name
            if name not in self._births:
                raise ValueError(f"request {index}: {name!r} deleted while inactive")
            born = self._births.pop(name)
            size = self._birth_sizes.pop(name)
            if born >= 0:
                lifetime = index - born
                self._lifetime_counts[lifetime] = self._lifetime_counts.get(lifetime, 0) + 1
            else:
                # Sentinel: born in an earlier shard.  The death index and
                # size are exact already; the lifetime waits for merge().
                self._entry_pending_deaths.append((name, index))
            self._death_indices.append(index)
            self._death_sizes.append(size)
            if not self._shard_mode:
                self._dead_names.add(str(name))
            self._deletes += 1
            self._volume -= size
        if self._volume > self._peak:
            self._peak = self._volume
        self._volume_sum += self._volume
        if index % self._stride == 0:
            self.series_indices.append(index)
            self.series_volume.append(self._volume)
            if len(self.series_indices) > self.max_points:
                decimate_series(self.series_indices, (self.series_volume,))
                self._stride *= 2

    # The engine hands RequestRecord objects, which carry the same
    # op/name/size fields (a delete record carries the object's real size,
    # which observe() ignores in favour of the recorded birth size).
    on_request = observe

    # --------------------------------------------------------------- results
    def result(self, label: str = "trace") -> TraceAnalytics:
        """The finished analytics bundle (idempotent; state is not consumed)."""
        total = max(1, self._requests)
        buckets = self.death_buckets
        deaths: List[Dict[str, float]] = [
            {"bucket": index, "objects": 0, "volume": 0} for index in range(buckets)
        ]
        for index, size in zip(self._death_indices, self._death_sizes):
            bucket = min(buckets - 1, (index * buckets) // total)
            deaths[bucket]["objects"] += 1
            deaths[bucket]["volume"] += size
        inserted_volume = self._inserted_volume
        for bucket in deaths:
            bucket["volume_fraction"] = round(bucket["volume"] / max(1, inserted_volume), 4)

        lifetime_counts = dict(self._lifetime_counts)
        for born in self._births.values():
            lifetime = self._requests - born
            lifetime_counts[lifetime] = lifetime_counts.get(lifetime, 0) + 1
        lifetime_items = sorted(lifetime_counts.items())
        lifetimes_total = self._deletes + len(self._births)
        size_items = sorted(self._size_counts.items())

        return TraceAnalytics(
            label=label,
            requests=self._requests,
            inserts=self._inserts,
            deletes=self._deletes,
            distinct_objects=self._distinct,
            delta=self._delta,
            inserted_volume=inserted_volume,
            peak_volume=self._peak,
            mean_volume=round(self._volume_sum / total, 2),
            final_volume=self._volume,
            turnover=round(inserted_volume / max(1, self._peak), 3),
            sizes={
                "p50": _percentile_from_counts(size_items, self._inserts, 0.50),
                "p90": _percentile_from_counts(size_items, self._inserts, 0.90),
                "p99": _percentile_from_counts(size_items, self._inserts, 0.99),
                "max": float(size_items[-1][0]) if size_items else 0.0,
            },
            lifetimes={
                "p50": _percentile_from_counts(lifetime_items, lifetimes_total, 0.50),
                "p90": _percentile_from_counts(lifetime_items, lifetimes_total, 0.90),
                "p99": _percentile_from_counts(lifetime_items, lifetimes_total, 0.99),
                "max": float(lifetime_items[-1][0]) if lifetime_items else 0.0,
            },
            immortal_objects=len(self._births),
            immortal_volume=sum(self._birth_sizes.values()),
            histogram=size_histogram_from_counts(self._size_counts),
            death_groups=deaths,
        )

    def export(self) -> Dict[str, Any]:
        """A JSON-serialisable summary (used by campaign artifacts)."""
        out = self.result().to_dict()
        out["volume_series"] = {
            "stride": self._stride,
            "indices": list(self.series_indices),
            "volume": list(self.series_volume),
        }
        return out


def analyze_source(
    source, death_buckets: int = 10, label: Optional[str] = None
) -> TraceAnalytics:
    """One-pass analytics over any iterable of requests.

    Streaming counterpart of the historical materialised ``analyze_trace``:
    the statistics are identical whether ``source`` is a
    :class:`~repro.workloads.base.Trace` or a
    :class:`~repro.workloads.replay.TraceFileSource` over the same requests.
    """
    observer = TraceAnalyticsObserver(death_buckets=death_buckets)
    for request in source:
        observer.observe(request)
    if label is None:
        label = getattr(source, "label", "trace")
    return observer.result(label=label)
