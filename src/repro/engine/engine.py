"""The simulation engine: one instrumentation seam for every replay.

Everything the paper measures reduces to "replay a trace through an
allocator and observe what happens".  :class:`SimulationEngine` owns that
loop: it wires a (possibly empty) list of :class:`~repro.engine.observers.Observer`
instances onto an allocator, serves the trace, drives any pending
deamortized work to completion, and hands every observer the finished
allocator.

Only *active* observers (those overriding a per-event hook — see
:func:`~repro.engine.observers.needs_events`) are attached to the allocator;
with none attached the replay takes the allocator's zero-instrumentation
fast path, which skips all ``RequestRecord``/``MoveEvent`` construction.
Passive observers (metrics snapshots, cost charging) therefore cost nothing
per request.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Union

from repro.core.base import Allocator
from repro.engine.observers import Observer, needs_events
from repro.obs.telemetry import get_telemetry
from repro.workloads.base import Request, RequestSource, Trace

#: What a replay can consume: a materialised trace, a streaming source
#: (e.g. :class:`~repro.workloads.replay.TraceFileSource`), or any iterable
#: of requests.
Replayable = Union[Trace, RequestSource, Iterable[Request]]


@dataclass
class EngineRun:
    """The outcome of one :meth:`SimulationEngine.run`."""

    allocator: Allocator
    trace: Replayable
    requests: int
    elapsed_seconds: float
    observers: List[Observer] = field(default_factory=list)

    @property
    def label(self) -> str:
        """The replayed trace/source label (``"trace"`` for bare iterables)."""
        return getattr(self.trace, "label", "trace")

    @property
    def requests_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.requests / self.elapsed_seconds


class SimulationEngine:
    """Replay traces on an allocator with pluggable observers.

    Parameters
    ----------
    allocator:
        The allocator under test.
    observers:
        Observers to wire into the replay.  Active observers see events as
        they happen; passive observers only see ``on_attach``/``on_finish``.
    finish_pending:
        Drive any deamortized flush to completion at the end so final
        volumes and invariants are comparable across allocators.
    """

    def __init__(
        self,
        allocator: Allocator,
        observers: Sequence[Observer] = (),
        finish_pending: bool = True,
    ) -> None:
        self.allocator = allocator
        self.observers: List[Observer] = list(observers)
        self.finish_pending = finish_pending

    def run(self, trace: Replayable) -> EngineRun:
        """Serve ``trace`` (a :class:`Trace`, a streaming
        :class:`~repro.workloads.base.RequestSource`, or any iterable of
        requests) and return the run outcome.

        A streaming source is consumed one request at a time, so replaying a
        10M-request on-disk trace never materialises it.  Observers are
        attached for the duration of the call only, so the same allocator
        can be replayed again with different instrumentation.
        """
        allocator = self.allocator
        # One telemetry lookup per run, never per request: when disabled
        # every span below is the shared no-op singleton and the stats
        # bookkeeping at the end is skipped entirely.
        telemetry = get_telemetry()
        active = [obs for obs in self.observers if needs_events(obs)]
        with telemetry.span("engine.attach"):
            for observer in self.observers:
                observer.on_attach(allocator)
        for observer in active:
            allocator.attach_observer(observer)
        stats = allocator.stats
        requests_before = stats.requests
        moves_before = stats.total_moves
        flushes_before = stats.flushes
        try:
            started = time.perf_counter()
            with telemetry.span("engine.replay"):
                allocator.run(trace)
            if self.finish_pending and hasattr(allocator, "finish_pending_work"):
                with telemetry.span("engine.flush_pending"):
                    allocator.finish_pending_work()
            elapsed = time.perf_counter() - started
        except BaseException as error:
            telemetry.abort("engine.replay", error)
            # A raising replay never reaches on_finish; give every observer
            # the chance to release external resources (e.g. a trace
            # recorder aborts its writer so the partial file fails loudly).
            # One observer's cleanup failing must neither starve the others
            # of theirs nor replace the original replay error.
            for observer in self.observers:
                try:
                    observer.on_abort(allocator, error)
                except Exception:
                    pass
            raise
        finally:
            for observer in active:
                allocator.detach_observer(observer)
        with telemetry.span("engine.finish"):
            for observer in self.observers:
                observer.on_finish(allocator)
        requests = stats.requests - requests_before
        if telemetry.enabled:
            telemetry.add("engine.replays")
            telemetry.add("engine.requests", requests)
            telemetry.add("engine.moves", stats.total_moves - moves_before)
            telemetry.add("engine.flushes", stats.flushes - flushes_before)
            if elapsed > 0:
                telemetry.gauge("engine.requests_per_sec", round(requests / elapsed, 1))
            telemetry.gauge("engine.elapsed_seconds", round(elapsed, 6))
        return EngineRun(
            allocator=allocator,
            trace=trace,
            requests=requests,
            elapsed_seconds=elapsed,
            observers=self.observers,
        )


def replay(
    allocator: Allocator,
    trace: Replayable,
    observers: Sequence[Observer] = (),
    finish_pending: bool = True,
) -> EngineRun:
    """One-shot convenience wrapper around :class:`SimulationEngine`."""
    return SimulationEngine(allocator, observers, finish_pending=finish_pending).run(trace)
