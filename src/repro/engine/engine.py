"""The simulation engine: one instrumentation seam for every replay.

Everything the paper measures reduces to "replay a trace through an
allocator and observe what happens".  :class:`SimulationEngine` owns that
loop: it wires a (possibly empty) list of :class:`~repro.engine.observers.Observer`
instances onto an allocator, serves the trace, drives any pending
deamortized work to completion, and hands every observer the finished
allocator.

Only *active* observers (those overriding a per-event hook — see
:func:`~repro.engine.observers.needs_events`) are attached to the allocator;
with none attached the replay takes the allocator's zero-instrumentation
fast path, which skips all ``RequestRecord``/``MoveEvent`` construction.
Passive observers (metrics snapshots, cost charging) therefore cost nothing
per request.

Since the session refactor, ``run()`` is a thin wrapper over one
:class:`~repro.engine.session.EngineSession` — open, apply the whole trace
as a single batch, close — so a batch replay and a long-lived incremental
session (the live allocation service) share one lifecycle implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Union

from repro.core.base import Allocator
from repro.engine.observers import Observer
from repro.engine.session import EngineSession
from repro.workloads.base import Request, RequestSource, Trace

#: What a replay can consume: a materialised trace, a streaming source
#: (e.g. :class:`~repro.workloads.replay.TraceFileSource`), or any iterable
#: of requests.
Replayable = Union[Trace, RequestSource, Iterable[Request]]


@dataclass
class EngineRun:
    """The outcome of one :meth:`SimulationEngine.run`."""

    allocator: Allocator
    trace: Replayable
    requests: int
    elapsed_seconds: float
    observers: List[Observer] = field(default_factory=list)

    @property
    def label(self) -> str:
        """The replayed trace/source label (``"trace"`` for bare iterables)."""
        return getattr(self.trace, "label", "trace")

    @property
    def requests_per_second(self) -> float:
        """Throughput of the run; ``0.0`` on sub-clock-resolution runs.

        Never ``inf``: serve-mode stats serialise this straight into JSON,
        and ``Infinity`` is not valid JSON.
        """
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.requests / self.elapsed_seconds


class SimulationEngine:
    """Replay traces on an allocator with pluggable observers.

    Parameters
    ----------
    allocator:
        The allocator under test.
    observers:
        Observers to wire into the replay.  Active observers see events as
        they happen; passive observers only see ``on_attach``/``on_finish``.
    finish_pending:
        Drive any deamortized flush to completion at the end so final
        volumes and invariants are comparable across allocators.
    """

    def __init__(
        self,
        allocator: Allocator,
        observers: Sequence[Observer] = (),
        finish_pending: bool = True,
    ) -> None:
        self.allocator = allocator
        self.observers: List[Observer] = list(observers)
        self.finish_pending = finish_pending

    def run(self, trace: Replayable) -> EngineRun:
        """Serve ``trace`` (a :class:`Trace`, a streaming
        :class:`~repro.workloads.base.RequestSource`, or any iterable of
        requests) and return the run outcome.

        A streaming source is consumed one request at a time, so replaying a
        10M-request on-disk trace never materialises it.  Observers are
        attached for the duration of the call only, so the same allocator
        can be replayed again with different instrumentation.
        """
        session = EngineSession(
            self.allocator, self.observers, finish_pending=self.finish_pending
        ).open()
        try:
            session.apply(trace)
        except BaseException as error:
            # A raising replay never reaches on_finish; the session's abort
            # path gives every observer its on_abort (e.g. a trace recorder
            # aborts its writer so the partial file fails loudly) and
            # detaches the active observers.
            session.abort(error)
            raise
        return session.close(trace)


def replay(
    allocator: Allocator,
    trace: Replayable,
    observers: Sequence[Observer] = (),
    finish_pending: bool = True,
) -> EngineRun:
    """One-shot convenience wrapper around :class:`SimulationEngine`."""
    return SimulationEngine(allocator, observers, finish_pending=finish_pending).run(trace)
