"""Sharded parallel replay of block-indexed (v3) traces.

A v3 trace file carries a footer index of self-contained blocks, each
opening with a snapshot of the objects live at its entry.  That is exactly
what a parallel replay needs: split the block list into contiguous ranges,
hand each range to a worker process that seeds a fresh allocator from the
entry snapshot and replays only its range, then fold the per-shard
observers back together left to right with :meth:`Observer.merge`.

What sharding can and cannot promise is an observer property:

* ``merge_exact`` observers (trace analytics, per-class occupancy) are
  derived purely from the request stream, so the merged result is
  byte-identical to a serial replay.
* Mergeable-but-inexact observers (metrics, cost charging, gap histograms,
  device models) reduce per-shard allocator measurements by sum/max/concat;
  the numbers describe allocators that each started from a freshly seeded
  layout.
* Unmergeable observers (footprint series, history, trace recording) are
  order-dependent; a replay that includes one falls back to serial with a
  clear message.

Workers run with telemetry disabled (a forked JSONL sink shared by several
processes would interleave); the coordinating process emits
``parallel.replay`` / ``parallel.merge`` spans and shard counters instead.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.engine.analytics import TraceAnalyticsObserver
from repro.engine.engine import SimulationEngine
from repro.engine.observers import Observer, ShardContext
from repro.obs.telemetry import Telemetry, get_telemetry, use_telemetry
from repro.workloads.base import Request
from repro.workloads.binary import BlockIndex, read_block_index


class SerialFallbackWarning(UserWarning):
    """A requested parallel replay fell back to serial (reason in the message)."""


@dataclass
class ShardedRun:
    """Outcome of one sharded engine replay (see :func:`run_replay_sharded`)."""

    observers: List[Observer]
    shards: int
    requests: int
    elapsed_seconds: float


def unmergeable_observers(observers: Sequence[Observer]) -> List[str]:
    """Class names of the observers that force a serial replay."""
    return [
        type(observer).__name__
        for observer in observers
        if not getattr(observer, "mergeable", False)
    ]


def shard_plan(index: BlockIndex, jobs: int) -> List[Tuple[int, int]]:
    """Split the block list into at most ``jobs`` contiguous ranges.

    Boundaries land on the block edges closest to an even split by record
    count, and every shard gets at least one block, so the plan is balanced
    whenever blocks are (the writer cuts them at a fixed record count).
    """
    blocks = index.blocks
    shards = max(1, min(int(jobs), len(blocks)))
    if shards == 1:
        return [(0, len(blocks))]
    cumulative: List[int] = []
    seen = 0
    for block in blocks:
        seen += block.records
        cumulative.append(seen)
    total = cumulative[-1]
    bounds = [0]
    for shard in range(1, shards):
        cut = bisect_left(cumulative, shard * total / shards) + 1
        cut = max(cut, bounds[-1] + 1)  # at least one block per shard…
        cut = min(cut, len(blocks) - (shards - shard))  # …including the tail
        bounds.append(cut)
    bounds.append(len(blocks))
    return list(zip(bounds, bounds[1:]))


def _shard_context(
    index: BlockIndex, start: int, stop: int, shard: int, shards: int
) -> ShardContext:
    first = index.blocks[start]
    records = sum(block.records for block in index.blocks[start:stop])
    entry = index.entry_snapshot(start) if start else []
    return ShardContext(
        shard=shard,
        shards=shards,
        start_index=first.start,
        records=records,
        total_records=index.total_records,
        entry_live=entry,
    )


# ------------------------------------------------------------------ analytics
def _analyze_shard(payload) -> TraceAnalyticsObserver:
    path, start, stop, shard, shards, death_buckets, max_points = payload
    with use_telemetry(Telemetry(enabled=False)):
        index = read_block_index(path)
        observer = TraceAnalyticsObserver(
            death_buckets=death_buckets, max_points=max_points
        )
        observer.begin_shard(_shard_context(index, start, stop, shard, shards))
        observe = observer.observe
        for request in index.iter_range(start, stop):
            observe(request)
    return observer


def analyze_trace_parallel(
    path: Union[str, os.PathLike],
    jobs: int,
    death_buckets: int = 10,
    max_points: int = 512,
) -> Optional[TraceAnalyticsObserver]:
    """Sharded one-pass analytics over a block-indexed trace.

    Returns the merged :class:`TraceAnalyticsObserver` — byte-identical to
    a serial pass (the observer is ``merge_exact``) — or ``None`` when the
    file cannot shard (not a plain-container v3 trace, or fewer than two
    blocks) so the caller can run the ordinary serial path.
    """
    path = os.fspath(path)
    if jobs <= 1 or multiprocessing.current_process().daemon:
        return None
    index = read_block_index(path)
    if index is None or len(index.blocks) < 2 or index.total_records == 0:
        return None
    plan = shard_plan(index, jobs)
    if len(plan) < 2:
        return None
    telemetry = get_telemetry()
    payloads = [
        (path, start, stop, shard, len(plan), death_buckets, max_points)
        for shard, (start, stop) in enumerate(plan)
    ]
    with telemetry.span("parallel.replay", path=path, shards=len(plan), mode="analyze"):
        with multiprocessing.Pool(processes=len(plan)) as pool:
            shards = pool.map(_analyze_shard, payloads)
    telemetry.add("parallel.shards", len(plan))
    telemetry.add("parallel.requests", index.total_records)
    with telemetry.span("parallel.merge", shards=len(plan)):
        merged = shards[0]
        for other in shards[1:]:
            merged.merge(other)
    return merged


# -------------------------------------------------------------- engine replay
#: AllocatorStats counters folded back into the coordinating allocator as
#: per-shard deltas (value at shard end minus value after snapshot seeding).
_SUM_FIELDS = (
    "requests",
    "inserts",
    "deletes",
    "flushes",
    "checkpoints",
    "total_allocated_volume",
    "total_moved_volume",
    "total_moves",
    "footprint_ratio_sum",
    "footprint_ratio_samples",
)
#: AllocatorStats fields folded by max (maxima over any shard's replay).
_MAX_FIELDS = (
    "max_footprint",
    "max_footprint_ratio",
    "max_request_moved_volume",
    "max_request_checkpoints",
)


def _stats_baseline(allocator) -> Dict[str, Any]:
    stats = allocator.stats
    base = {field: getattr(stats, field) for field in _SUM_FIELDS}
    base["allocated_sizes"] = dict(stats.allocated_sizes)
    base["moved_sizes"] = dict(stats.moved_sizes)
    return base


def _stats_delta(allocator, base: Dict[str, Any]) -> Dict[str, Any]:
    stats = allocator.stats
    delta = {field: getattr(stats, field) - base[field] for field in _SUM_FIELDS}
    for field in _MAX_FIELDS:
        delta[field] = getattr(stats, field)
    for name in ("allocated_sizes", "moved_sizes"):
        histogram = {}
        baseline = base[name]
        for size, count in getattr(stats, name).items():
            count -= baseline.get(size, 0)
            if count:
                histogram[size] = count
        delta[name] = histogram
    delta["delta"] = allocator.delta
    return delta


def _fold_stats(allocator, deltas: Sequence[Dict[str, Any]]) -> None:
    """Fold per-shard stat deltas into the coordinating allocator's stats.

    The coordinating allocator never served a request itself; after the fold
    its counters read as totals over all shards (exact for stream-derived
    counts like inserts/deletes/allocated volume, per-shard-reduction
    semantics for move and footprint numbers), so downstream consumers like
    the campaign executor keep working unchanged.
    """
    stats = allocator.stats
    for delta in deltas:
        for field in _SUM_FIELDS:
            setattr(stats, field, getattr(stats, field) + delta[field])
        for field in _MAX_FIELDS:
            setattr(stats, field, max(getattr(stats, field), delta[field]))
        for size, count in delta["allocated_sizes"].items():
            stats.allocated_sizes[size] += count
        for size, count in delta["moved_sizes"].items():
            stats.moved_sizes[size] += count
        if delta["delta"] > allocator._delta:
            allocator._delta = delta["delta"]


def _replay_shard(payload):
    allocator, observers, path, start, stop, shard, shards, finish_pending = payload
    with use_telemetry(Telemetry(enabled=False)):
        index = read_block_index(path)
        context = _shard_context(index, start, stop, shard, shards)
        if context.entry_live:
            # Seed the shard's allocator with the objects live at its entry
            # — observer-free, so seeding takes the zero-instrumentation
            # fast path and observers never mistake it for trace requests.
            allocator.run(
                Request.insert(name, size) for name, size in context.entry_live
            )
        for observer in observers:
            observer.begin_shard(context)
        baseline = _stats_baseline(allocator)
        engine = SimulationEngine(allocator, observers, finish_pending=finish_pending)
        engine.run(index.iter_range(start, stop))
    return observers, _stats_delta(allocator, baseline)


def replay_unshardable_reason(source, observers: Sequence[Observer]) -> Optional[str]:
    """Why ``source``/``observers`` cannot replay sharded (None if they can).

    Checked before any worker is spawned so the caller can fall back to a
    serial replay with a clear message.
    """
    if multiprocessing.current_process().daemon:
        return "already inside a worker process (nested process pools are not allowed)"
    blocking = unmergeable_observers(observers)
    if blocking:
        return (
            f"order-dependent observers cannot merge across shards: "
            f"{', '.join(sorted(set(blocking)))}"
        )
    path = getattr(source, "path", None)
    if path is None:
        return "trace is not an on-disk trace file (need a TraceFileSource)"
    index = read_block_index(path)
    if index is None:
        return (
            "trace is not a block-indexed plain v3 file "
            "(convert it with: repro trace convert --format v3)"
        )
    if len(index.blocks) < 2:
        return "trace has a single block (nothing to shard)"
    return None


def run_replay_sharded(
    allocator,
    source,
    observers: Sequence[Observer],
    jobs: int,
    finish_pending: bool = True,
) -> Optional[ShardedRun]:
    """Replay ``source`` sharded over ``jobs`` worker processes.

    Every observer must be mergeable and ``source`` a
    :class:`~repro.workloads.replay.TraceFileSource` over a plain-container
    v3 trace; returns ``None`` (having done nothing) when those conditions
    do not hold — use :func:`replay_unshardable_reason` for the message.

    Each worker receives a pickled copy of ``allocator`` and of the
    observers, seeds its copy from the shard's block-entry snapshot,
    replays its block range, and sends the observers (plus its stat
    deltas) back; the returned :class:`ShardedRun` carries the merged
    observers in the same order they were passed, and the coordinating
    allocator's stats are folded to read as totals over all shards.
    """
    if jobs <= 1 or replay_unshardable_reason(source, observers) is not None:
        return None
    path = os.fspath(source.path)
    index = read_block_index(path)
    plan = shard_plan(index, jobs)
    if len(plan) < 2:
        return None
    telemetry = get_telemetry()
    shards = len(plan)
    payloads = [
        (allocator, list(observers), path, start, stop, shard, shards, finish_pending)
        for shard, (start, stop) in enumerate(plan)
    ]
    try:
        import pickle

        pickle.dumps(payloads[0])
    except Exception:
        # An unpicklable allocator or observer cannot cross the process
        # boundary; the caller falls back to a serial replay.
        return None
    started = time.perf_counter()
    with telemetry.span("parallel.replay", path=path, shards=shards, mode="engine"):
        with multiprocessing.Pool(processes=shards) as pool:
            results = pool.map(_replay_shard, payloads)
    telemetry.add("parallel.shards", shards)
    telemetry.add("parallel.requests", index.total_records)
    with telemetry.span("parallel.merge", shards=shards):
        merged, _ = results[0]
        for others, _ in results[1:]:
            for mine, theirs in zip(merged, others):
                mine.merge(theirs)
        _fold_stats(allocator, [delta for _, delta in results])
        # Callers hold references to the observer instances they passed in
        # (campaign cells export from them afterwards); adopt the merged
        # worker state into those originals so sharded and serial replays
        # leave the caller's observers equally finished.
        for original, result in zip(observers, merged):
            original.__dict__.update(result.__dict__)
    elapsed = time.perf_counter() - started
    return ShardedRun(
        observers=list(observers),
        shards=shards,
        requests=index.total_records,
        elapsed_seconds=elapsed,
    )
