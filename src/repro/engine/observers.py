"""The observer protocol: pluggable instrumentation for trace replay.

Every measurement in this repository — headline metrics, cost charging,
footprint-over-time series, device timing — is an :class:`Observer` attached
to a replay.  Allocators emit events through their observer list while a
request is served:

* ``on_request(record)`` — after every insert/delete, with the full
  :class:`~repro.core.events.RequestRecord`;
* ``on_move(move)`` — at the instant of each placement or relocation;
* ``on_flush(flush)`` — when a buffer flush completes;
* ``on_checkpoint(count)`` — when checkpoints are spent;
* ``on_finish(allocator)`` — once, after the whole trace (and any pending
  deamortized work) has been served.

Observers that only override ``on_attach``/``on_finish`` are *passive*: the
engine never attaches them to the allocator, so they add zero per-request
work and keep the zero-instrumentation fast path (no ``RequestRecord`` or
``MoveEvent`` construction at all) intact.  Anything that overrides a
per-event hook is *active* and switches the replay into recording mode.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.events import FlushRecord, MoveEvent, RequestRecord


class Observer:
    """No-op base class; subclass and override the hooks you need."""

    def on_attach(self, allocator) -> None:
        """Called once when the observer joins a replay, before any request."""

    def on_request(self, record: RequestRecord) -> None:
        """Called after every served request with its full record."""

    def on_move(self, move: MoveEvent) -> None:
        """Called for every placement and relocation as it happens."""

    def on_flush(self, flush: FlushRecord) -> None:
        """Called when a buffer flush completes."""

    def on_checkpoint(self, count: int) -> None:
        """Called when ``count`` checkpoints are spent."""

    def on_finish(self, allocator) -> None:
        """Called once after the replay (including pending work) completes."""


#: The per-event hooks whose presence makes an observer *active* (it must
#: see records/moves as they happen, so the allocator records events).
EVENT_HOOKS = ("on_request", "on_move", "on_flush", "on_checkpoint")


def needs_events(observer: Observer) -> bool:
    """True if ``observer`` overrides any per-event hook."""
    return any(
        getattr(type(observer), hook, None) is not getattr(Observer, hook)
        for hook in EVENT_HOOKS
    )


# --------------------------------------------------------------------- metrics
class MetricsObserver(Observer):
    """Headline scalar metrics, snapshotted from the allocator's stats.

    Passive: all numbers are read from :class:`~repro.core.stats.AllocatorStats`
    (which the allocator maintains even on the zero-instrumentation fast
    path), so attaching this observer costs nothing per request.
    """

    def __init__(self) -> None:
        self.snapshot: Dict[str, Any] = {}

    def on_finish(self, allocator) -> None:
        stats = allocator.stats
        self.snapshot = {
            "final_volume": allocator.volume,
            "final_footprint": allocator.footprint,
            "max_footprint": stats.max_footprint,
            "max_footprint_ratio": stats.max_footprint_ratio,
            "mean_footprint_ratio": stats.mean_footprint_ratio,
            "total_moves": stats.total_moves,
            "total_moved_volume": stats.total_moved_volume,
            "moves_per_insert": stats.amortized_moves_per_insert,
            "max_request_moved_volume": stats.max_request_moved_volume,
            "max_request_checkpoints": stats.max_request_checkpoints,
            "total_checkpoints": stats.checkpoints,
            "flushes": stats.flushes,
        }


class CostObserver(Observer):
    """Charge the execution under one or more cost functions after the fact.

    Passive: cost ratios are derived from the size histograms in the
    allocator's stats, which is exactly what cost obliviousness promises —
    the replay never needs to know which cost function applies.
    """

    def __init__(self, cost_functions: Sequence = ()) -> None:
        self.cost_functions = tuple(cost_functions)
        self.cost_ratios: Dict[str, float] = {}

    def on_finish(self, allocator) -> None:
        stats = allocator.stats
        self.cost_ratios = {f.name: stats.cost_ratio(f) for f in self.cost_functions}


# ---------------------------------------------------------------------- series
class FootprintSeriesObserver(Observer):
    """Downsampled footprint/volume series with bounded memory.

    Two sampling modes:

    * ``every=N`` — record every ``N``-th request (the legacy ``sample_every``
      behaviour of ``run_trace``; the series grows with the trace).
    * ``max_points=M`` (the default, ``every=0``) — adaptive stride sampling:
      start recording every request, and whenever the buffer exceeds ``M``
      points drop every other sample and double the stride.  The series is
      deterministic, covers the whole trace, and never holds more than ``M``
      points — a 10M-request replay keeps the same bounded memory as a
      10k-request one.
    """

    export_key = "footprint_series"

    def __init__(self, every: int = 0, max_points: int = 512) -> None:
        if every < 0:
            raise ValueError(f"every must be >= 0, got {every}")
        if max_points < 2:
            raise ValueError(f"max_points must be >= 2, got {max_points}")
        self.every = int(every)
        self.max_points = int(max_points)
        self.indices: List[int] = []
        self.footprint: List[int] = []
        self.volume: List[int] = []
        self._seen = 0
        self._stride = self.every if self.every else 1

    def on_request(self, record: RequestRecord) -> None:
        index = self._seen
        self._seen += 1
        if index % self._stride != 0:
            return
        self.indices.append(index)
        self.footprint.append(record.footprint_after)
        self.volume.append(record.volume_after)
        if not self.every and len(self.indices) > self.max_points:
            # Adaptive mode: decimate in place and double the stride.
            self.indices = self.indices[::2]
            self.footprint = self.footprint[::2]
            self.volume = self.volume[::2]
            self._stride *= 2

    def export(self) -> Dict[str, Any]:
        """A JSON-serialisable summary (used by campaign artifacts)."""
        return {
            "stride": self._stride,
            "requests_seen": self._seen,
            "indices": list(self.indices),
            "footprint": list(self.footprint),
            "volume": list(self.volume),
        }


class HistoryObserver(Observer):
    """Retain every :class:`RequestRecord` (the ``trace=True`` flag as an
    observer, usable on any replay without reconstructing the allocator)."""

    def __init__(self) -> None:
        self.records: List[RequestRecord] = []

    def on_request(self, record: RequestRecord) -> None:
        self.records.append(record)


# ---------------------------------------------------------------------- device
class DeviceObserver(Observer):
    """Drive a :class:`~repro.storage.devices.DeviceModel` with the replay.

    Every insert becomes a device write of the object and every reallocation
    a device move (read + write) — including the moves performed while a
    pending deamortized flush is drained at the end of the replay, so the
    device sees exactly the moves the allocator's stats count.
    """

    def __init__(self, device) -> None:
        self.device = device

    def on_request(self, record: RequestRecord) -> None:
        if record.op == "insert":
            self.device.write(record.size)

    def on_move(self, move: MoveEvent) -> None:
        if move.is_reallocation:
            self.device.move(move.size)


# -------------------------------------------------------------------- registry
#: Observer kinds a campaign spec may request per cell, by name.  Every
#: registered class must be constructible from JSON-able keyword arguments
#: and expose ``export()`` returning a JSON-able result plus an
#: ``export_key`` naming the record field it fills.
OBSERVER_KINDS = {
    "footprint_series": FootprintSeriesObserver,
}


def build_observer(entry) -> Observer:
    """Build a registered observer from a spec entry (string or dict)."""
    if isinstance(entry, str):
        entry = {"kind": entry}
    if not isinstance(entry, dict) or "kind" not in entry:
        raise ValueError(f"observer entry {entry!r} must be a kind name or a dict with 'kind'")
    params = dict(entry)
    kind = params.pop("kind")
    if kind not in OBSERVER_KINDS:
        raise ValueError(f"unknown observer {kind!r}; known: {sorted(OBSERVER_KINDS)}")
    try:
        return OBSERVER_KINDS[kind](**params)
    except (TypeError, ValueError) as error:
        raise ValueError(f"bad parameters for observer {kind!r}: {error}") from error
