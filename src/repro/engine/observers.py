"""The observer protocol: pluggable instrumentation for trace replay.

Every measurement in this repository — headline metrics, cost charging,
footprint-over-time series, device timing — is an :class:`Observer` attached
to a replay.  Allocators emit events through their observer list while a
request is served:

* ``on_request(record)`` — after every insert/delete, with the full
  :class:`~repro.core.events.RequestRecord`;
* ``on_move(move)`` — at the instant of each placement or relocation;
* ``on_flush(flush)`` — when a buffer flush completes;
* ``on_checkpoint(count)`` — when checkpoints are spent;
* ``on_finish(allocator)`` — once, after the whole trace (and any pending
  deamortized work) has been served.

Observers that only override ``on_attach``/``on_finish`` are *passive*: the
engine never attaches them to the allocator, so they add zero per-request
work and keep the zero-instrumentation fast path (no ``RequestRecord`` or
``MoveEvent`` construction at all) intact.  Anything that overrides a
per-event hook is *active* and switches the replay into recording mode.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.events import FlushRecord, MoveEvent, RequestRecord
from repro.obs.telemetry import get_telemetry
from repro.workloads.base import Request


@dataclass
class ShardContext:
    """What a shard-replay worker knows about its slice of the trace.

    Handed to every mergeable observer via :meth:`Observer.begin_shard`
    before the shard's requests are replayed.  ``entry_live`` is the
    block-entry snapshot of the v3 trace — the exact ``(name, size)``
    objects live when the shard starts — which is what lets stream-derived
    observers reproduce the serial state without seeing the prefix.
    """

    shard: int  # this shard's position in the fan-out (0-based)
    shards: int  # total number of shards
    start_index: int  # global index of the shard's first request
    records: int  # requests in this shard
    total_records: int  # requests in the whole trace
    entry_live: List[Tuple[str, int]] = field(default_factory=list)


def planned_stride(total: int, max_points: int, every: int = 0) -> int:
    """The stride the adaptive sampler ends on after ``total`` requests.

    The serial sampler records every ``stride``-th request and, whenever it
    holds more than ``max_points`` samples, drops every other one and
    doubles the stride — so at any moment its buffer is exactly the
    multiples of the current stride.  The (max_points+1)-th multiple is
    what triggers each doubling, hence: the final stride is the smallest
    power of two ``s`` with ``max_points * s >= total``.  Shard workers
    sample at this stride from the start (at global indices), which makes
    the concatenated shard series byte-identical to the serial one.
    """
    if every:
        return every
    stride = 1
    while max_points * stride < total:
        stride *= 2
    return stride


class Observer:
    """No-op base class; subclass and override the hooks you need."""

    #: Whether shard-replay results of this observer can be combined via
    #: :meth:`merge`.  Order-dependent observers (anything whose output
    #: depends on the allocator's full placement history, like a footprint
    #: series) leave this False, which forces serial replay.
    mergeable = False
    #: True when a merged shard replay is byte-identical to the serial one
    #: (the observer is derived purely from the request stream).  False for
    #: mergeable observers with documented sharded-reduction semantics
    #: (per-shard allocator state combined by sum/max/concat).
    merge_exact = False
    #: Whether the observer's state can be pickled into a session snapshot
    #: (see :meth:`repro.engine.session.EngineSession.snapshot`).  Observers
    #: holding external resources — an open trace writer, a live file
    #: handle — set this False; their state lives in the artifact they
    #: manage, not in the snapshot.
    snapshotable = True

    def on_attach(self, allocator) -> None:
        """Called once when the observer joins a replay, before any request."""

    def begin_shard(self, context: ShardContext) -> None:
        """Called before a shard replay, instead of seeing the trace prefix.

        Mergeable observers use ``context`` (global start index, total
        request count, block-entry live snapshot) to set up state exactly
        as if the prefix had been replayed.  Only called when
        :attr:`mergeable` is True.
        """

    def merge(self, other: "Observer") -> None:
        """Fold the next shard's finished observer into this one, in order.

        Shards must be merged left to right starting from shard 0; the
        result accumulates in ``self``.  Only called when
        :attr:`mergeable` is True.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement merge()"
        )

    def on_request(self, record: RequestRecord) -> None:
        """Called after every served request with its full record."""

    def on_move(self, move: MoveEvent) -> None:
        """Called for every placement and relocation as it happens."""

    def on_flush(self, flush: FlushRecord) -> None:
        """Called when a buffer flush completes."""

    def on_checkpoint(self, count: int) -> None:
        """Called when ``count`` checkpoints are spent."""

    def on_finish(self, allocator) -> None:
        """Called once after the replay (including pending work) completes."""

    def on_abort(self, allocator, error: BaseException) -> None:
        """Called instead of ``on_finish`` when the replay raises.

        Observers holding external resources (an open trace writer, a file
        handle) release them here; ``on_finish`` is never called for an
        aborted replay.
        """


#: The per-event hooks whose presence makes an observer *active* (it must
#: see records/moves as they happen, so the allocator records events).
EVENT_HOOKS = ("on_request", "on_move", "on_flush", "on_checkpoint")


def needs_events(observer: Observer) -> bool:
    """True if ``observer`` overrides any per-event hook."""
    return any(
        getattr(type(observer), hook, None) is not getattr(Observer, hook)
        for hook in EVENT_HOOKS
    )


# --------------------------------------------------------------------- metrics
class MetricsObserver(Observer):
    """Headline scalar metrics, snapshotted from the allocator's stats.

    Passive: all numbers are read from :class:`~repro.core.stats.AllocatorStats`
    (which the allocator maintains even on the zero-instrumentation fast
    path), so attaching this observer costs nothing per request.

    Mergeable with sharded-reduction semantics (``merge_exact = False``):
    counters (moves, moved volume, checkpoints, flushes) and the footprint
    ratio samples are exact per-shard deltas — each worker subtracts the
    stats accrued while seeding its allocator from the block-entry snapshot
    — combined by sum; maxima by max; final volume/footprint come from the
    last shard.  The values still describe per-shard allocators that each
    started from a freshly seeded layout, so they approximate (rather than
    reproduce) the serial allocator's numbers.
    """

    mergeable = True

    #: snapshot keys combined by summation across shards
    _SUM_KEYS = (
        "total_moves",
        "total_moved_volume",
        "total_checkpoints",
        "flushes",
    )
    #: snapshot keys combined by max across shards
    _MAX_KEYS = (
        "max_footprint",
        "max_footprint_ratio",
        "max_request_moved_volume",
        "max_request_checkpoints",
    )

    def __init__(self) -> None:
        self.snapshot: Dict[str, Any] = {}
        self._shard: Optional[ShardContext] = None
        self._baseline: Optional[Dict[str, Any]] = None
        # Per-shard deltas retained for merging (shard mode only).
        self._inserts = 0
        self._ratio_sum = 0.0
        self._ratio_samples = 0

    def begin_shard(self, context: ShardContext) -> None:
        self._shard = context

    def on_attach(self, allocator) -> None:
        if self._shard is None:
            return
        # The worker seeded the allocator from the block-entry snapshot
        # before the engine run; capture the stats those inserts accrued so
        # on_finish can report deltas for the shard's own requests only.
        stats = allocator.stats
        self._baseline = {
            "inserts": stats.inserts,
            "total_moves": stats.total_moves,
            "total_moved_volume": stats.total_moved_volume,
            "total_checkpoints": stats.checkpoints,
            "flushes": stats.flushes,
            "ratio_sum": stats.footprint_ratio_sum,
            "ratio_samples": stats.footprint_ratio_samples,
        }

    def on_finish(self, allocator) -> None:
        stats = allocator.stats
        self.snapshot = {
            "final_volume": allocator.volume,
            "final_footprint": allocator.footprint,
            "max_footprint": stats.max_footprint,
            "max_footprint_ratio": stats.max_footprint_ratio,
            "mean_footprint_ratio": stats.mean_footprint_ratio,
            "total_moves": stats.total_moves,
            "total_moved_volume": stats.total_moved_volume,
            "moves_per_insert": stats.amortized_moves_per_insert,
            "max_request_moved_volume": stats.max_request_moved_volume,
            "max_request_checkpoints": stats.max_request_checkpoints,
            "total_checkpoints": stats.checkpoints,
            "flushes": stats.flushes,
        }
        base = self._baseline
        if base is None:
            return
        # Shard mode: reduce every counter to the shard's own delta.
        snap = self.snapshot
        self._inserts = stats.inserts - base["inserts"]
        self._ratio_sum = stats.footprint_ratio_sum - base["ratio_sum"]
        self._ratio_samples = stats.footprint_ratio_samples - base["ratio_samples"]
        snap["total_moves"] = stats.total_moves - base["total_moves"]
        snap["total_moved_volume"] = stats.total_moved_volume - base["total_moved_volume"]
        snap["total_checkpoints"] = stats.checkpoints - base["total_checkpoints"]
        snap["flushes"] = stats.flushes - base["flushes"]
        snap["mean_footprint_ratio"] = (
            self._ratio_sum / self._ratio_samples if self._ratio_samples else 0.0
        )
        snap["moves_per_insert"] = (
            snap["total_moves"] / self._inserts if self._inserts else 0.0
        )

    def merge(self, other: "MetricsObserver") -> None:
        left, right = self.snapshot, other.snapshot
        for key in self._SUM_KEYS:
            left[key] += right[key]
        for key in self._MAX_KEYS:
            left[key] = max(left[key], right[key])
        left["final_volume"] = right["final_volume"]
        left["final_footprint"] = right["final_footprint"]
        self._inserts += other._inserts
        self._ratio_sum += other._ratio_sum
        self._ratio_samples += other._ratio_samples
        left["mean_footprint_ratio"] = (
            self._ratio_sum / self._ratio_samples if self._ratio_samples else 0.0
        )
        left["moves_per_insert"] = (
            left["total_moves"] / self._inserts if self._inserts else 0.0
        )


class CostObserver(Observer):
    """Charge the execution under one or more cost functions after the fact.

    Passive: cost ratios are derived from the size histograms in the
    allocator's stats, which is exactly what cost obliviousness promises —
    the replay never needs to know which cost function applies.

    Mergeable with sharded-reduction semantics (``merge_exact = False``):
    each shard keeps its delta size histograms (seeding inserts subtracted),
    merge sums the histograms and recomputes the ratios.  The allocation
    histogram is then exactly the serial one (allocations follow the request
    stream); only the move histogram reflects per-shard allocator state.
    """

    mergeable = True

    def __init__(self, cost_functions: Sequence = ()) -> None:
        self.cost_functions = tuple(cost_functions)
        self.cost_ratios: Dict[str, float] = {}
        self._shard: Optional[ShardContext] = None
        self._base_allocated: Optional[Dict[int, int]] = None
        self._base_moved: Optional[Dict[int, int]] = None
        # Delta histograms retained for merging (shard mode only).
        self._allocated: Dict[int, int] = {}
        self._moved: Dict[int, int] = {}

    def begin_shard(self, context: ShardContext) -> None:
        self._shard = context

    def on_attach(self, allocator) -> None:
        if self._shard is None:
            return
        stats = allocator.stats
        self._base_allocated = dict(stats.allocated_sizes)
        self._base_moved = dict(stats.moved_sizes)

    @staticmethod
    def _delta(current, baseline: Dict[int, int]) -> Dict[int, int]:
        out = {}
        for size, count in current.items():
            count -= baseline.get(size, 0)
            if count:
                out[size] = count
        return out

    def _ratio(self, cost_function) -> float:
        allocation = sum(
            cost_function(size) * count for size, count in self._allocated.items()
        )
        if allocation == 0:
            return 0.0
        reallocation = sum(
            cost_function(size) * count for size, count in self._moved.items()
        )
        return reallocation / allocation

    def on_finish(self, allocator) -> None:
        stats = allocator.stats
        if self._base_allocated is None:
            self.cost_ratios = {f.name: stats.cost_ratio(f) for f in self.cost_functions}
            return
        self._allocated = self._delta(stats.allocated_sizes, self._base_allocated)
        self._moved = self._delta(stats.moved_sizes, self._base_moved)
        self.cost_ratios = {f.name: self._ratio(f) for f in self.cost_functions}

    def merge(self, other: "CostObserver") -> None:
        for size, count in other._allocated.items():
            self._allocated[size] = self._allocated.get(size, 0) + count
        for size, count in other._moved.items():
            self._moved[size] = self._moved.get(size, 0) + count
        self.cost_ratios = {f.name: self._ratio(f) for f in self.cost_functions}


# ---------------------------------------------------------------------- series
def decimate_series(indices: List[int], series: Sequence[List]) -> None:
    """Drop every other sample in place, keeping ``series`` aligned with
    ``indices`` (the adaptive-mode step that accompanies stride doubling).
    Shared by :class:`SampledSeriesObserver` and
    :class:`~repro.engine.analytics.TraceAnalyticsObserver`."""
    indices[:] = indices[::2]
    for values in series:
        values[:] = values[::2]


class SampledSeriesObserver(Observer):
    """Base class for bounded request-indexed series observers.

    Two sampling modes, shared by every series observer:

    * ``every=N`` — record every ``N``-th request (the legacy ``sample_every``
      behaviour of ``run_trace``; the series grows with the trace).
    * ``max_points=M`` (the default, ``every=0``) — adaptive stride sampling:
      start recording every request, and whenever the buffer exceeds ``M``
      points drop every other sample and double the stride.  The series is
      deterministic, covers the whole trace, and never holds more than ``M``
      points — a 10M-request replay keeps the same bounded memory as a
      10k-request one.

    Subclasses implement ``_sample`` (append one sample to each of their
    series lists) and ``_series`` (return those lists so decimation keeps
    them aligned with :attr:`indices`).

    In shard mode (:meth:`begin_shard`) the observer counts requests at
    global trace indices and samples at the serial run's *final* stride
    (:func:`planned_stride`) from the start, so decimation never triggers
    and concatenating the shard series left to right reproduces the serial
    sample indices exactly.  Whether the sampled *values* match the serial
    run depends on the subclass (``merge_exact``).
    """

    def __init__(self, every: int = 0, max_points: int = 512) -> None:
        if every < 0:
            raise ValueError(f"every must be >= 0, got {every}")
        if max_points < 2:
            raise ValueError(f"max_points must be >= 2, got {max_points}")
        self.every = int(every)
        self.max_points = int(max_points)
        self.indices: List[int] = []
        self._seen = 0
        self._stride = self.every if self.every else 1
        self._shard: Optional[ShardContext] = None

    def _sample(self, record: RequestRecord) -> None:
        """Append one sample to every series list (subclass hook)."""
        raise NotImplementedError

    def _series(self) -> Tuple[List, ...]:
        """The sample lists decimated alongside ``indices`` (subclass hook)."""
        raise NotImplementedError

    def begin_shard(self, context: ShardContext) -> None:
        self._shard = context
        self._seen = context.start_index
        self._stride = planned_stride(context.total_records, self.max_points, self.every)

    def merge(self, other: "SampledSeriesObserver") -> None:
        self.indices.extend(other.indices)
        for mine, theirs in zip(self._series(), other._series()):
            mine.extend(theirs)
        self._seen = other._seen

    def on_request(self, record: RequestRecord) -> None:
        index = self._seen
        self._seen += 1
        if index % self._stride != 0:
            return
        self.indices.append(index)
        self._sample(record)
        if not self.every and self._shard is None and len(self.indices) > self.max_points:
            # Adaptive mode: decimate in place and double the stride.  Shard
            # mode already samples at the final stride, so a shard never
            # collects more than max_points samples and never decimates.
            decimate_series(self.indices, self._series())
            self._stride *= 2

    def _export_base(self) -> Dict[str, Any]:
        return {
            "stride": self._stride,
            "requests_seen": self._seen,
            "indices": list(self.indices),
        }


class FootprintSeriesObserver(SampledSeriesObserver):
    """Downsampled footprint/volume series with bounded memory."""

    export_key = "footprint_series"

    def __init__(self, every: int = 0, max_points: int = 512) -> None:
        super().__init__(every=every, max_points=max_points)
        self.footprint: List[int] = []
        self.volume: List[int] = []

    def _sample(self, record: RequestRecord) -> None:
        self.footprint.append(record.footprint_after)
        self.volume.append(record.volume_after)

    def _series(self) -> Tuple[List, ...]:
        return (self.footprint, self.volume)

    def export(self) -> Dict[str, Any]:
        """A JSON-serialisable summary (used by campaign artifacts)."""
        out = self._export_base()
        out["footprint"] = list(self.footprint)
        out["volume"] = list(self.volume)
        return out


class GapHistogramObserver(SampledSeriesObserver):
    """Power-of-two gap-size occupancy over time, with bounded memory.

    Each sample is a histogram of the allocator's current free gaps bucketed
    by power-of-two length — the fragmentation fingerprint the free-list
    policies differ on.  Free-list allocators expose their
    :class:`~repro.storage.gap_index.GapIndex` gaps via ``free_extents()``
    (an ordered O(n) walk); every other allocator falls back to the address
    space's gaps below the footprint (``space.free_gaps()``).

    Mergeable with sharded-reduction semantics (``merge_exact = False``):
    shard series concatenate at the serial sample indices, but each sample
    reads a per-shard allocator whose layout started from a freshly seeded
    block-entry snapshot, so the histograms approximate the serial ones.
    """

    mergeable = True
    export_key = "gap_histogram"

    def __init__(self, every: int = 0, max_points: int = 128) -> None:
        super().__init__(every=every, max_points=max_points)
        self.counts: List[Dict[int, int]] = []  # per sample: exponent -> gaps
        self.total_gaps: List[int] = []
        self.free_volume: List[int] = []
        self._allocator = None

    def on_attach(self, allocator) -> None:
        self._allocator = allocator

    def _gaps(self):
        allocator = self._allocator
        if hasattr(allocator, "free_extents"):
            return allocator.free_extents()
        return allocator.space.free_gaps()

    def _sample(self, record: RequestRecord) -> None:
        histogram: Dict[int, int] = {}
        total = 0
        volume = 0
        for extent in self._gaps():
            exponent = extent.length.bit_length() - 1
            histogram[exponent] = histogram.get(exponent, 0) + 1
            total += 1
            volume += extent.length
        self.counts.append(histogram)
        self.total_gaps.append(total)
        self.free_volume.append(volume)

    def _series(self) -> Tuple[List, ...]:
        return (self.counts, self.total_gaps, self.free_volume)

    def on_finish(self, allocator) -> None:
        # Sampling is over; dropping the allocator reference keeps the
        # observer small when it is pickled back from a shard worker.
        self._allocator = None

    def export(self) -> Dict[str, Any]:
        """Bucket-aligned count rows per sample (JSON-serialisable)."""
        exponents = sorted({e for sample in self.counts for e in sample})
        out = self._export_base()
        out["buckets"] = [[1 << e, (1 << (e + 1)) - 1] for e in exponents]
        out["counts"] = [[sample.get(e, 0) for e in exponents] for sample in self.counts]
        out["total_gaps"] = list(self.total_gaps)
        out["free_volume"] = list(self.free_volume)
        return out


class PerClassOccupancyObserver(SampledSeriesObserver):
    """Live object count and volume per power-of-two size class over time.

    Derived purely from the request stream (insert adds to the class of the
    object's size, delete removes), so it works identically on every
    allocator and never touches allocator internals.

    Exactly mergeable: a shard seeds its live-class state from the
    block-entry snapshot and samples at the serial stride, so merged shard
    results are byte-identical to a serial replay.
    """

    mergeable = True
    merge_exact = True
    export_key = "per_class_occupancy"

    def __init__(self, every: int = 0, max_points: int = 128) -> None:
        super().__init__(every=every, max_points=max_points)
        self._live_counts: Dict[int, int] = {}
        self._live_volumes: Dict[int, int] = {}
        self.counts: List[Dict[int, int]] = []
        self.volumes: List[Dict[int, int]] = []

    def begin_shard(self, context: ShardContext) -> None:
        super().begin_shard(context)
        for _name, size in context.entry_live:
            exponent = size.bit_length() - 1
            self._live_counts[exponent] = self._live_counts.get(exponent, 0) + 1
            self._live_volumes[exponent] = self._live_volumes.get(exponent, 0) + size

    def on_request(self, record: RequestRecord) -> None:
        exponent = record.size.bit_length() - 1
        if record.op == "insert":
            self._live_counts[exponent] = self._live_counts.get(exponent, 0) + 1
            self._live_volumes[exponent] = self._live_volumes.get(exponent, 0) + record.size
        else:
            count = self._live_counts.get(exponent, 0) - 1
            volume = self._live_volumes.get(exponent, 0) - record.size
            if count > 0:
                self._live_counts[exponent] = count
                self._live_volumes[exponent] = volume
            else:
                self._live_counts.pop(exponent, None)
                self._live_volumes.pop(exponent, None)
        super().on_request(record)

    def _sample(self, record: RequestRecord) -> None:
        self.counts.append(dict(self._live_counts))
        self.volumes.append(dict(self._live_volumes))

    def _series(self) -> Tuple[List, ...]:
        return (self.counts, self.volumes)

    def export(self) -> Dict[str, Any]:
        """Class-aligned count/volume rows per sample (JSON-serialisable)."""
        exponents = sorted(
            {e for sample in self.counts for e in sample}
            | {e for sample in self.volumes for e in sample}
        )
        out = self._export_base()
        out["classes"] = [[1 << e, (1 << (e + 1)) - 1] for e in exponents]
        out["count"] = [[sample.get(e, 0) for e in exponents] for sample in self.counts]
        out["volume"] = [[sample.get(e, 0) for e in exponents] for sample in self.volumes]
        return out


# -------------------------------------------------------------------- recorder
class TraceRecorderObserver(Observer):
    """Stream the replayed requests straight to an on-disk trace file.

    Attaching this observer to a live engine run records the workload it
    served — synthetic, adversarial, or generated on the fly — as a v2 (or
    v0/v1) trace file via the same streaming
    :func:`~repro.workloads.replay.open_trace_writer` path ``repro trace
    convert`` uses, so a multi-million-request run is captured without ever
    materialising it.  If the replay raises, the partial file is aborted and
    left truncation-detectable (a v2 reader refuses it loudly).

    In a campaign spec, ``"{cell}"`` in ``path`` is replaced by the cell
    index, so parallel cells never clobber one another's recording.
    """

    export_key = "trace_recorder"
    #: The open writer (and its worker thread in background mode) cannot be
    #: pickled into a session snapshot; the recording itself is the artifact.
    snapshotable = False

    def __init__(
        self,
        path: str,
        version: int = 2,
        compress: Union[bool, str] = False,
        label: str = "recorded",
        metadata: Optional[Dict[str, Any]] = None,
    ) -> None:
        if not path:
            raise ValueError("trace_recorder needs a non-empty 'path'")
        self.path = str(path)
        self.version = int(version)
        # False / True (inline zlib) / "background" (writer-thread zlib,
        # byte-identical output) — validated by the writer at on_attach.
        self.compress = compress if isinstance(compress, str) else bool(compress)
        self.label = str(label)
        self.metadata = dict(metadata) if metadata else None
        self.requests_written = 0
        self.file_bytes = 0
        self.write_seconds = 0.0
        self._writer = None
        self._closed = False
        self._timed = False

    def bind_cell(self, index: int, cell_id: str) -> None:
        """Substitute the ``{cell}`` placeholder (called by the executor)."""
        self.path = self.path.replace("{cell}", str(index))

    def on_attach(self, allocator) -> None:
        from repro.workloads.replay import open_trace_writer

        self._writer = open_trace_writer(
            self.path,
            version=self.version,
            label=self.label,
            metadata=self.metadata,
            compress=self.compress,
        )
        self._closed = False
        self.requests_written = 0
        self.write_seconds = 0.0
        # Per-write timing only exists while telemetry is on; the decision
        # is made once per replay so the untimed path stays two branches.
        self._timed = get_telemetry().enabled

    def on_request(self, record: RequestRecord) -> None:
        if record.op == "insert":
            request = Request.insert(record.name, record.size)
        else:
            request = Request.delete(record.name)
        if self._timed:
            started = time.perf_counter()
            self._writer.write(request)
            self.write_seconds += time.perf_counter() - started
        else:
            self._writer.write(request)
        self.requests_written += 1

    def on_finish(self, allocator) -> None:
        if self._writer is not None and not self._closed:
            self._writer.close()
            self._closed = True
            self.file_bytes = os.path.getsize(self.path)
            if self._timed:
                telemetry = get_telemetry()
                telemetry.add("trace_recorder.write_seconds", round(self.write_seconds, 6))
                telemetry.add("trace_recorder.requests", self.requests_written)

    def on_abort(self, allocator, error: BaseException) -> None:
        if self._writer is not None and not self._closed:
            self._writer.abort()
            self._closed = True

    def export(self) -> Dict[str, Any]:
        """Where the recording went (JSON-serialisable)."""
        out = {
            "path": self.path,
            "version": self.version,
            "compressed": self.compress,
            "requests": self.requests_written,
            "file_bytes": self.file_bytes,
        }
        if self._timed:
            # Only recorded under telemetry, and nondeterministic — kept out
            # of the export otherwise so record-equality comparisons hold.
            out["write_seconds"] = round(self.write_seconds, 6)
        return out


class HistoryObserver(Observer):
    """Retain every :class:`RequestRecord` (the ``trace=True`` flag as an
    observer, usable on any replay without reconstructing the allocator)."""

    def __init__(self) -> None:
        self.records: List[RequestRecord] = []

    def on_request(self, record: RequestRecord) -> None:
        self.records.append(record)


# ---------------------------------------------------------------------- device
class DeviceObserver(Observer):
    """Drive a :class:`~repro.storage.devices.DeviceModel` with the replay.

    Every insert becomes a device write of the object and every reallocation
    a device move (read + write) — including the moves performed while a
    pending deamortized flush is drained at the end of the replay, so the
    device sees exactly the moves the allocator's stats count.

    Mergeable (inexact): under a sharded replay each shard's device times
    its own writes and moves; merging sums the counters and concatenates
    the per-operation timings.  Write traffic is stream-derived and thus
    exact; move traffic (and SSD erase accounting) reflects each shard's
    freshly seeded allocator.
    """

    mergeable = True

    def __init__(self, device) -> None:
        self.device = device

    def merge(self, other: "DeviceObserver") -> None:
        mine = self.device.stats
        theirs = other.device.stats
        mine.reads += theirs.reads
        mine.writes += theirs.writes
        mine.moves += theirs.moves
        mine.units_read += theirs.units_read
        mine.units_written += theirs.units_written
        mine.elapsed_ms += theirs.elapsed_ms
        mine.per_operation_ms.extend(theirs.per_operation_ms)
        for attr in ("dirty_pages", "erases"):  # SolidStateModel wear state
            if hasattr(self.device, attr) and hasattr(other.device, attr):
                setattr(
                    self.device,
                    attr,
                    getattr(self.device, attr) + getattr(other.device, attr),
                )

    def on_request(self, record: RequestRecord) -> None:
        if record.op == "insert":
            self.device.write(record.size)

    def on_move(self, move: MoveEvent) -> None:
        if move.is_reallocation:
            self.device.move(move.size)


# -------------------------------------------------------------------- registry
#: Observer kinds a campaign spec may request per cell, by name.  Every
#: registered class must be constructible from JSON-able keyword arguments
#: and expose ``export()`` returning a JSON-able result plus an
#: ``export_key`` naming the record field it fills.
OBSERVER_KINDS = {
    "footprint_series": FootprintSeriesObserver,
    "gap_histogram": GapHistogramObserver,
    "per_class_occupancy": PerClassOccupancyObserver,
    "trace_recorder": TraceRecorderObserver,
    # "trace_analytics" (streaming trace analytics) is registered by
    # repro.engine.__init__ — the class lives in repro.engine.analytics,
    # which imports this module.
}


def build_observer(entry) -> Observer:
    """Build a registered observer from a spec entry (string or dict)."""
    if isinstance(entry, str):
        entry = {"kind": entry}
    if not isinstance(entry, dict) or "kind" not in entry:
        raise ValueError(f"observer entry {entry!r} must be a kind name or a dict with 'kind'")
    params = dict(entry)
    kind = params.pop("kind")
    if kind not in OBSERVER_KINDS:
        raise ValueError(f"unknown observer {kind!r}; known: {sorted(OBSERVER_KINDS)}")
    try:
        return OBSERVER_KINDS[kind](**params)
    except (TypeError, ValueError) as error:
        raise ValueError(f"bad parameters for observer {kind!r}: {error}") from error
