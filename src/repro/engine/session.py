"""The incremental session core: open / apply / snapshot / close.

:class:`EngineSession` is :meth:`SimulationEngine.run` taken apart so a
replay no longer has to be one blocking call.  A session attaches the
observers once (:meth:`open`), feeds request batches through the allocator
as they arrive (:meth:`apply`), reads live stats and observer analytics
mid-flight (:meth:`stats` / :meth:`analytics`), checkpoints the allocator
and observer state to disk (:meth:`snapshot` / :meth:`restore`), and runs
today's finish/abort semantics at the end (:meth:`close` / :meth:`abort`).

``SimulationEngine.run``, ``run_trace``, and the campaign cell path are all
thin wrappers over one session per replay, so the batch behaviour — span
sequence, observer hooks, stats accounting, abort cleanup — is pinned by
the whole existing test suite.  The live allocation service
(:mod:`repro.serve`) holds one long-lived session per tenant and calls
:meth:`apply` once per coalesced network batch.

The active-observer fast path survives intact: only observers overriding a
per-event hook are attached to the allocator, so a session with passive
observers (or none) replays at full zero-instrumentation speed.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.core.base import Allocator
from repro.engine.observers import Observer, needs_events
from repro.obs.telemetry import get_telemetry
from repro.storage.checkpoint import read_snapshot, write_snapshot
from repro.workloads.base import Request

#: Snapshot payload format tag (see :meth:`EngineSession.snapshot`).
SESSION_SNAPSHOT_FORMAT = "repro-session-snapshot"
SESSION_SNAPSHOT_VERSION = 1


class SessionStateError(RuntimeError):
    """A session method was called in the wrong lifecycle state."""


class EngineSession:
    """One incremental replay: observers attached, requests applied in batches.

    Parameters
    ----------
    allocator:
        The allocator under test (its state persists across batches).
    observers:
        Observers wired into the session.  Active observers (overriding a
        per-event hook) see events as they happen; passive observers only
        see ``on_attach``/``on_finish``.
    finish_pending:
        Drive any deamortized flush to completion in :meth:`close` so final
        volumes and invariants are comparable across allocators.
    label:
        Label stamped on the :class:`~repro.engine.engine.EngineRun` that
        :meth:`close` returns when the session was fed plain batches (a
        trace-driven run keeps the trace's own label).
    """

    def __init__(
        self,
        allocator: Allocator,
        observers: Sequence[Observer] = (),
        finish_pending: bool = True,
        label: str = "session",
    ) -> None:
        self.allocator = allocator
        self.observers: List[Observer] = list(observers)
        self.finish_pending = finish_pending
        self.label = label
        self._active: List[Observer] = []
        self._telemetry = None
        self._opened = False
        self._finalized = False
        self._elapsed = 0.0
        self._requests_before = 0
        self._moves_before = 0
        self._flushes_before = 0

    # ------------------------------------------------------------- lifecycle
    @property
    def opened(self) -> bool:
        return self._opened and not self._finalized

    def open(self) -> "EngineSession":
        """Attach observers and baseline the stats counters.

        Mirrors the head of the old ``SimulationEngine.run``: one telemetry
        lookup for the whole session, an ``engine.attach`` span around the
        ``on_attach`` hooks, and only *active* observers attached to the
        allocator so the zero-instrumentation fast path is preserved.
        """
        if self._opened:
            raise SessionStateError("session is already open")
        allocator = self.allocator
        self._telemetry = telemetry = get_telemetry()
        self._active = [obs for obs in self.observers if needs_events(obs)]
        with telemetry.span("engine.attach"):
            for observer in self.observers:
                observer.on_attach(allocator)
        for observer in self._active:
            allocator.attach_observer(observer)
        stats = allocator.stats
        self._requests_before = stats.requests
        self._moves_before = stats.total_moves
        self._flushes_before = stats.flushes
        self._opened = True
        return self

    def _require_open(self) -> None:
        if not self._opened:
            raise SessionStateError("session is not open (call open() first)")
        if self._finalized:
            raise SessionStateError("session is already closed or aborted")

    # ----------------------------------------------------------------- apply
    def apply(self, batch: Union[Iterable[Request], Sequence[Request]]) -> int:
        """Feed ``batch`` (any iterable of requests) through the allocator.

        Returns the number of requests actually applied.  On a raising
        request the allocator rolls back that request's own bookkeeping
        (see ``Allocator._serve_insert``), so the applied count stays
        derivable from the stats delta even across a mid-batch failure —
        and the exception propagates to the caller, who decides whether to
        :meth:`abort` the session (``SimulationEngine.run`` does) or keep
        it alive (the serve layer reports the error and carries on).
        """
        self._require_open()
        allocator = self.allocator
        before = allocator.stats.requests
        started = time.perf_counter()
        try:
            with self._telemetry.span("engine.replay"):
                allocator.run(batch)
        finally:
            self._elapsed += time.perf_counter() - started
        return allocator.stats.requests - before

    # ------------------------------------------------------------ live reads
    @property
    def requests_applied(self) -> int:
        """Requests applied so far in this session (stats delta)."""
        return self.allocator.stats.requests - self._requests_before

    @property
    def elapsed_seconds(self) -> float:
        """Wall time spent inside :meth:`apply` (and the closing flush)."""
        return self._elapsed

    def stats(self) -> Dict[str, Any]:
        """Live, JSON-safe session stats without finishing the run.

        ``requests_per_second`` is ``0.0`` (never ``inf``) on
        sub-clock-resolution sessions, so serving these over the wire never
        puts ``Infinity`` into a JSON document.
        """
        allocator = self.allocator
        stats = allocator.stats
        elapsed = self._elapsed
        requests = stats.requests - self._requests_before
        return {
            "label": self.label,
            "requests": requests,
            "moves": stats.total_moves - self._moves_before,
            "flushes": stats.flushes - self._flushes_before,
            "volume": allocator.volume,
            "footprint": allocator.footprint,
            "max_footprint": stats.max_footprint,
            "num_objects": allocator.num_objects,
            "elapsed_seconds": round(elapsed, 6),
            "requests_per_second": (
                round(requests / elapsed, 1) if elapsed > 0 else 0.0
            ),
        }

    def analytics(self) -> Dict[str, Any]:
        """Live exports of every observer exposing ``export_key``/``export``.

        Reading analytics does not finish the session; observers that only
        compute their export in ``on_finish`` reflect the state of their
        last finish (typically empty mid-session).
        """
        out: Dict[str, Any] = {}
        for observer in self.observers:
            key = getattr(observer, "export_key", None)
            export = getattr(observer, "export", None)
            if key and callable(export):
                out[str(key)] = export()
        return out

    # -------------------------------------------------------------- snapshot
    def snapshot(self, path) -> Dict[str, Any]:
        """Checkpoint the allocator (and snapshotable observers) to ``path``.

        The payload is written atomically via
        :func:`repro.storage.checkpoint.write_snapshot`.  Observers that
        hold external resources (an open trace writer, say) declare
        ``snapshotable = False`` and are skipped — their state lives in the
        artifact they manage.  Returns a JSON-safe description of what was
        snapshotted.
        """
        self._require_open()
        observers = [
            obs for obs in self.observers if getattr(obs, "snapshotable", True)
        ]
        # The allocator's attached-observer list is session wiring, not
        # allocator state: detach for the pickle (an unsnapshotable observer
        # there would drag its resources in; a snapshotable one would come
        # back twice, since restore() re-attaches the active observers).
        for observer in self._active:
            self.allocator.detach_observer(observer)
        payload = {
            "format": SESSION_SNAPSHOT_FORMAT,
            "version": SESSION_SNAPSHOT_VERSION,
            "label": self.label,
            "allocator": self.allocator,
            "observers": observers,
            "finish_pending": self.finish_pending,
            "requests_applied": self.requests_applied,
            "moves_applied": self.allocator.stats.total_moves - self._moves_before,
            "flushes_applied": self.allocator.stats.flushes - self._flushes_before,
            "elapsed_seconds": self._elapsed,
        }
        try:
            write_snapshot(path, payload)
        finally:
            for observer in self._active:
                self.allocator.attach_observer(observer)
        return {
            "path": str(path),
            "requests_applied": payload["requests_applied"],
            "observers": len(observers),
        }

    @classmethod
    def restore(cls, path) -> "EngineSession":
        """Reopen a session from a :meth:`snapshot` file.

        The allocator (with its full stats) and the snapshotable observers
        come back pickled; the session counters continue from the snapshot
        point, so :meth:`close` reports totals spanning the crash.  The
        restored session is already open — observers are *re-attached*
        without re-running ``on_attach`` (which would reset their state).
        """
        payload = read_snapshot(path)
        if payload.get("format") != SESSION_SNAPSHOT_FORMAT:
            raise ValueError(
                f"{path}: not a session snapshot "
                f"(format {payload.get('format')!r})"
            )
        session = cls(
            payload["allocator"],
            payload.get("observers", ()),
            finish_pending=payload.get("finish_pending", True),
            label=payload.get("label", "session"),
        )
        session._telemetry = get_telemetry()
        session._active = [obs for obs in session.observers if needs_events(obs)]
        for observer in session._active:
            session.allocator.attach_observer(observer)
        stats = session.allocator.stats
        session._requests_before = stats.requests - payload["requests_applied"]
        session._moves_before = stats.total_moves - payload.get("moves_applied", 0)
        session._flushes_before = stats.flushes - payload.get("flushes_applied", 0)
        session._elapsed = payload.get("elapsed_seconds", 0.0)
        session._opened = True
        return session

    # ------------------------------------------------------------ finalizers
    def abort(self, error: BaseException) -> None:
        """Run the abort semantics of a raising replay (idempotent).

        Exactly the old engine's except-path: record the abort against the
        ``engine.replay`` span, give every observer its ``on_abort`` (one
        observer's cleanup failing must neither starve the others of theirs
        nor replace the original error), then detach the active observers.
        """
        if self._finalized or not self._opened:
            return
        self._finalized = True
        allocator = self.allocator
        self._telemetry.abort("engine.replay", error)
        for observer in self.observers:
            try:
                observer.on_abort(allocator, error)
            except Exception:
                pass
        for observer in self._active:
            allocator.detach_observer(observer)

    def close(self, trace: Any = None) -> "EngineRun":
        """Finish the session and return its :class:`EngineRun`.

        Drives pending deamortized work to completion (when
        ``finish_pending``), detaches the active observers, runs
        ``on_finish`` for all of them, and pushes the telemetry counters —
        the exact tail of the old ``SimulationEngine.run``.  A raising
        flush takes the abort path (observers see ``on_abort``) and
        re-raises, as it always did.

        ``trace`` is what the run was fed, recorded on the returned
        :class:`EngineRun` (batch callers can leave it ``None``).
        """
        self._require_open()
        allocator = self.allocator
        telemetry = self._telemetry
        try:
            if self.finish_pending and hasattr(allocator, "finish_pending_work"):
                started = time.perf_counter()
                try:
                    with telemetry.span("engine.flush_pending"):
                        allocator.finish_pending_work()
                finally:
                    self._elapsed += time.perf_counter() - started
        except BaseException as error:
            self.abort(error)
            raise
        self._finalized = True
        for observer in self._active:
            allocator.detach_observer(observer)
        with telemetry.span("engine.finish"):
            for observer in self.observers:
                observer.on_finish(allocator)
        stats = allocator.stats
        requests = stats.requests - self._requests_before
        elapsed = self._elapsed
        if telemetry.enabled:
            telemetry.add("engine.replays")
            telemetry.add("engine.requests", requests)
            telemetry.add("engine.moves", stats.total_moves - self._moves_before)
            telemetry.add("engine.flushes", stats.flushes - self._flushes_before)
            if elapsed > 0:
                telemetry.gauge("engine.requests_per_sec", round(requests / elapsed, 1))
            telemetry.gauge("engine.elapsed_seconds", round(elapsed, 6))
        from repro.engine.engine import EngineRun

        return EngineRun(
            allocator=allocator,
            trace=trace if trace is not None else self.label,
            requests=requests,
            elapsed_seconds=elapsed,
            observers=self.observers,
        )

    # -------------------------------------------------------- context manager
    def __enter__(self) -> "EngineSession":
        if not self._opened:
            self.open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._finalized:
            return
        if exc_type is None:
            self.close()
        else:
            self.abort(exc)
