"""Observer-based simulation engine.

The one instrumentation seam shared by the metrics collector, the experiment
harness, and the campaign executor: replay a trace through an allocator with
pluggable :class:`Observer` instances.  See ``README.md`` ("Architecture")
for a worked example of writing a custom observer.
"""

from repro.engine.engine import EngineRun, Replayable, SimulationEngine, replay
from repro.engine.observers import (
    EVENT_HOOKS,
    OBSERVER_KINDS,
    CostObserver,
    DeviceObserver,
    FootprintSeriesObserver,
    HistoryObserver,
    MetricsObserver,
    Observer,
    build_observer,
    needs_events,
)

__all__ = [
    "EVENT_HOOKS",
    "OBSERVER_KINDS",
    "CostObserver",
    "DeviceObserver",
    "EngineRun",
    "FootprintSeriesObserver",
    "HistoryObserver",
    "MetricsObserver",
    "Observer",
    "Replayable",
    "SimulationEngine",
    "build_observer",
    "needs_events",
    "replay",
]
