"""Observer-based simulation engine.

The one instrumentation seam shared by the metrics collector, the experiment
harness, and the campaign executor: replay a trace through an allocator with
pluggable :class:`Observer` instances.  See ``README.md`` ("Analytics &
observers") for the registered observer kinds and a worked example of
writing a custom observer.
"""

from repro.engine.engine import EngineRun, Replayable, SimulationEngine, replay
from repro.engine.observers import (
    EVENT_HOOKS,
    OBSERVER_KINDS,
    CostObserver,
    DeviceObserver,
    FootprintSeriesObserver,
    GapHistogramObserver,
    HistoryObserver,
    MetricsObserver,
    Observer,
    PerClassOccupancyObserver,
    SampledSeriesObserver,
    TraceRecorderObserver,
    build_observer,
    needs_events,
)
from repro.engine.analytics import (
    TraceAnalytics,
    TraceAnalyticsObserver,
    analyze_source,
    percentile,
    size_histogram,
    size_histogram_from_counts,
)

# The analytics observer lives in repro.engine.analytics (which itself
# imports the Observer base class), so it registers here rather than in
# repro.engine.observers.
OBSERVER_KINDS["trace_analytics"] = TraceAnalyticsObserver

__all__ = [
    "EVENT_HOOKS",
    "OBSERVER_KINDS",
    "CostObserver",
    "DeviceObserver",
    "EngineRun",
    "FootprintSeriesObserver",
    "GapHistogramObserver",
    "HistoryObserver",
    "MetricsObserver",
    "Observer",
    "PerClassOccupancyObserver",
    "Replayable",
    "SampledSeriesObserver",
    "SimulationEngine",
    "TraceAnalytics",
    "TraceAnalyticsObserver",
    "TraceRecorderObserver",
    "analyze_source",
    "build_observer",
    "needs_events",
    "percentile",
    "replay",
    "size_histogram",
    "size_histogram_from_counts",
]
