"""Observer-based simulation engine.

The one instrumentation seam shared by the metrics collector, the experiment
harness, and the campaign executor: replay a trace through an allocator with
pluggable :class:`Observer` instances.  See ``README.md`` ("Analytics &
observers") for the registered observer kinds and a worked example of
writing a custom observer.
"""

from repro.engine.engine import EngineRun, Replayable, SimulationEngine, replay
from repro.engine.session import EngineSession, SessionStateError
from repro.engine.observers import (
    EVENT_HOOKS,
    OBSERVER_KINDS,
    CostObserver,
    DeviceObserver,
    FootprintSeriesObserver,
    GapHistogramObserver,
    HistoryObserver,
    MetricsObserver,
    Observer,
    PerClassOccupancyObserver,
    SampledSeriesObserver,
    ShardContext,
    TraceRecorderObserver,
    build_observer,
    needs_events,
    planned_stride,
)
from repro.engine.analytics import (
    TraceAnalytics,
    TraceAnalyticsObserver,
    analyze_source,
    percentile,
    size_histogram,
    size_histogram_from_counts,
)
from repro.engine.parallel import (
    SerialFallbackWarning,
    ShardedRun,
    analyze_trace_parallel,
    replay_unshardable_reason,
    run_replay_sharded,
    shard_plan,
    unmergeable_observers,
)

# The analytics observer lives in repro.engine.analytics (which itself
# imports the Observer base class), so it registers here rather than in
# repro.engine.observers.
OBSERVER_KINDS["trace_analytics"] = TraceAnalyticsObserver

__all__ = [
    "EVENT_HOOKS",
    "OBSERVER_KINDS",
    "CostObserver",
    "DeviceObserver",
    "EngineRun",
    "EngineSession",
    "FootprintSeriesObserver",
    "GapHistogramObserver",
    "HistoryObserver",
    "MetricsObserver",
    "Observer",
    "PerClassOccupancyObserver",
    "Replayable",
    "SampledSeriesObserver",
    "SerialFallbackWarning",
    "SessionStateError",
    "ShardContext",
    "ShardedRun",
    "SimulationEngine",
    "TraceAnalytics",
    "TraceAnalyticsObserver",
    "TraceRecorderObserver",
    "analyze_source",
    "analyze_trace_parallel",
    "build_observer",
    "needs_events",
    "percentile",
    "planned_stride",
    "replay",
    "replay_unshardable_reason",
    "run_replay_sharded",
    "shard_plan",
    "size_histogram",
    "size_histogram_from_counts",
    "unmergeable_observers",
]
