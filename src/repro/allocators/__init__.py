"""Baseline allocators the paper compares against (explicitly or implicitly).

Non-moving allocators (the classical *memory allocation* problem, whose
footprint competitive ratio is provably logarithmic):

* :class:`FirstFitAllocator`, :class:`BestFitAllocator`,
  :class:`NextFitAllocator`, :class:`WorstFitAllocator` — free-list policies.
* :class:`BuddyAllocator` — power-of-two buddy system (Knowlton 1965).
* :class:`AppendOnlyAllocator` — never reuses space at all (worst case).

Moving baselines from the paper's introduction and Section 2 intuition:

* :class:`LoggingCompactingReallocator` — log-structured allocation with full
  compaction when the footprint reaches ``2V``; ``(2, 2)``-competitive for
  linear costs but pays ``Theta(Delta)`` per deletion for constant costs.
* :class:`SizeClassGapReallocator` — the constant-reallocation-cost scheme of
  Bender et al. 2009 (objects grouped by power-of-two class with a gap per
  class); ``O(1)`` amortized moves but ``Theta(log Delta)``-competitive in
  moved volume, hence for linear costs.
* :class:`IdealPackingReallocator` — keeps the layout perfectly packed by
  moving whatever it takes (footprint exactly ``V``, unbounded move cost);
  the footprint oracle used as the denominator in competitive ratios.
"""

from repro.allocators.free_list import (
    FreeListAllocator,
    FirstFitAllocator,
    BestFitAllocator,
    NextFitAllocator,
    WorstFitAllocator,
    AppendOnlyAllocator,
)
from repro.allocators.buddy import BuddyAllocator
from repro.allocators.logging_compact import LoggingCompactingReallocator
from repro.allocators.size_class_gap import SizeClassGapReallocator
from repro.allocators.oracle import IdealPackingReallocator

BASELINE_ALLOCATORS = (
    FirstFitAllocator,
    BestFitAllocator,
    NextFitAllocator,
    WorstFitAllocator,
    BuddyAllocator,
    AppendOnlyAllocator,
    LoggingCompactingReallocator,
    SizeClassGapReallocator,
)

__all__ = [
    "FreeListAllocator",
    "FirstFitAllocator",
    "BestFitAllocator",
    "NextFitAllocator",
    "WorstFitAllocator",
    "AppendOnlyAllocator",
    "BuddyAllocator",
    "LoggingCompactingReallocator",
    "SizeClassGapReallocator",
    "IdealPackingReallocator",
    "BASELINE_ALLOCATORS",
]
