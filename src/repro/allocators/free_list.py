"""Classical non-moving allocators built on an explicit free list.

These implement the *memory allocation* problem the paper contrasts with:
once placed, an object never moves, so the only lever is which free gap to
choose.  The footprint competitive ratio of every such policy is
``Omega(log)`` in the worst case (Luby, Naor and Orda 1996), which experiment
E3 demonstrates against the cost-oblivious reallocator.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Tuple

from repro.core.base import Allocator
from repro.storage.extent import Extent


class FreeListAllocator(Allocator):
    """Base class for free-list policies; subclasses pick the gap.

    The free list holds maximal free extents *below* the high-water mark in
    address order.  Inserts either reuse a gap (per policy) or extend the
    high-water mark; deletes return the extent to the free list and coalesce.
    """

    name = "free-list"
    supports_reallocation = False

    def __init__(self, trace: bool = False, audit: bool = True) -> None:
        super().__init__(trace=trace, audit=audit)
        self._free: List[Extent] = []  # sorted by start address
        self._high_water = 0

    # ----------------------------------------------------------- policy hook
    def _choose_gap(self, size: int) -> Optional[int]:
        """Return the index into the free list to use, or None to extend."""
        raise NotImplementedError

    # -------------------------------------------------------------- requests
    def _do_insert(self, name: Hashable, size: int) -> None:
        index = self._choose_gap(size)
        if index is None:
            address = self._high_water
            self._high_water += size
        else:
            gap = self._free[index]
            address = gap.start
            if gap.length == size:
                del self._free[index]
            else:
                self._free[index] = Extent(gap.start + size, gap.length - size)
        self._place_object(name, size, address, reason="insert")

    def _do_delete(self, name: Hashable, size: int) -> None:
        extent = self._free_object(name)
        self._release(extent)

    # ------------------------------------------------------------- free list
    def _release(self, extent: Extent) -> None:
        """Insert ``extent`` into the free list, coalescing with neighbours."""
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid].start < extent.start:
                lo = mid + 1
            else:
                hi = mid
        start, end = extent.start, extent.end
        # Coalesce with the predecessor and successor where adjacent.
        if lo > 0 and self._free[lo - 1].end == start:
            start = self._free[lo - 1].start
            del self._free[lo - 1]
            lo -= 1
        if lo < len(self._free) and self._free[lo].start == end:
            end = self._free[lo].end
            del self._free[lo]
        if end == self._high_water:
            # Shrink the high-water mark instead of keeping a trailing gap.
            self._high_water = start
        else:
            self._free.insert(lo, Extent(start, end - start))

    def free_volume(self) -> int:
        """Total free space below the high-water mark."""
        return sum(gap.length for gap in self._free)

    @property
    def high_water(self) -> int:
        return self._high_water


class FirstFitAllocator(FreeListAllocator):
    """Use the lowest-addressed gap that fits."""

    name = "first-fit"

    def _choose_gap(self, size: int) -> Optional[int]:
        for index, gap in enumerate(self._free):
            if gap.length >= size:
                return index
        return None


class BestFitAllocator(FreeListAllocator):
    """Use the smallest gap that fits (ties broken by address)."""

    name = "best-fit"

    def _choose_gap(self, size: int) -> Optional[int]:
        best: Optional[int] = None
        best_length = None
        for index, gap in enumerate(self._free):
            if gap.length >= size and (best_length is None or gap.length < best_length):
                best = index
                best_length = gap.length
        return best


class WorstFitAllocator(FreeListAllocator):
    """Use the largest gap that fits."""

    name = "worst-fit"

    def _choose_gap(self, size: int) -> Optional[int]:
        worst: Optional[int] = None
        worst_length = -1
        for index, gap in enumerate(self._free):
            if gap.length >= size and gap.length > worst_length:
                worst = index
                worst_length = gap.length
        return worst


class NextFitAllocator(FreeListAllocator):
    """First Fit with a roving pointer that resumes where the last search ended."""

    name = "next-fit"

    def __init__(self, trace: bool = False, audit: bool = True) -> None:
        super().__init__(trace=trace, audit=audit)
        self._rover = 0

    def _choose_gap(self, size: int) -> Optional[int]:
        count = len(self._free)
        if count == 0:
            return None
        start = min(self._rover, count - 1)
        for offset in range(count):
            index = (start + offset) % count
            if self._free[index].length >= size:
                self._rover = index
                return index
        return None


class AppendOnlyAllocator(FreeListAllocator):
    """Never reuses freed space: the worst-case non-moving baseline.

    Models a log-structured store without any compaction; its footprint
    equals the total volume ever allocated.
    """

    name = "append-only"

    def _choose_gap(self, size: int) -> Optional[int]:
        return None

    def _do_delete(self, name: Hashable, size: int) -> None:
        # Drop the extent without returning it to any free list.
        self._free_object(name)
