"""Classical non-moving allocators built on an indexed free list.

These implement the *memory allocation* problem the paper contrasts with:
once placed, an object never moves, so the only lever is which free gap to
choose.  The footprint competitive ratio of every such policy is
``Omega(log)`` in the worst case (Luby, Naor and Orda 1996), which experiment
E3 demonstrates against the cost-oblivious reallocator.

That lower bound is about footprint, not time: the gap *selection* itself is
O(log n) per request here.  The gaps live in a
:class:`~repro.storage.gap_index.GapIndex` — an address-ordered treap with
subtree max lengths plus a size-ordered secondary index — so First Fit, Best
Fit and Worst Fit are single index queries and coalescing on delete is a
pair of neighbour probes, instead of the linear scans a flat list needs.
Every policy's choice is identical to what the scan would have picked.
"""

from __future__ import annotations

from typing import Hashable, List, Optional

from repro.core.base import Allocator
from repro.storage.extent import Extent
from repro.storage.gap_index import GapIndex


class FreeListAllocator(Allocator):
    """Base class for free-list policies; subclasses pick the gap.

    The free list holds maximal free extents *below* the high-water mark in
    an address/size-indexed :class:`GapIndex`.  Inserts either reuse a gap
    (per policy) or extend the high-water mark; deletes return the extent to
    the index and coalesce with adjacent gaps.
    """

    name = "free-list"
    supports_reallocation = False

    def __init__(self, trace: bool = False, audit: bool = True) -> None:
        super().__init__(trace=trace, audit=audit)
        self._gaps = GapIndex()
        self._high_water = 0

    # ----------------------------------------------------------- policy hook
    def _select_gap(self, size: int) -> Optional[int]:
        """Return the start address of the gap to use, or None to extend."""
        raise NotImplementedError

    # -------------------------------------------------------------- requests
    def _do_insert(self, name: Hashable, size: int) -> None:
        address = self._select_gap(size)
        extended = address is None
        if extended:
            address = self._high_water
            self._high_water += size
        else:
            self._gaps.take(address, size)
        try:
            self._place_object(name, size, address, reason="insert")
        except BaseException:
            # Keep the free list and high-water mark in step with the
            # rollback Allocator._serve_insert performs on the address
            # space, so the failed insert can be retried.
            if extended:
                self._high_water = address
            else:
                self._release(Extent(address, size))
            raise

    def _do_delete(self, name: Hashable, size: int) -> None:
        extent = self._free_object(name)
        self._release(extent)

    # ------------------------------------------------------------- free list
    def _release(self, extent: Extent) -> None:
        """Return ``extent`` to the free list, coalescing with neighbours."""
        merged = self._gaps.absorb_adjacent(extent)
        if merged.end == self._high_water:
            # Shrink the high-water mark instead of keeping a trailing gap.
            self._high_water = merged.start
        else:
            self._gaps.add(merged)

    def free_extents(self) -> List[Extent]:
        """The current gaps below the high-water mark, in address order."""
        return self._gaps.free_extents()

    def free_volume(self) -> int:
        """Total free space below the high-water mark (O(1) running counter)."""
        return self._gaps.total_free

    @property
    def high_water(self) -> int:
        return self._high_water


class FirstFitAllocator(FreeListAllocator):
    """Use the lowest-addressed gap that fits."""

    name = "first-fit"

    def _select_gap(self, size: int) -> Optional[int]:
        return self._gaps.first_fit(size)


class BestFitAllocator(FreeListAllocator):
    """Use the smallest gap that fits (ties broken by address)."""

    name = "best-fit"

    def _select_gap(self, size: int) -> Optional[int]:
        return self._gaps.best_fit(size)


class WorstFitAllocator(FreeListAllocator):
    """Use the largest gap that fits."""

    name = "worst-fit"

    def _select_gap(self, size: int) -> Optional[int]:
        return self._gaps.worst_fit(size)


class NextFitAllocator(FreeListAllocator):
    """First Fit with a roving pointer that resumes where the last search ended.

    The rover is a *position* in the address-ordered gap list (exactly the
    index the flat-list implementation kept), so every placement matches
    the seed scan request for request — but the probe itself is a
    rank-bounded :meth:`GapIndex.next_fit` query (O(log n), with one extra
    descent on wrap-around) instead of a linear walk of the gap list.
    """

    name = "next-fit"

    def __init__(self, trace: bool = False, audit: bool = True) -> None:
        super().__init__(trace=trace, audit=audit)
        self._rover = 0

    def _select_gap(self, size: int) -> Optional[int]:
        found = self._gaps.next_fit(size, self._rover)
        if found is None:
            return None
        self._rover, start = found
        return start


class AppendOnlyAllocator(FreeListAllocator):
    """Never reuses freed space: the worst-case non-moving baseline.

    Models a log-structured store without any compaction; its footprint
    equals the total volume ever allocated.
    """

    name = "append-only"

    def _select_gap(self, size: int) -> Optional[int]:
        return None

    def _do_delete(self, name: Hashable, size: int) -> None:
        # Drop the extent without returning it to any free list.
        self._free_object(name)
