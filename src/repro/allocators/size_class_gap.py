"""The constant-reallocation-cost scheme sketched in the paper's Section 2.

"Conceptually, round the object sizes up to the next power of 2 to form size
classes ... group the objects by increasing size.  Between the i-th and
(i+1)-st size class, there is either a gap of size 2^i or no gap.  To insert
an object of size 2^i, put the object into the gap after the i-th size class
if one exists, or displace a larger object to make space otherwise; then
recursively reinsert the larger object."  (Bender, Fekete, Kamphans, Schweer
2009.)

The amortized number of moves per insert is ``O(1)`` and the moved *volume*
per insert forms a geometric series over the larger classes, so the scheme is
excellent for constant (seek-dominated) costs — but for linear costs it is
only ``(O(1), Theta(log Delta))``-competitive, which experiment E3
reproduces.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.core.base import Allocator


def _class_of(size: int) -> int:
    """Size class = smallest k with 2**k >= size (0-indexed here)."""
    return max(0, (size - 1).bit_length())


class SizeClassGapReallocator(Allocator):
    """Objects grouped by rounded size class with per-class slack.

    Every object of class ``k`` occupies a rounded slot of exactly ``2**k``
    units (the object's data sits at the slot's start).  Nonempty classes are
    laid out in increasing class order; the free space between a class's last
    slot and the next class's first slot absorbs insertions without movement.
    When there is no such space, the first slot of the next occupied class is
    stolen: its object is displaced and recursively reinserted into its own
    class, so an insert moves at most one object per larger size class.
    """

    name = "size-class-gap"
    supports_reallocation = True

    def __init__(self, trace: bool = False, audit: bool = True) -> None:
        super().__init__(trace=trace, audit=audit)
        #: class -> ordered list of object names occupying the zone's slots.
        self._zones: Dict[int, List[Hashable]] = {}
        #: class -> start address of the zone's first slot.
        self._zone_start: Dict[int, int] = {}

    # --------------------------------------------------------------- helpers
    def _zone_end(self, cls: int) -> int:
        return self._zone_start[cls] + len(self._zones[cls]) * (1 << cls)

    def _next_class(self, cls: int) -> Optional[int]:
        larger = [c for c in self._zones if c > cls]
        return min(larger) if larger else None

    def _prev_class(self, cls: int) -> Optional[int]:
        smaller = [c for c in self._zones if c < cls]
        return max(smaller) if smaller else None

    def reserved_volume(self) -> int:
        """Volume including rounding of every object to its power-of-two slot."""
        return sum(len(names) * (1 << cls) for cls, names in self._zones.items())

    # -------------------------------------------------------------- requests
    def _do_insert(self, name: Hashable, size: int) -> None:
        self._insert_into_class(name, size, _class_of(size), is_new=True)

    def _do_delete(self, name: Hashable, size: int) -> None:
        cls = _class_of(size)
        zone = self._zones[cls]
        index = zone.index(name)
        extent = self.space.extent_of(name)
        last = zone[-1]
        if last != name:
            # Keep the zone's slots contiguous: the last object backfills the
            # vacated slot (one move, the scheme's only per-delete work).
            zone[index] = last
            zone.pop()
            self._free_object(name)
            self._move_object(last, extent.start, reason="backfill")
        else:
            zone.pop()
            self._free_object(name)
        if not zone:
            del self._zones[cls]
            del self._zone_start[cls]

    # --------------------------------------------------------------- insert
    def _insert_into_class(self, name: Hashable, size: int, cls: int, is_new: bool) -> None:
        if cls not in self._zones:
            previous = self._prev_class(cls)
            start = self._zone_end(previous) if previous is not None else 0
            self._zones[cls] = []
            self._zone_start[cls] = start
        slot = 1 << cls
        end = self._zone_end(cls)
        nxt = self._next_class(cls)
        if nxt is not None and self._zone_start[nxt] - end < slot:
            # No room before the next class: displace its first object and
            # recursively reinsert it into its own class, which frees a
            # 2**nxt slot right where we need the space.
            victim = self._zones[nxt].pop(0)
            self._zone_start[nxt] += 1 << nxt
            if not self._zones[nxt]:
                # Keep the (momentarily empty) zone registered so the victim
                # returns to it at its advanced position.
                pass
            self._insert_into_class(victim, self._sizes[victim], nxt, is_new=False)
        address = end
        self._zones[cls].append(name)
        if is_new:
            self._place_object(name, size, address, reason="insert")
        else:
            self._move_object(name, address, reason="displace")
