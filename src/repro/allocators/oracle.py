"""The footprint oracle: always perfectly packed.

``IdealPackingReallocator`` keeps every live object packed into a prefix of
the address space with no holes at all, moving whatever is necessary after
every request.  Its footprint is therefore exactly ``V`` — the denominator of
the paper's footprint competitive ratio — while its reallocation cost is, of
course, unbounded relative to the allocation cost.  Experiments use it both
as the footprint baseline and as a vivid illustration of the trade-off the
cost-oblivious algorithms navigate.
"""

from __future__ import annotations

from typing import Dict, Hashable

from repro.core.base import Allocator


class IdealPackingReallocator(Allocator):
    """Maintains footprint exactly equal to the live volume at all times."""

    name = "ideal-packing"
    supports_reallocation = True

    def __init__(self, trace: bool = False, audit: bool = True) -> None:
        super().__init__(trace=trace, audit=audit)
        self._order: Dict[Hashable, None] = {}
        self._end = 0

    def _do_insert(self, name: Hashable, size: int) -> None:
        # New objects append to the packed prefix: no moves needed.
        self._place_object(name, size, self._end, reason="insert")
        self._order[name] = None
        self._end += size

    def _do_delete(self, name: Hashable, size: int) -> None:
        removed = self._free_object(name)
        del self._order[name]
        # Slide every object that sat after the hole left by ``size`` units.
        cursor = removed.start
        for other in self._order:
            extent = self.space.extent_of(other)
            if extent.start > removed.start:
                self._move_object(other, cursor, reason="repack")
                cursor += extent.length
            else:
                cursor = max(cursor, extent.end)
        self._end -= size
