"""The logging-and-compacting reallocator from the paper's Section 2 intuition.

Objects are appended left to right; deletions leave holes; whenever the
footprint reaches ``threshold * V`` the whole structure is compacted (every
object slides left, preserving order).  For a *linear* cost function this is
``(2, 2)``-competitive — the ``V`` worth of deleted volume since the last
compaction pays for moving the surviving ``V``.  For a *constant* (seek-
dominated) cost function it is terrible: deleting a few huge objects forces
the movement of arbitrarily many small ones, i.e. ``Theta(Delta)`` amortized
cost per deletion — exactly the behaviour experiment E3 exhibits.
"""

from __future__ import annotations

from typing import Dict, Hashable

from repro.core.base import Allocator


class LoggingCompactingReallocator(Allocator):
    """Append-only allocation with periodic full compaction.

    Parameters
    ----------
    threshold:
        Compaction is triggered when ``footprint > threshold * V`` after a
        deletion (and on insertion when the bump pointer passes it).  The
        paper's analysis uses 2.
    """

    name = "logging-compact"
    supports_reallocation = True

    def __init__(self, threshold: float = 2.0, trace: bool = False, audit: bool = True) -> None:
        if threshold <= 1.0:
            raise ValueError("threshold must exceed 1")
        super().__init__(trace=trace, audit=audit)
        self.threshold = threshold
        self._bump = 0
        #: Insertion order of live objects (dict preserves ordering).
        self._order: Dict[Hashable, None] = {}

    def _do_insert(self, name: Hashable, size: int) -> None:
        self._maybe_compact(extra=size)
        self._place_object(name, size, self._bump, reason="insert")
        self._order[name] = None
        self._bump += size

    def _do_delete(self, name: Hashable, size: int) -> None:
        self._free_object(name)
        del self._order[name]
        if self.space.footprint() < self._bump:
            self._bump = self.space.footprint()
        self._maybe_compact(extra=0)

    def _maybe_compact(self, extra: int) -> None:
        volume = self.volume + extra
        if volume == 0:
            self._bump = 0
            return
        if self._bump + extra <= self.threshold * volume:
            return
        cursor = 0
        for name in self._order:
            self._move_object(name, cursor, reason="compact")
            cursor += self._sizes[name]
        self._bump = cursor
