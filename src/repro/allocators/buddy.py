"""Binary buddy allocator (Knowlton 1965).

Sizes are rounded up to powers of two; blocks split recursively and merge
with their "buddy" when both halves are free.  A classical non-moving
allocator with bounded external fragmentation but up to 2x internal
fragmentation — a useful middle ground between the free-list policies and
the reallocating algorithms in experiment E3.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Set

from repro.core.base import Allocator


def _order_of(size: int) -> int:
    """Smallest k with 2**k >= size."""
    return max(0, (size - 1).bit_length())


class BuddyAllocator(Allocator):
    """Power-of-two buddy system over a growable arena.

    The arena grows by appending top-level blocks of ``2**max_order`` units
    whenever no free block can satisfy a request, so the address space is
    unbounded like the other allocators here.
    """

    name = "buddy"
    supports_reallocation = False

    def __init__(self, max_order: int = 12, trace: bool = False, audit: bool = True) -> None:
        if max_order < 0:
            raise ValueError("max_order must be nonnegative")
        super().__init__(trace=trace, audit=audit)
        self.max_order = max_order
        #: free[k] = set of start addresses of free blocks of size 2**k.
        self._free: Dict[int, Set[int]] = {k: set() for k in range(max_order + 1)}
        self._arena_end = 0
        #: Block order actually reserved for each live object.
        self._orders: Dict[Hashable, int] = {}

    # ---------------------------------------------------------------- sizing
    def reserved_volume(self) -> int:
        """Volume including internal fragmentation (rounded-up blocks)."""
        return sum(1 << order for order in self._orders.values())

    def _grow_arena(self, order: int) -> None:
        """Append a fresh, aligned top-level block that can hold ``order``.

        Top-level blocks are aligned to their own size so the xor-based buddy
        arithmetic below is valid inside each block; blocks from different
        growth steps are never merged with each other.
        """
        top = max(order, self.max_order)
        block = 1 << top
        start = (self._arena_end + block - 1) // block * block
        self._arena_end = start + block
        self._free.setdefault(top, set()).add(start)

    def _allocate_block(self, order: int) -> int:
        """Return the start of a free block of exactly ``order``."""
        available = [
            k for k in sorted(self._free) if k >= order and self._free[k]
        ]
        if not available:
            self._grow_arena(order)
            available = [
                k for k in sorted(self._free) if k >= order and self._free[k]
            ]
        k = available[0]
        start = min(self._free[k])
        self._free[k].discard(start)
        # Split down to the requested order, freeing the upper halves.
        while k > order:
            k -= 1
            buddy = start + (1 << k)
            self._free.setdefault(k, set()).add(buddy)
        return start

    def _release_block(self, start: int, order: int) -> None:
        """Return a block to the free lists, merging buddies upward.

        Merging stops at ``max_order`` (the size of a top-level growth block)
        so blocks belonging to different growth steps never coalesce.
        """
        k = order
        while k < self.max_order:
            buddy = start ^ (1 << k)
            bucket = self._free.setdefault(k, set())
            if buddy in bucket:
                bucket.discard(buddy)
                start = min(start, buddy)
                k += 1
            else:
                break
        self._free.setdefault(k, set()).add(start)

    # -------------------------------------------------------------- requests
    def _do_insert(self, name: Hashable, size: int) -> None:
        order = _order_of(size)
        address = self._allocate_block(order)
        self._orders[name] = order
        self._place_object(name, size, address, reason="insert")

    def _do_delete(self, name: Hashable, size: int) -> None:
        extent = self._free_object(name)
        order = self._orders.pop(name)
        self._release_block(extent.start, order)
