"""The injectable wall clock behind lease-TTL checks.

Lease expiry (see :mod:`repro.campaign.queue`) compares *now* against a
lease file's mtime.  Both sides of that comparison come from host clocks —
the claimer's ``time.time()`` and the filesystem's stamp — so cross-host
clock skew can make a live lease look expired.  Routing every TTL check
through :func:`get_clock` gives the queue one seam to (a) add a skew
tolerance against, (b) let the fault injector :meth:`~LeaseClock.skew` the
clock deterministically in chaos schedules, and (c) let tests pin time
without ``os.utime`` gymnastics.

Module-level imports must stay stdlib-only: this module is imported by the
queue and by :mod:`repro.faults.injector`, both of which sit under hot
paths.
"""

from __future__ import annotations

import time


class LeaseClock:
    """``time.time()`` plus an adjustable offset (seconds).

    The offset models a skewed host clock: fault schedules shift it with
    :meth:`skew` and the queue's expiry checks read it back through
    :meth:`now`.  A real deployment never touches the offset.
    """

    __slots__ = ("offset",)

    def __init__(self) -> None:
        self.offset = 0.0

    def now(self) -> float:
        return time.time() + self.offset

    def skew(self, seconds: float) -> None:
        """Shift this clock by ``seconds`` (positive = clock runs ahead)."""
        self.offset += float(seconds)


_CLOCK = LeaseClock()


def get_clock() -> LeaseClock:
    """The process-current lease clock (offset 0 unless skewed)."""
    return _CLOCK


def reset_clock() -> None:
    """Zero the clock offset (tests, and fault-plan deactivation)."""
    _CLOCK.offset = 0.0
