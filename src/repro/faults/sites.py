"""The registry of named fault sites.

A *site* is one durability-critical operation that a
:func:`~repro.faults.injector.fault_point` (or
:func:`~repro.faults.injector.fault_write`) hook guards.  Names follow
``<layer>.<component>.<operation>``: the first segment is the subsystem
(``queue``, ``artifact``, ``trace``, ``checkpoint``), the rest walks down
to the exact cut.  Fault-plan rules match sites with ``fnmatch`` globs, so
``queue.lease.*`` arms every lease operation and ``*`` arms everything.

This registry is documentation plus the enumeration source for the chaos
harness (``repro chaos sites`` and the crash-at-every-site battery); the
hooks themselves pass plain strings and do not consult it, so the disabled
fast path stays a dictionary-free no-op.
"""

from __future__ import annotations

from typing import Dict

#: site name -> where it fires, in one line.
SITES: Dict[str, str] = {
    "queue.lease.claim": "before the O_EXCL lease-file create that claims a cell",
    "queue.lease.write": "the write of the claim stamp into a fresh lease file",
    "queue.lease.heartbeat": "each heartbeat refresh of a held lease's mtime",
    "queue.lease.steal": "before the atomic rename that retires an expired lease",
    "queue.journal.append": "the fsync'd JSONL line appended per finished cell",
    "queue.journal.fsync": "between the journal line write and its fsync",
    "queue.dequeue": "before a finished cell's payload and lease are removed",
    "artifact.write.body": "while the .tmp sibling of an artifact is being written",
    "artifact.write.fsync": "between the .tmp body and its fsync",
    "artifact.write.replace": "between the fsync'd .tmp and the atomic os.replace",
    "trace.write.body": "a v2 binary-trace buffer flush (mid-body)",
    "trace.write.block": "a v3 binary-trace block write (mid-block)",
    "trace.write.trailer": "the END trailer / v3 footer write at trace close",
    "checkpoint.persist": "the checkpoint that persists the translation map",
    "checkpoint.snapshot": "the .tmp body write of a session snapshot file",
    "serve.accept": "before a new client connection is handed its session",
    "serve.batch.apply": "before a coalesced batch is applied to a tenant session",
    "serve.record.sync": "before a served batch's trace records are synced to disk",
    "serve.snapshot": "before a served session is snapshotted to disk",
}
