"""Bounded exponential backoff with deterministic jitter.

The queue worker survives transient ``OSError``\\ s (real or injected) by
routing claim / journal / dequeue operations through
:meth:`RetryPolicy.call`: up to ``max_attempts`` tries, sleeping an
exponentially growing, jittered, capped delay between them.  Jitter comes
from a seeded RNG so a chaos schedule's retry timing replays exactly.
Retries and total backoff time are counted into telemetry
(``faults.retries`` / ``faults.backoff_seconds``) so ``repro obs report``
can show how hard a worker had to fight.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Tuple, Type

from repro.obs.telemetry import get_telemetry


@dataclass
class RetryPolicy:
    """How many times to retry and how long to wait in between."""

    max_attempts: int = 5
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")

    def delays(self) -> Iterator[float]:
        """The sleep before each retry (``max_attempts - 1`` values)."""
        rng = random.Random(self.seed)
        delay = self.base_delay
        for _ in range(self.max_attempts - 1):
            yield min(self.max_delay, delay * (1.0 + self.jitter * rng.random()))
            delay *= self.multiplier

    def call(
        self,
        fn: Callable[..., Any],
        *args: Any,
        retry_on: Tuple[Type[BaseException], ...] = (OSError,),
        sleep: Callable[[float], None] = time.sleep,
        **kwargs: Any,
    ) -> Any:
        """Run ``fn(*args, **kwargs)``, retrying on ``retry_on``.

        Exceptions outside ``retry_on`` propagate immediately (a
        :class:`~repro.campaign.queue.QueueError` is a misuse, not a
        transient).  After the last attempt the final exception is
        re-raised unchanged, so callers' existing ``except OSError``
        handling sees the real error.
        """
        session = get_telemetry()
        for delay in self.delays():
            try:
                return fn(*args, **kwargs)
            except retry_on:
                if session.enabled:
                    session.add("faults.retries")
                    session.add("faults.backoff_seconds", delay)
                sleep(delay)
        # Final attempt: exhaustion lets the real exception propagate.
        return fn(*args, **kwargs)
