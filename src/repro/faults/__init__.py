"""Deterministic fault injection, retry policies, and the chaos harness.

Hot-path-safe pieces (everything the queue / artifact / trace layers
import) live in :mod:`~repro.faults.injector`, :mod:`~repro.faults.clock`,
and :mod:`~repro.faults.retry`, and are re-exported here.  The chaos
harness (:mod:`~repro.faults.chaos`) imports the campaign layer, so it is
deliberately *not* pulled in by this package import — ``from repro.faults
import chaos`` explicitly where needed.
"""

from repro.faults.clock import LeaseClock, get_clock, reset_clock
from repro.faults.injector import (
    ACTIONS,
    CRASH_EXIT_CODE,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    activate_plan,
    deactivate_faults,
    fault_point,
    fault_write,
    get_injector,
    inject,
)
from repro.faults.retry import RetryPolicy
from repro.faults.sites import SITES

__all__ = [
    "ACTIONS",
    "CRASH_EXIT_CODE",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "LeaseClock",
    "RetryPolicy",
    "SITES",
    "activate_plan",
    "deactivate_faults",
    "fault_point",
    "fault_write",
    "get_clock",
    "get_injector",
    "inject",
    "reset_clock",
]
