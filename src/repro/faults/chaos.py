"""The chaos harness: distributed sweeps under fault schedules.

One *schedule* is one :class:`~repro.faults.injector.FaultPlan` applied to
one distributed sweep of a spec.  The harness:

1. enqueues the spec into a fresh queue directory;
2. runs round 0 *faulted*: worker processes (and one merge attempt) with
   the plan armed — workers may crash mid-write, tear journal lines, see
   injected ``EIO``/``ENOSPC``, or run on a skewed clock;
3. force-expires the leases of the (now joined, possibly dead) workers and
   keeps running *clean* recovery rounds — drain, merge, re-enqueue
   errored cells — until the merge reports no pending cells and no errors;
4. checks the converged artifact against a fault-free baseline, comparing
   records with timing/host fields stripped.

Lease force-expiry is sound here because every worker the harness spawned
has been joined before it runs — any surviving lease belongs to a dead
process.  Real deployments rely on the TTL instead.

This module may import the campaign layer (it is *not* imported by
``repro.faults.__init__``, which the hot paths pull in).
"""

from __future__ import annotations

import multiprocessing
import os
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.campaign.artifacts import completed_records, load_results
from repro.campaign.executor import run_campaign
from repro.campaign.queue import (
    QueueError,
    enqueue_campaign,
    merge_queue,
    results_path,
    work_queue,
)
from repro.campaign.spec import CampaignSpec
from repro.faults.injector import FaultPlan, activate_plan
from repro.faults.retry import RetryPolicy
from repro.faults.sites import SITES

#: Fields that legitimately differ between two runs of the same cell.
VOLATILE_RECORD_FIELDS = (
    "elapsed_seconds",
    "resources",
    "telemetry",
    "profile",
    "worker",
    "resumed",
)

#: Short lease TTL for harness runs: workers are joined before recovery,
#: so the TTL only has to beat the force-expiry path racing nothing.
HARNESS_LEASE_TTL = 30.0

#: Bounded fast retries so injected transients are survived without
#: stretching test wall-clock.
HARNESS_RETRY = RetryPolicy(max_attempts=4, base_delay=0.01, max_delay=0.05, seed=0)


def comparable_records(records: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Strip the volatile fields so two runs' records can be compared."""
    return [
        {k: v for k, v in record.items() if k not in VOLATILE_RECORD_FIELDS}
        for record in records
    ]


def fault_free_baseline(
    spec: CampaignSpec, out_dir: Optional[Union[str, os.PathLike]] = None
) -> List[Dict[str, Any]]:
    """Run ``spec`` serially with no faults; optionally write its artifact."""
    result = run_campaign(spec)
    if out_dir is not None:
        from repro.campaign.artifacts import write_results

        write_results(result, out_dir)
    return comparable_records(result.records)


# ------------------------------------------------------------- plan builders
def single_fault_plans(
    sites: Optional[Iterable[str]] = None,
    actions: Sequence[str] = ("raise", "crash"),
) -> List[FaultPlan]:
    """One plan per (site, action): the systematic enumeration battery."""
    plans = []
    for site in sorted(sites if sites is not None else SITES):
        for action in actions:
            plans.append(FaultPlan(rules=[_rule(site, action)], seed=0))
    return plans


def seeded_plan(
    seed: int,
    sites: Optional[Sequence[str]] = None,
    max_rules: int = 3,
) -> FaultPlan:
    """A deterministic multi-fault schedule drawn from ``seed``."""
    pool = sorted(sites if sites is not None else SITES)
    rng = random.Random(seed)
    rules = []
    for _ in range(rng.randint(1, max_rules)):
        site = rng.choice(pool)
        action = rng.choice(("raise", "raise", "torn", "crash", "delay", "skew"))
        rules.append(_rule(site, action, rng))
    return FaultPlan(rules=rules, seed=seed)


def _rule(site: str, action: str, rng: Optional[random.Random] = None):
    from repro.faults.injector import FaultRule

    kwargs: Dict[str, Any] = {"site": site, "action": action, "times": 1}
    if rng is not None:
        kwargs["after"] = rng.randint(0, 1)
        kwargs["times"] = rng.randint(1, 2)
        if action == "raise":
            kwargs["error"] = rng.choice(("EIO", "ENOSPC"))
        elif action == "skew":
            kwargs["skew_seconds"] = rng.choice((-120.0, 120.0))
    if action == "delay":
        kwargs["delay_seconds"] = 0.01
    return FaultRule(**kwargs)


def plan_label(plan: FaultPlan) -> str:
    """A short filesystem-safe tag for one plan."""
    if len(plan.rules) == 1:
        rule = plan.rules[0]
        return f"{rule.site}.{rule.action}".replace("*", "any").replace("/", "_")
    return f"seed-{plan.seed}-x{len(plan.rules)}"


# ------------------------------------------------------------ schedule runner
@dataclass
class ScheduleResult:
    """What one chaos schedule produced."""

    label: str
    plan: FaultPlan
    directory: str
    rounds: int = 0
    worker_exits: List[int] = field(default_factory=list)
    faults_fired: int = 0
    converged: bool = False
    identical: bool = False
    artifact_ok: bool = True
    detail: str = ""

    @property
    def passed(self) -> bool:
        return self.converged and self.identical and self.artifact_ok


def force_expire_leases(directory: Union[str, os.PathLike]) -> int:
    """Backdate every lease to the epoch so the next claim steals it.

    Only sound when no spawned worker is still alive (the harness joins
    them first); returns the number of leases expired.
    """
    lease_dir = os.path.join(os.fspath(directory), "leases")
    expired = 0
    try:
        names = os.listdir(lease_dir)
    except OSError:
        return 0
    for name in names:
        if not name.endswith(".lease"):
            continue
        try:
            os.utime(os.path.join(lease_dir, name), (1, 1))
            expired += 1
        except OSError:
            pass
    return expired


def _chaos_worker_entry(
    directory: str, token: str, plan_dict: Dict[str, Any], lease_ttl: float
) -> None:
    """Worker process entry: arm the plan, drain until it can't."""
    activate_plan(FaultPlan.from_dict(plan_dict))
    try:
        work_queue(
            directory,
            token=token,
            lease_ttl=lease_ttl,
            retry=HARNESS_RETRY,
        )
    except (QueueError, OSError):
        pass  # a worker dying ugly is part of the schedule


def _chaos_merge_entry(directory: str, plan_dict: Dict[str, Any], lease_ttl: float) -> None:
    """Merge attempt under injection: exercises the artifact.write sites."""
    activate_plan(FaultPlan.from_dict(plan_dict))
    try:
        merge_queue(directory, lease_ttl=lease_ttl)
    except (QueueError, ValueError, OSError):
        pass


def _artifact_intact(directory: Union[str, os.PathLike]) -> bool:
    """``results.json`` must be absent or fully valid — never torn."""
    path = results_path(directory)
    if not os.path.exists(path):
        return True
    try:
        load_results(path)
    except (OSError, ValueError):
        return False
    return True


def run_schedule(
    spec: CampaignSpec,
    plan: FaultPlan,
    directory: Union[str, os.PathLike],
    baseline: List[Dict[str, Any]],
    workers: int = 1,
    lease_ttl: float = HARNESS_LEASE_TTL,
    max_rounds: int = 6,
) -> ScheduleResult:
    """Run one fault schedule to convergence; see the module docstring."""
    directory = os.fspath(directory)
    result = ScheduleResult(label=plan_label(plan), plan=plan, directory=directory)
    enqueue_campaign(spec, directory)
    plan_dict = plan.to_dict()
    context = multiprocessing.get_context()
    merged = None
    for round_number in range(max_rounds):
        result.rounds = round_number + 1
        if round_number == 0:
            processes = [
                context.Process(
                    target=_chaos_worker_entry,
                    args=(directory, f"chaos-w{rank}", plan_dict, lease_ttl),
                )
                for rank in range(max(1, workers))
            ]
            for process in processes:
                process.start()
            for process in processes:
                process.join()
            result.worker_exits = [process.exitcode or 0 for process in processes]
            force_expire_leases(directory)
            merge_attempt = context.Process(
                target=_chaos_merge_entry, args=(directory, plan_dict, lease_ttl)
            )
            merge_attempt.start()
            merge_attempt.join()
        else:
            try:
                work_queue(
                    directory,
                    token=f"recover-{round_number}",
                    lease_ttl=lease_ttl,
                    retry=HARNESS_RETRY,
                )
            except OSError:
                pass
        if not _artifact_intact(directory):
            result.artifact_ok = False
            result.detail = "results.json is torn/corrupt after the faulted round"
            return result
        force_expire_leases(directory)
        merged = merge_queue(directory, lease_ttl=lease_ttl)
        errors = merged.document.get("errors", 0)
        if not merged.pending and not errors:
            result.converged = True
            break
        if errors and not merged.pending:
            # Errored cells were dequeued; put them back for the next round.
            enqueue_campaign(spec, directory, completed=completed_records(merged.document))
    if not result.converged:
        pending = len(merged.pending) if merged is not None else -1
        errors = merged.document.get("errors", "?") if merged is not None else "?"
        result.detail = (
            f"did not converge in {max_rounds} round(s): "
            f"{pending} pending, {errors} error(s)"
        )
        return result
    got = comparable_records(merged.document.get("records", []))
    result.identical = got == baseline
    if not result.identical:
        result.detail = "converged records differ from the fault-free baseline"
    return result


@dataclass
class ChaosReport:
    """Every schedule's outcome for one ``repro chaos sweep`` invocation."""

    schedules: List[ScheduleResult] = field(default_factory=list)
    baseline_dir: Optional[str] = None

    @property
    def failed(self) -> List[ScheduleResult]:
        return [schedule for schedule in self.schedules if not schedule.passed]


def run_chaos(
    spec: CampaignSpec,
    plans: Sequence[FaultPlan],
    out_root: Union[str, os.PathLike],
    workers: int = 1,
    lease_ttl: float = HARNESS_LEASE_TTL,
    baseline: Optional[List[Dict[str, Any]]] = None,
    baseline_dir: Optional[Union[str, os.PathLike]] = None,
    progress=None,
) -> ChaosReport:
    """Run every plan as its own schedule under ``out_root``."""
    out_root = os.fspath(out_root)
    os.makedirs(out_root, exist_ok=True)
    if baseline is None:
        baseline_dir = baseline_dir or os.path.join(out_root, "baseline")
        baseline = fault_free_baseline(spec, baseline_dir)
    report = ChaosReport(
        baseline_dir=os.fspath(baseline_dir) if baseline_dir is not None else None
    )
    for index, plan in enumerate(plans):
        directory = os.path.join(out_root, f"schedule-{index:03d}-{plan_label(plan)}")
        schedule = run_schedule(
            spec, plan, directory, baseline, workers=workers, lease_ttl=lease_ttl
        )
        report.schedules.append(schedule)
        if progress is not None:
            progress(schedule)
    return report
