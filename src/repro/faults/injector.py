"""Deterministic fault injection at named sites.

The durability layers (queue, artifacts, trace writers, checkpoints) call
:func:`fault_point` / :func:`fault_write` at every cut where a crash or I/O
error must be survivable.  With no plan armed both are a single global load
plus a ``None`` test — free enough to leave in production paths (the same
≤2% bar telemetry meets, bench-guarded).  With a :class:`FaultPlan` armed
(via :func:`activate_plan`, the :func:`inject` context manager, or the
``REPRO_FAULTS`` environment variable) each hit is matched against the
plan's rules and may raise an ``OSError``, tear a write short, crash the
process with ``os._exit``, delay, or skew the lease clock — all
deterministically, so a failing chaos schedule replays exactly.

Every injected fault is recorded on the injector (``fired``) and, when
telemetry is enabled, emitted as a ``fault.injected`` event plus a
``faults.injected`` counter, so chaos runs are debuggable from the log
alone.

Module-level imports must stay stdlib-plus-:mod:`repro.obs.telemetry`: this
module is imported by the storage and trace-codec hot paths.
"""

from __future__ import annotations

import errno as _errno
import fnmatch
import json
import os
import random
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterator, List, Optional, Union

from repro.faults.clock import get_clock, reset_clock
from repro.obs.telemetry import get_telemetry

#: Everything a rule may do when it fires.
ACTIONS = ("raise", "torn", "crash", "delay", "skew")

#: Exit status a ``crash`` action dies with (distinguishable from Python
#: tracebacks and signal deaths in worker exit codes).
CRASH_EXIT_CODE = 86


class FaultPlanError(ValueError):
    """A fault plan is malformed (bad action, unknown errno, bad JSON...)."""


@dataclass
class FaultRule:
    """One armed site-pattern -> action mapping.

    ``site`` is an ``fnmatch`` glob against site names.  The rule skips its
    first ``after`` matching hits, then fires on the next ``times`` of them
    (``None`` = every one); ``probability`` additionally gates each firing
    through the plan's seeded RNG.  ``error`` names the errno for ``raise``
    and ``torn``; ``torn_bytes`` caps how much of a torn write reaches the
    file (default: half the payload).
    """

    site: str
    action: str = "raise"
    error: str = "EIO"
    after: int = 0
    times: Optional[int] = 1
    probability: Optional[float] = None
    delay_seconds: float = 0.01
    skew_seconds: float = 0.0
    torn_bytes: Optional[int] = None
    exit_code: int = CRASH_EXIT_CODE

    def __post_init__(self) -> None:
        if not self.site or not isinstance(self.site, str):
            raise FaultPlanError(f"rule site must be a non-empty string, got {self.site!r}")
        if self.action not in ACTIONS:
            raise FaultPlanError(
                f"unknown fault action {self.action!r} for site {self.site!r}; "
                f"known: {', '.join(ACTIONS)}"
            )
        if not hasattr(_errno, self.error):
            raise FaultPlanError(
                f"unknown errno name {self.error!r} for site {self.site!r} "
                "(use symbolic names like EIO, ENOSPC)"
            )
        if self.after < 0:
            raise FaultPlanError(f"rule 'after' must be >= 0, got {self.after}")
        if self.times is not None and self.times < 1:
            raise FaultPlanError(f"rule 'times' must be >= 1 or null, got {self.times}")
        if self.probability is not None and not (0.0 < self.probability <= 1.0):
            raise FaultPlanError(
                f"rule 'probability' must be in (0, 1], got {self.probability}"
            )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"site": self.site, "action": self.action}
        defaults = FaultRule(site=self.site)
        for key in (
            "error",
            "after",
            "times",
            "probability",
            "delay_seconds",
            "skew_seconds",
            "torn_bytes",
            "exit_code",
        ):
            value = getattr(self, key)
            if value != getattr(defaults, key):
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "FaultRule":
        if not isinstance(raw, dict):
            raise FaultPlanError(f"fault rules are JSON objects, got {type(raw).__name__}")
        unknown = set(raw) - {
            "site",
            "action",
            "error",
            "after",
            "times",
            "probability",
            "delay_seconds",
            "skew_seconds",
            "torn_bytes",
            "exit_code",
        }
        if unknown:
            raise FaultPlanError(f"unknown fault rule field(s): {', '.join(sorted(unknown))}")
        if "site" not in raw:
            raise FaultPlanError("fault rules need a 'site' glob")
        return cls(**raw)


@dataclass
class FaultPlan:
    """A seeded, ordered list of :class:`FaultRule`\\ s.

    The first matching armed rule wins per hit.  ``seed`` drives the one
    RNG used for ``probability`` gates, so the same plan replays the same
    schedule.
    """

    rules: List[FaultRule] = field(default_factory=list)
    seed: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "rules": [rule.to_dict() for rule in self.rules]}

    def to_json(self, path: Union[str, os.PathLike]) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(raw, dict):
            raise FaultPlanError(f"a fault plan is a JSON object, got {type(raw).__name__}")
        unknown = set(raw) - {"seed", "rules"}
        if unknown:
            raise FaultPlanError(f"unknown fault plan field(s): {', '.join(sorted(unknown))}")
        rules = raw.get("rules", [])
        if not isinstance(rules, list):
            raise FaultPlanError("'rules' must be a list of rule objects")
        return cls(
            rules=[FaultRule.from_dict(rule) for rule in rules],
            seed=int(raw.get("seed", 0)),
        )

    @classmethod
    def from_json(cls, path: Union[str, os.PathLike]) -> "FaultPlan":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except OSError as error:
            raise FaultPlanError(f"cannot read fault plan {os.fspath(path)!r}: {error}") from error
        except json.JSONDecodeError as error:
            raise FaultPlanError(
                f"fault plan {os.fspath(path)!r} is not valid JSON: {error}"
            ) from error
        return cls.from_dict(raw)


class FaultInjector:
    """Executes one :class:`FaultPlan`; tracks hits and what fired."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.hits: Dict[str, int] = {}
        self.fired: List[Dict[str, Any]] = []
        self._rule_hits = [0] * len(plan.rules)
        self._rule_fired = [0] * len(plan.rules)

    # ------------------------------------------------------------- selection
    def _select(self, site: str) -> Optional[FaultRule]:
        self.hits[site] = self.hits.get(site, 0) + 1
        for index, rule in enumerate(self.plan.rules):
            if not fnmatch.fnmatchcase(site, rule.site):
                continue
            self._rule_hits[index] += 1
            if self._rule_hits[index] <= rule.after:
                continue
            if rule.times is not None and self._rule_fired[index] >= rule.times:
                continue
            if rule.probability is not None and self.rng.random() >= rule.probability:
                continue
            self._rule_fired[index] += 1
            return rule
        return None

    def _note(self, site: str, rule: FaultRule) -> None:
        self.fired.append({"site": site, "action": rule.action, "error": rule.error})
        session = get_telemetry()
        if session.enabled:
            session.event(
                "fault.injected", site=site, action=rule.action, pid=os.getpid()
            )
            session.add("faults.injected")

    # --------------------------------------------------------------- actions
    def _oserror(self, site: str, rule: FaultRule) -> OSError:
        code = getattr(_errno, rule.error)
        return OSError(code, f"injected {rule.error} at fault site {site!r}")

    def _crash(self, rule: FaultRule) -> None:
        # Flush telemetry so the fault.injected event survives the _exit
        # (which skips every Python-level buffer and atexit hook).
        try:
            session = get_telemetry()
            if session.enabled:
                session.close()
        except Exception:
            pass
        os._exit(rule.exit_code)

    def hit(self, site: str) -> None:
        """Apply the plan at a non-write site (may raise / crash / ...)."""
        rule = self._select(site)
        if rule is None:
            return
        self._note(site, rule)
        if rule.action in ("raise", "torn"):
            # A torn write is meaningless without a payload; at a plain
            # fault point it degrades to the raise it would have ended in.
            raise self._oserror(site, rule)
        if rule.action == "crash":
            self._crash(rule)
        elif rule.action == "delay":
            time.sleep(rule.delay_seconds)
        elif rule.action == "skew":
            get_clock().skew(rule.skew_seconds)

    def hit_write(self, site: str, handle: IO[Any], data: Any) -> None:
        """Apply the plan at a write site, then (maybe partially) write.

        ``raise`` fails before any byte lands; ``torn`` writes a prefix and
        then raises; ``crash`` writes the same torn prefix, flushes it so
        the corruption really reaches the file, and dies — the worst-case
        power-cut a reader must detect.
        """
        rule = self._select(site)
        if rule is None:
            handle.write(data)
            return
        self._note(site, rule)
        if rule.action == "raise":
            raise self._oserror(site, rule)
        if rule.action in ("torn", "crash"):
            cut = rule.torn_bytes if rule.torn_bytes is not None else len(data) // 2
            handle.write(data[: max(0, cut)])
            if rule.action == "crash":
                try:
                    handle.flush()
                except Exception:
                    pass
                self._crash(rule)
            raise self._oserror(site, rule)
        if rule.action == "delay":
            time.sleep(rule.delay_seconds)
        elif rule.action == "skew":
            get_clock().skew(rule.skew_seconds)
        handle.write(data)


# ------------------------------------------------------------ current plan
_INJECTOR: Optional[FaultInjector] = None


def fault_point(site: str) -> None:
    """Hook one named site; a no-op unless a fault plan is armed."""
    injector = _INJECTOR
    if injector is not None:
        injector.hit(site)


def fault_write(site: str, handle: IO[Any], data: Any) -> None:
    """``handle.write(data)`` guarded by a write-capable fault site."""
    injector = _INJECTOR
    if injector is None:
        handle.write(data)
    else:
        injector.hit_write(site, handle, data)


def get_injector() -> Optional[FaultInjector]:
    """The armed injector, or ``None`` when injection is disabled."""
    return _INJECTOR


def activate_plan(plan: FaultPlan) -> FaultInjector:
    """Arm ``plan`` process-wide; returns the live injector."""
    global _INJECTOR
    _INJECTOR = FaultInjector(plan)
    return _INJECTOR


def deactivate_faults() -> None:
    """Disarm injection and undo any clock skew the plan applied."""
    global _INJECTOR
    _INJECTOR = None
    reset_clock()


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Arm ``plan`` for the duration of a ``with`` block (tests)."""
    injector = activate_plan(plan)
    try:
        yield injector
    finally:
        deactivate_faults()


def _activate_from_env() -> None:
    """Honor ``REPRO_FAULTS=<plan.json>`` at import.

    This is how fault plans reach spawned worker processes (the chaos
    harness and CI smoke set it around ``repro sweep work`` children).
    Activation failures warn instead of breaking every ``repro`` import.
    """
    value = os.environ.get("REPRO_FAULTS", "")
    if not value or value == "0":
        return
    try:
        activate_plan(FaultPlan.from_json(value))
    except FaultPlanError as error:
        print(f"repro: cannot activate REPRO_FAULTS: {error}", file=sys.stderr)


_activate_from_env()
