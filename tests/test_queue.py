"""Tests for the file-backed campaign work queue.

The protocol's contract: any number of workers drain a queue directory
cooperatively, every cell's record lands in the merged artifact exactly
once, and a worker dying at *any* point — holding a lease, mid-journal
line, between journal and dequeue — loses at most the cell it was running
(which re-runs), never a finished record.
"""

import json
import os
import time

import pytest

from repro.campaign import (
    CampaignSpec,
    QueueError,
    claim_cell,
    enqueue_campaign,
    load_results,
    merge_queue,
    read_journal,
    run_campaign,
    run_queue_sweep,
    work_queue,
)
from repro.campaign.queue import (
    CellJournal,
    journal_dir,
    load_queue_spec,
    results_path,
    worker_token,
)
from repro.cli import main


def queue_spec(cells=4):
    workloads = [
        {"kind": "churn", "requests": 120, "target_live": 20},
        {"kind": "grow_shrink", "requests": 100},
    ][: max(1, cells // 2)]
    return CampaignSpec.from_dict(
        {
            "name": "queued",
            "seed": 9,
            "workloads": workloads,
            "allocators": ["first_fit", {"kind": "cost_oblivious", "epsilon": 0.5}],
            "costs": ["linear"],
        }
    )


def comparable(records):
    """Strip the fields that legitimately differ between runs/workers."""
    stripped = []
    for record in records:
        stripped.append(
            {
                k: v
                for k, v in record.items()
                if k not in ("elapsed_seconds", "resources", "telemetry", "profile", "worker", "resumed")
            }
        )
    return stripped


# -------------------------------------------------------------- the protocol
def test_queue_drain_equals_serial_run(tmp_path):
    spec = queue_spec()
    directory = tmp_path / "q"
    assert enqueue_campaign(spec, directory) == 4
    assert load_queue_spec(directory).name == "queued"
    assert work_queue(directory, token="w1") == 4
    merged = merge_queue(directory)
    assert merged.records == 4 and not merged.pending
    assert merged.workers == ["w1"]
    serial = run_campaign(spec)
    assert comparable(merged.document["records"]) == comparable(serial.records)
    # The merged artifact is the canonical results.json.
    assert comparable(load_results(results_path(directory))["records"]) == comparable(
        serial.records
    )


def test_two_workers_split_the_queue_without_overlap(tmp_path):
    spec = queue_spec()
    directory = tmp_path / "q"
    enqueue_campaign(spec, directory)
    # Interleave two workers one cell at a time: each claim is an atomic
    # lease create, so no cell is ever run by both.
    executed = {"a": 0, "b": 0}
    while True:
        progressed = 0
        for token in executed:
            n = work_queue(directory, token=token, max_cells=1)
            executed[token] += n
            progressed += n
        if progressed == 0:
            break
    assert executed["a"] + executed["b"] == 4
    assert executed["a"] > 0 and executed["b"] > 0
    merged = merge_queue(directory)
    assert merged.records == 4 and not merged.pending
    cell_ids = [r["cell_id"] for r in merged.document["records"]]
    assert len(cell_ids) == len(set(cell_ids))  # exactly once each


def test_claim_is_exclusive_and_lease_blocks_reclaim(tmp_path):
    spec = queue_spec()
    directory = tmp_path / "q"
    enqueue_campaign(spec, directory)
    first = claim_cell(directory, "w1")
    assert first is not None
    cell_name, payload = first
    assert payload["cell_id"]
    # A second claimer skips the leased cell and gets a different one.
    second = claim_cell(directory, "w2")
    assert second is not None and second[0] != cell_name


def test_expired_lease_is_stolen_and_the_cell_runs_exactly_once(tmp_path):
    spec = queue_spec()
    directory = tmp_path / "q"
    enqueue_campaign(spec, directory)
    # Worker w1 claims a cell and dies without running it.
    cell_name, _payload = claim_cell(directory, "w1")
    lease = directory / "leases" / f"{cell_name}.lease"
    assert lease.exists()
    # With the lease fresh, a full drain leaves that one cell pending.
    assert work_queue(directory, token="w2") == 3
    partial = merge_queue(directory)
    assert len(partial.pending) == 1
    assert partial.document["interrupted"] is True
    # Backdate the heartbeat past the TTL: the next worker steals the lease
    # and finishes the cell; the merge sees it exactly once.
    past = time.time() - 3600
    os.utime(lease, (past, past))
    assert work_queue(directory, token="w3", lease_ttl=1.0) == 1
    merged = merge_queue(directory)
    assert merged.records == 4 and not merged.pending
    assert "interrupted" not in merged.document
    assert comparable(merged.document["records"]) == comparable(run_campaign(spec).records)


def test_merge_reclaims_expired_leases(tmp_path):
    spec = queue_spec()
    directory = tmp_path / "q"
    enqueue_campaign(spec, directory)
    cell_name, _payload = claim_cell(directory, "w1")
    lease = directory / "leases" / f"{cell_name}.lease"
    past = time.time() - 3600
    os.utime(lease, (past, past))
    merged = merge_queue(directory, lease_ttl=1.0)
    assert merged.reclaimed_leases == 1
    assert not lease.exists()
    assert len(merged.pending) == 4  # nothing ran; all cells claimable again


def test_worker_death_between_journal_and_dequeue_deduplicates(tmp_path):
    spec = queue_spec()
    directory = tmp_path / "q"
    enqueue_campaign(spec, directory)
    # Simulate the crash window: the record is journaled but the cell was
    # never dequeued, so a second worker re-runs it (status ok both times).
    cell_name, payload = claim_cell(directory, "dead")
    from repro.campaign import run_cell

    record = run_cell(payload)
    record["worker"] = "dead"
    with CellJournal(os.path.join(journal_dir(directory), "dead.jsonl")) as journal:
        journal.append(record)
    lease = directory / "leases" / f"{cell_name}.lease"
    past = time.time() - 3600
    os.utime(lease, (past, past))
    assert work_queue(directory, token="w2", lease_ttl=1.0) == 4  # re-runs it
    merged = merge_queue(directory)
    assert merged.from_journals == 5  # 4 + the duplicate
    assert merged.records == 4  # deduplicated by cell_id
    cell_ids = [r["cell_id"] for r in merged.document["records"]]
    assert len(cell_ids) == len(set(cell_ids))


def test_merge_prefers_ok_records_over_errors(tmp_path):
    spec = queue_spec()
    directory = tmp_path / "q"
    enqueue_campaign(spec, directory)
    work_queue(directory, token="w1")
    ok_record = read_journal(os.path.join(journal_dir(directory), "w1.jsonl"))[0][0]
    bad = dict(ok_record)
    bad["status"] = "error"
    bad["error"] = "synthetic"
    with CellJournal(os.path.join(journal_dir(directory), "w0.jsonl")) as journal:
        journal.append(bad)  # sorts before w1.jsonl, so the error is seen first
    merged = merge_queue(directory)
    assert merged.document["errors"] == 0
    record = next(
        r for r in merged.document["records"] if r["cell_id"] == ok_record["cell_id"]
    )
    assert record["status"] == "ok"


def test_truncated_journal_tail_is_skipped(tmp_path):
    path = tmp_path / "w.jsonl"
    with CellJournal(path) as journal:
        journal.append({"cell_id": "a", "status": "ok"})
        journal.append({"cell_id": "b", "status": "ok"})
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"cell_id": "c", "stat')  # the crash-truncated tail
    records, skipped = read_journal(path)
    assert [r["cell_id"] for r in records] == ["a", "b"]
    assert skipped == 1


def test_enqueue_refuses_a_live_queue_and_skips_completed_cells(tmp_path):
    spec = queue_spec()
    directory = tmp_path / "q"
    enqueue_campaign(spec, directory)
    with pytest.raises(QueueError, match="already holds"):
        enqueue_campaign(spec, directory)
    work_queue(directory, token="w1")
    merge_queue(directory)
    # Re-enqueueing against the merged artifact finds nothing left to do.
    from repro.campaign import completed_records

    completed = completed_records(load_results(results_path(directory)))
    assert enqueue_campaign(spec, directory, completed=completed) == 0


def test_run_queue_sweep_equals_serial(tmp_path):
    spec = queue_spec()
    merged = run_queue_sweep(spec, tmp_path / "q", workers=2)
    assert merged.records == 4 and not merged.pending
    assert len(merged.workers) == 2
    serial = run_campaign(spec)
    assert comparable(merged.document["records"]) == comparable(serial.records)


def test_work_queue_rejects_a_non_queue_directory(tmp_path):
    with pytest.raises(QueueError, match="not a campaign queue directory"):
        work_queue(tmp_path)
    with pytest.raises(QueueError, match="not a campaign queue directory"):
        merge_queue(tmp_path)


def test_worker_tokens_are_unique():
    assert worker_token() != worker_token()


# --------------------------------------------------------------------- CLI
def write_spec(tmp_path, **overrides):
    raw = {
        "name": "cliq",
        "seed": 3,
        "workloads": [
            {"kind": "churn", "requests": 120, "target_live": 20},
            {"kind": "grow_shrink", "requests": 100},
        ],
        "allocators": ["first_fit", {"kind": "cost_oblivious", "epsilon": 0.5}],
        "costs": ["linear"],
    }
    raw.update(overrides)
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(raw), encoding="utf-8")
    return path


def test_cli_enqueue_work_merge_round_trip(tmp_path, capsys):
    spec_path = write_spec(tmp_path)
    directory = tmp_path / "q"
    assert main(["sweep", "enqueue", str(spec_path), str(directory)]) == 0
    assert "enqueued 4 cell(s)" in capsys.readouterr().out
    assert main(["sweep", "work", str(directory), "--quiet"]) == 0
    assert "executed 4 cell(s)" in capsys.readouterr().out
    assert main(["sweep", "merge", str(directory)]) == 0
    out = capsys.readouterr().out
    assert "merged 4 record(s)" in out
    assert "pending" not in out
    assert load_results(results_path(directory))["cells"] == 4


def test_cli_sweep_workers_matches_serial_artifact(tmp_path, capsys):
    spec_path = write_spec(tmp_path)
    serial_dir, queue_dir = tmp_path / "serial", tmp_path / "queued"
    assert main(["sweep", str(spec_path), "--out", str(serial_dir), "--quiet"]) == 0
    assert (
        main(["sweep", str(spec_path), "--workers", "2", "--out", str(queue_dir), "--quiet"])
        == 0
    )
    assert "queue: 4 record(s)" in capsys.readouterr().out
    serial = load_results(serial_dir / "results.json")
    queued = load_results(queue_dir / "results.json")
    assert comparable(serial["records"]) == comparable(queued["records"])


def test_cli_queue_subcommands_fail_cleanly(tmp_path, capsys):
    assert main(["sweep", "work", str(tmp_path / "nope")]) == 2
    assert "not a campaign queue directory" in capsys.readouterr().err
    assert main(["sweep", "merge", str(tmp_path)]) == 2
    assert "not a campaign queue directory" in capsys.readouterr().err
    assert main(["sweep", "enqueue", str(tmp_path / "nope.json"), str(tmp_path / "q")]) == 2
    assert "cannot load spec" in capsys.readouterr().err
    assert main(["sweep", "enqueue", str(tmp_path / "nope.json")]) == 2
    assert "usage" in capsys.readouterr().err
    assert main(["sweep", "work"]) == 2
    assert "usage" in capsys.readouterr().err


def test_cli_sweep_rejects_stray_positional(tmp_path, capsys):
    spec_path = write_spec(tmp_path)
    assert main(["sweep", str(spec_path), "extra"]) == 2
    assert "unexpected extra argument" in capsys.readouterr().err
