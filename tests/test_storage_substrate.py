"""Tests for the checkpoint manager, devices, and block translation layer."""

import pytest

from repro.costs.base import validate_cost_function
from repro.storage import (
    BlockTranslationLayer,
    CheckpointManager,
    Extent,
    FreedSpaceViolation,
    MainMemoryDevice,
    RecoveryError,
    RotatingDiskDevice,
    SolidStateDevice,
)


# ------------------------------------------------------------- checkpoints
def test_freed_space_is_unwritable_until_checkpoint():
    manager = CheckpointManager()
    manager.record_free(Extent(10, 10))
    assert not manager.is_writable(Extent(15, 2))
    assert manager.is_writable(Extent(20, 5))
    with pytest.raises(FreedSpaceViolation):
        manager.assert_writable(Extent(10, 1))
    assert manager.violations == 1
    manager.checkpoint()
    manager.assert_writable(Extent(10, 1))
    assert manager.checkpoints_taken == 1


def test_non_enforcing_manager_only_counts():
    manager = CheckpointManager(enforce=False)
    manager.record_free(Extent(0, 5))
    manager.assert_writable(Extent(0, 5))
    assert manager.violations == 1


def test_frozen_extents_are_coalesced():
    manager = CheckpointManager()
    for start in range(0, 200, 2):
        manager.record_free(Extent(start, 2))
    assert manager.frozen_extents() == [Extent(0, 200)]
    manager.reset_counters()
    assert manager.checkpoints_taken == 0


# ------------------------------------------------------------------ devices
@pytest.mark.parametrize(
    "device_class", [MainMemoryDevice, RotatingDiskDevice, SolidStateDevice]
)
def test_device_timing_and_counters(device_class):
    device = device_class()
    write_time = device.write(64)
    move_time = device.move(64)
    assert write_time > 0
    assert move_time >= write_time  # a move reads and rewrites the data
    assert device.stats.moves == 1
    assert device.stats.units_written == 128
    assert device.stats.elapsed_ms >= write_time + move_time - 1e-9
    device.reset()
    assert device.stats.elapsed_ms == 0


@pytest.mark.parametrize(
    "device_class", [MainMemoryDevice, RotatingDiskDevice, SolidStateDevice]
)
def test_device_cost_functions_are_subadditive(device_class):
    validate_cost_function(device_class().cost_function(), max_size=128)


def test_ssd_erase_accounting():
    device = SolidStateDevice(page_size=8, erase_block_pages=4, erase_ms=1.0)
    for _ in range(4):
        device.move(8)  # one dirty page per move
    assert device.erases == 1


def test_disk_seek_dominates_small_transfers():
    disk = RotatingDiskDevice(seek_ms=8.0, units_per_ms=128.0)
    small = disk.transfer_time(1)
    large = disk.transfer_time(1024)
    assert small > 7.9
    assert large < 3 * small  # bandwidth term is secondary at this scale


# -------------------------------------------------------------- translation
def test_translation_layer_checkpoint_and_crash():
    layer = BlockTranslationLayer()
    layer.record_allocation("a", Extent(0, 10))
    layer.record_allocation("b", Extent(10, 10))
    layer.checkpoint()
    layer.record_move("a", Extent(30, 10))
    assert layer.lookup("a") == Extent(30, 10)
    assert layer.durable_lookup("a") == Extent(0, 10)
    # The old location of "a" is frozen until the next checkpoint.
    assert not layer.checkpoints.is_writable(Extent(0, 10))
    layer.crash()
    assert layer.lookup("a") == Extent(0, 10)
    assert "b" in layer and len(layer) == 2


def test_translation_layer_free_freezes_space():
    layer = BlockTranslationLayer()
    layer.record_allocation("a", Extent(0, 10))
    layer.checkpoint()
    layer.record_free("a")
    assert "a" not in layer
    assert not layer.checkpoints.is_writable(Extent(0, 10))
    layer.checkpoint()
    assert layer.checkpoints.is_writable(Extent(0, 10))


def test_verify_recoverable_detects_clobbered_data():
    layer = BlockTranslationLayer()
    layer.record_allocation("a", Extent(0, 10))
    layer.checkpoint()
    with pytest.raises(RecoveryError):
        layer.verify_recoverable({"a": Extent(50, 10)})
    layer.verify_recoverable({"a": Extent(0, 10)})
