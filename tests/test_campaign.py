"""Tests for the campaign engine: spec expansion, execution, analytics, CLI."""

import csv
import json

import pytest

from repro.campaign import (
    CampaignSpec,
    SpecError,
    analyze_trace,
    build_workload,
    campaign_table,
    load_results,
    run_campaign,
    write_results,
)
from repro.campaign.executor import RECORD_VERSION
from repro.cli import main
from repro.workloads import churn_trace, grow_then_shrink_trace, save_trace


def small_spec(**overrides):
    raw = {
        "name": "unit",
        "seed": 5,
        "workloads": [
            {"kind": "churn", "requests": 300, "target_live": 40},
            {"kind": "grow_shrink", "requests": 200},
        ],
        "allocators": [{"kind": "cost_oblivious", "epsilon": 0.5}, "first_fit"],
        "costs": ["linear", "constant"],
        "devices": ["ram"],
    }
    raw.update(overrides)
    return CampaignSpec.from_dict(raw)


def comparable(records):
    """Strip timing/resource (non-deterministic) fields from cell records."""
    stripped = []
    for record in records:
        copy = {
            k: v
            for k, v in record.items()
            if k not in ("elapsed_seconds", "resources", "telemetry", "profile")
        }
        stripped.append(copy)
    return stripped


# ----------------------------------------------------------------- spec layer
def test_expansion_is_the_full_cross_product():
    cells = small_spec().expand()
    assert len(cells) == 2 * 2 * 2 * 1
    assert [cell.index for cell in cells] == list(range(8))
    assert len({cell.cell_id for cell in cells}) == 8


def test_cell_seed_depends_only_on_the_workload_axis():
    cells = small_spec().expand()
    by_workload = {}
    for cell in cells:
        by_workload.setdefault(json.dumps(cell.workload, sort_keys=True), set()).add(cell.seed)
    assert all(len(seeds) == 1 for seeds in by_workload.values())
    assert len({next(iter(s)) for s in by_workload.values()}) == 2


def test_spec_rejects_unknown_keys_and_empty_axes():
    with pytest.raises(SpecError, match="unknown spec keys"):
        CampaignSpec.from_dict({"workloads": ["churn"], "allocators": ["first_fit"], "x": 1})
    with pytest.raises(SpecError, match="at least one workload"):
        CampaignSpec.from_dict({"allocators": ["first_fit"]})
    with pytest.raises(SpecError, match="at least one allocator"):
        CampaignSpec.from_dict({"workloads": ["churn"]})


def test_validate_flags_unknown_kinds_eagerly():
    spec = small_spec(allocators=["first_fit", "no_such_allocator"])
    with pytest.raises(SpecError, match="no_such_allocator"):
        spec.validate()
    small_spec().validate()


def test_build_workload_is_deterministic_for_a_seed():
    entry = {"kind": "churn", "requests": 120, "target_live": 20}
    first = build_workload(entry, seed=9)
    second = build_workload(entry, seed=9)
    assert [(r.op, r.name, r.size) for r in first] == [(r.op, r.name, r.size) for r in second]
    assert first.metadata["workload"] == entry
    assert first.metadata["seed"] == 9


# ------------------------------------------------------------------ execution
def test_serial_campaign_smoke():
    result = run_campaign(small_spec(), jobs=1)
    assert len(result.records) == 8
    assert all(record["status"] == "ok" for record in result.records)
    assert all(record["requests"] > 0 for record in result.records)
    # The same execution charged under two cost functions keeps every
    # non-cost metric identical.
    by_pair = {}
    for record in result.records:
        key = (json.dumps(record["workload"]), json.dumps(record["allocator"]))
        by_pair.setdefault(key, []).append(record)
    for pair_records in by_pair.values():
        footprints = {record["max_footprint_ratio"] for record in pair_records}
        assert len(footprints) == 1


def test_parallel_run_equals_serial_run():
    spec = small_spec()
    serial = run_campaign(spec, jobs=1)
    parallel = run_campaign(spec, jobs=2)
    assert parallel.jobs == 2
    assert comparable(parallel.records) == comparable(serial.records)


def test_crashing_cell_is_isolated():
    spec = small_spec(allocators=[{"kind": "cost_oblivious", "epsilon": 0.5}, "kaboom"])
    result = run_campaign(spec, jobs=2)
    assert len(result.records) == 8
    assert len(result.error_records) == 4
    assert len(result.ok_records) == 4
    for record in result.error_records:
        assert "kaboom" in record["error"]
        assert record["allocator"]["kind"] == "kaboom"
    # The table renders error rows instead of raising.
    assert "ERROR" in campaign_table(result).to_text()


def test_artifacts_round_trip(tmp_path):
    result = run_campaign(small_spec(), jobs=1)
    paths = write_results(result, tmp_path / "out")
    document = load_results(paths["results"])
    assert document["cells"] == 8
    assert document["ok"] == 8
    assert len(document["records"]) == 8
    assert document["spec"]["name"] == "unit"
    with open(paths["csv"], newline="", encoding="utf-8") as handle:
        rows = list(csv.reader(handle))
    assert len(rows) == 1 + 8
    header = rows[0]
    assert "cost_ratio" in header and "max_footprint_ratio" in header
    assert not (tmp_path / "out" / "missing").exists()


def test_load_results_rejects_foreign_json(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"hello": 1}), encoding="utf-8")
    with pytest.raises(ValueError, match="not a repro campaign results file"):
        load_results(path)


# ------------------------------------------------------------------ analytics
def test_analyze_trace_conserves_volume():
    trace = churn_trace(400, target_live=50, seed=2)
    analytics = analyze_trace(trace)
    died = sum(bucket["volume"] for bucket in analytics.death_groups)
    assert died + analytics.immortal_volume == analytics.inserted_volume
    assert analytics.peak_volume == trace.peak_volume()
    assert analytics.inserts == trace.num_inserts
    assert analytics.deletes == trace.num_deletes
    assert analytics.delta == trace.delta
    assert sum(bucket["count"] for bucket in analytics.histogram) == analytics.inserts


def test_analyze_trace_lifetimes_grow_shrink():
    trace = grow_then_shrink_trace(50, seed=1, order="fifo")
    analytics = analyze_trace(trace)
    assert analytics.immortal_objects == 0
    # FIFO deletion: every object lives exactly `num_objects` requests.
    assert analytics.lifetimes["p50"] == 50
    assert analytics.lifetimes["max"] == 50


def test_analyze_empty_trace():
    from repro.workloads import Trace

    analytics = analyze_trace(Trace([], label="empty"))
    assert analytics.requests == 0
    assert analytics.peak_volume == 0
    assert analytics.turnover == 0


# ------------------------------------------------------------------------ CLI
def write_spec(tmp_path, **overrides):
    raw = {
        "name": "cli",
        "seed": 1,
        "workloads": [{"kind": "churn", "requests": 150, "target_live": 25}],
        "allocators": ["first_fit", {"kind": "cost_oblivious", "epsilon": 0.5}],
        "costs": ["linear"],
    }
    raw.update(overrides)
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(raw), encoding="utf-8")
    return path


def test_cli_sweep_writes_artifacts(tmp_path, capsys):
    spec_path = write_spec(tmp_path)
    out_dir = tmp_path / "out"
    assert main(["sweep", str(spec_path), "--jobs", "2", "--out", str(out_dir), "--quiet"]) == 0
    captured = capsys.readouterr()
    assert "Campaign 'cli'" in captured.out
    document = load_results(out_dir / "results.json")
    assert document["cells"] == 2
    assert (out_dir / "results.csv").exists()
    assert (out_dir / "spec.json").exists()


def test_cli_sweep_missing_spec_fails_cleanly(tmp_path, capsys):
    assert main(["sweep", str(tmp_path / "nope.json")]) == 2
    assert "cannot load spec" in capsys.readouterr().err


def test_cli_sweep_all_cells_failing_returns_error(tmp_path, capsys):
    spec_path = write_spec(tmp_path, allocators=["kaboom"])
    assert main(["sweep", str(spec_path), "--out", str(tmp_path / "out"), "--quiet"]) == 1
    document = load_results(tmp_path / "out" / "results.json")
    assert document["errors"] == 1


def test_cli_sweep_partial_failure_exits_nonzero(tmp_path, capsys):
    spec_path = write_spec(tmp_path, allocators=["first_fit", "kaboom"])
    assert main(["sweep", str(spec_path), "--out", str(tmp_path / "out"), "--quiet"]) == 1
    document = load_results(tmp_path / "out" / "results.json")
    assert document["ok"] == 1 and document["errors"] == 1


def test_cli_trace_analyze(tmp_path, capsys):
    trace = churn_trace(200, target_live=30, seed=3, label="cli trace")
    path = tmp_path / "t.trace"
    save_trace(trace, path, metadata={"seed": 3})
    assert main(["trace", "analyze", str(path)]) == 0
    out = capsys.readouterr().out
    assert "Trace analytics" in out
    assert "Death-time grouping" in out
    assert "metadata" in out


def test_cli_trace_analyze_missing_file(tmp_path, capsys):
    assert main(["trace", "analyze", str(tmp_path / "nope")]) == 2
    assert "repro trace analyze" in capsys.readouterr().err


# ---------------------------------------------------------------- observers
def test_spec_observers_produce_bounded_footprint_series(tmp_path):
    spec = small_spec(observers=[{"kind": "footprint_series", "max_points": 32}])
    result = run_campaign(spec, jobs=1)
    assert all(record["status"] == "ok" for record in result.records)
    for record in result.records:
        series = record["footprint_series"]
        assert 2 <= len(series["footprint"]) <= 32
        assert len(series["footprint"]) == len(series["volume"]) == len(series["indices"])
        assert series["requests_seen"] == record["requests"]
    # The series survives the artifact round trip, and the CSV carries it.
    paths = write_results(result, tmp_path / "out")
    document = load_results(paths["results"])
    for record in document["records"]:
        assert "footprint_series" in record
    with open(paths["csv"], newline="", encoding="utf-8") as handle:
        rows = list(csv.reader(handle))
    column = rows[0].index("footprint_series")
    for row in rows[1:]:
        assert row[column]  # space-separated, non-empty series
        assert all(cell.isdigit() for cell in row[column].split())


def test_spec_observers_are_validated_and_not_part_of_cell_id():
    spec = small_spec(observers=["no_such_observer"])
    with pytest.raises(SpecError, match="unknown observer"):
        spec.validate()
    with_observers = small_spec(observers=["footprint_series"]).expand()
    without = small_spec().expand()
    assert [c.cell_id for c in with_observers] == [c.cell_id for c in without]


def test_parallel_observer_run_equals_serial_run():
    spec = small_spec(observers=[{"kind": "footprint_series", "max_points": 16}])
    serial = run_campaign(spec, jobs=1)
    parallel = run_campaign(spec, jobs=2)
    assert comparable(parallel.records) == comparable(serial.records)


# ------------------------------------------------------------------- resume
def test_run_campaign_resumes_from_completed_records():
    from repro.campaign import completed_records
    from repro.campaign.artifacts import campaign_to_dict

    spec = small_spec()
    first = run_campaign(spec, jobs=1)
    document = campaign_to_dict(first)
    # Pretend the sweep died halfway: keep only the first half of the records.
    document["records"] = document["records"][: len(document["records"]) // 2]
    completed = completed_records(document)
    assert len(completed) == 4

    second = run_campaign(spec, jobs=1, completed=completed)
    assert len(second.records) == 8
    assert second.metadata["resumed"] == 4
    resumed = [r for r in second.records if r.get("resumed")]
    assert {r["cell_id"] for r in resumed} == set(completed)
    # Re-run cells and reused cells together reproduce the full first run.
    stripped = [
        {
            k: v
            for k, v in record.items()
            if k not in ("elapsed_seconds", "resources", "telemetry", "profile", "resumed")
        }
        for record in second.records
    ]
    assert stripped == comparable(first.records)


def test_resume_reruns_failed_cells():
    from repro.campaign import completed_records
    from repro.campaign.artifacts import campaign_to_dict

    broken = small_spec(allocators=[{"kind": "cost_oblivious", "epsilon": 0.5}, "kaboom"])
    first = run_campaign(broken, jobs=1)
    completed = completed_records(campaign_to_dict(first))
    assert len(completed) == 4  # error cells are not "completed"

    fixed = small_spec(allocators=[{"kind": "cost_oblivious", "epsilon": 0.5}, "first_fit"])
    second = run_campaign(fixed, jobs=1, completed=completed)
    assert second.metadata["resumed"] == 4
    assert all(record["status"] == "ok" for record in second.records)


def test_cli_sweep_resume_finishes_half_completed_sweep(tmp_path, capsys):
    spec_path = write_spec(tmp_path)
    out_dir = tmp_path / "out"
    assert main(["sweep", str(spec_path), "--out", str(out_dir), "--quiet"]) == 0
    # Truncate results.json to simulate a sweep that died after one cell.
    document = load_results(out_dir / "results.json")
    document["records"] = document["records"][:1]
    (out_dir / "results.json").write_text(json.dumps(document), encoding="utf-8")

    capsys.readouterr()
    assert main(["sweep", str(spec_path), "--resume", str(out_dir), "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "resumed: 1 cell(s)" in out
    document = load_results(out_dir / "results.json")  # artifacts default to DIR
    assert document["cells"] == 2 and document["ok"] == 2
    assert document["resumed"] == 1
    assert sum(1 for r in document["records"] if r.get("resumed")) == 1


def test_cli_sweep_resume_missing_results_fails_cleanly(tmp_path, capsys):
    spec_path = write_spec(tmp_path)
    assert main(["sweep", str(spec_path), "--resume", str(tmp_path / "absent")]) == 2
    assert "cannot resume" in capsys.readouterr().err


def test_resume_reruns_cells_missing_requested_observer_exports():
    from repro.campaign import completed_records
    from repro.campaign.artifacts import campaign_to_dict

    plain = small_spec()
    completed = completed_records(campaign_to_dict(run_campaign(plain, jobs=1)))
    assert len(completed) == 8
    # The resumed sweep now requests a footprint series the old records lack:
    # nothing can be reused, every cell re-runs and gains the series.
    with_series = small_spec(observers=[{"kind": "footprint_series", "max_points": 16}])
    result = run_campaign(with_series, jobs=1, completed=completed)
    assert result.metadata["resumed"] == 0
    assert all("footprint_series" in record for record in result.records)


def test_cli_sweep_resume_rejects_seed_mismatch(tmp_path, capsys):
    spec_path = write_spec(tmp_path)
    out_dir = tmp_path / "out"
    assert main(["sweep", str(spec_path), "--out", str(out_dir), "--quiet"]) == 0
    other_spec = write_spec(tmp_path, seed=99)
    assert main(["sweep", str(other_spec), "--resume", str(out_dir), "--quiet"]) == 2
    assert "campaign seed differs" in capsys.readouterr().err


def test_cli_sweep_resume_with_changed_observers_reruns_all_cells(tmp_path, capsys):
    spec_path = write_spec(tmp_path, observers=[{"kind": "footprint_series", "max_points": 16}])
    out_dir = tmp_path / "out"
    assert main(["sweep", str(spec_path), "--out", str(out_dir), "--quiet"]) == 0
    resampled = write_spec(tmp_path, observers=[{"kind": "footprint_series", "max_points": 64}])
    assert main(["sweep", str(resampled), "--resume", str(out_dir), "--quiet"]) == 0
    captured = capsys.readouterr()
    assert "observer configuration changed" in captured.err
    document = load_results(out_dir / "results.json")
    assert document["resumed"] == 0  # nothing reused under stale instrumentation
    assert document["spec"]["observers"] == [{"kind": "footprint_series", "max_points": 64}]


def test_resume_reruns_records_from_older_release():
    from repro.campaign import completed_records
    from repro.campaign.artifacts import campaign_to_dict

    spec = small_spec()
    document = campaign_to_dict(run_campaign(spec, jobs=1))
    # Simulate a results.json written before records were version-stamped.
    for record in document["records"]:
        record.pop("record_version", None)
        record.pop("observers", None)
    result = run_campaign(spec, jobs=1, completed=completed_records(document))
    assert result.metadata["resumed"] == 0  # stale semantics: nothing reused
    assert all(r["record_version"] == RECORD_VERSION for r in result.records)


# ----------------------------------------------------------- streaming cells
def test_replay_workload_streams_from_v2_file(tmp_path):
    """A replay workload with "stream": true replays the on-disk trace
    without materialising it and produces a record identical to the
    materialised cell (modulo the workload entry and timing)."""
    trace = churn_trace(600, target_live=60, seed=13, label="recorded")
    path = tmp_path / "recorded.v2z"
    save_trace(trace, path, version=2, compress=True)
    spec = small_spec(
        workloads=[
            {"kind": "replay", "path": str(path)},
            {"kind": "replay", "path": str(path), "stream": True},
        ],
        allocators=[{"kind": "cost_oblivious", "epsilon": 0.5}],
        costs=["linear"],
    )
    result = run_campaign(spec, jobs=1)
    assert [r["status"] for r in result.records] == ["ok", "ok"]
    materialised, streamed = result.records
    ignore = {"index", "cell_id", "workload", "elapsed_seconds", "resources", "seed"}
    assert {k: v for k, v in materialised.items() if k not in ignore} == {
        k: v for k, v in streamed.items() if k not in ignore
    }
    assert streamed["requests"] == len(trace)
    assert streamed["trace_label"] == "recorded"
    assert streamed["delta"] == trace.delta
    assert streamed["inserted_volume"] == trace.total_inserted_volume


def test_streamed_replay_workload_builds_a_source(tmp_path):
    from repro.workloads import Trace, TraceFileSource

    trace = churn_trace(100, target_live=20, seed=1)
    path = tmp_path / "t.v2"
    save_trace(trace, path, version=2)
    entry = {"kind": "replay", "path": str(path), "stream": True}
    built = build_workload(entry, seed=9)
    assert isinstance(built, TraceFileSource)
    assert not isinstance(built, Trace)
    # provenance stamping works on sources too
    assert built.metadata["workload"] == entry
    assert built.metadata["seed"] == 9


# ----------------------------------------------------- crash-safe artifacts
def test_atomic_write_keeps_the_old_file_when_the_writer_dies(tmp_path):
    from repro.campaign import atomic_write

    path = tmp_path / "results.json"
    atomic_write(path, lambda handle: handle.write('{"ok": true}'))
    assert json.loads(path.read_text(encoding="utf-8")) == {"ok": True}

    def dying_writer(handle):
        handle.write('{"ok": fal')  # a partial document...
        raise RuntimeError("killed mid-stream")  # ...then the process dies

    with pytest.raises(RuntimeError):
        atomic_write(path, dying_writer)
    # The published file never saw the partial write.
    assert json.loads(path.read_text(encoding="utf-8")) == {"ok": True}


def test_write_results_is_atomic_under_mid_stream_death(tmp_path, monkeypatch):
    spec = small_spec()
    result = run_campaign(spec)
    out = tmp_path / "out"
    write_results(result, out)
    before = load_results(out / "results.json")

    # Kill the next write partway through the JSON dump: the record list
    # contains an object the serializer chokes on after emitting a prefix.
    result.records.append({"cell_id": "late", "status": "ok", "boom": object()})
    with pytest.raises(TypeError):
        write_results(result, out)
    assert load_results(out / "results.json") == before  # old artifact intact


def test_load_results_raises_artifact_error_on_truncated_json(tmp_path):
    from repro.campaign import ArtifactError

    spec = small_spec()
    out = tmp_path / "out"
    write_results(run_campaign(spec), out)
    path = out / "results.json"
    full = path.read_text(encoding="utf-8")
    path.write_text(full[: len(full) // 2], encoding="utf-8")
    with pytest.raises(ArtifactError, match="truncated or corrupt"):
        load_results(path)
    with pytest.raises(ArtifactError, match=str(path).replace("\\", "\\\\")):
        load_results(path)  # the message names the offending path


def test_cli_surfaces_corrupt_artifacts_as_exit_2(tmp_path, capsys):
    spec_path = write_spec(tmp_path)
    out = tmp_path / "out"
    assert main(["sweep", str(spec_path), "--out", str(out), "--quiet"]) == 0
    capsys.readouterr()
    path = out / "results.json"
    full = path.read_text(encoding="utf-8")
    path.write_text(full[: len(full) // 2], encoding="utf-8")
    assert main(["sweep", "report", str(out)]) == 2
    assert "truncated or corrupt" in capsys.readouterr().err
    assert main(["sweep", str(spec_path), "--resume", str(out), "--quiet"]) == 2
    assert "truncated or corrupt" in capsys.readouterr().err


# ------------------------------------------------------- interrupt handling
def test_interrupt_mid_campaign_keeps_completed_cells():
    """Ctrl-C after the first of 4 cells must not discard its record."""
    spec = small_spec(costs=["linear"])  # 4 cells
    calls = []

    def interrupt_after_first(done, total, record):
        calls.append(record["cell_id"])
        if done == 1:
            raise KeyboardInterrupt

    result = run_campaign(spec, progress=interrupt_after_first)
    assert len(result.records) == 1
    assert result.metadata["interrupted"] is True
    assert result.metadata["ok"] == 1

    # The artifact carries the stamp, and a resume completes the other 3.
    from repro.campaign import campaign_to_dict, completed_records

    document = campaign_to_dict(result)
    assert document["interrupted"] is True
    resumed = run_campaign(spec, completed=completed_records(document))
    assert len(resumed.records) == 4
    assert resumed.metadata["resumed"] == 1
    assert resumed.metadata["interrupted"] is False
    assert "interrupted" not in campaign_to_dict(resumed)
    assert sum(1 for r in resumed.records if r.get("resumed")) == 1
    baseline = run_campaign(spec)
    strip = lambda records: comparable(
        [{k: v for k, v in r.items() if k != "resumed"} for r in records]
    )
    assert strip(resumed.records) == strip(baseline.records)


def test_cli_interrupted_sweep_writes_artifact_and_resume_finishes(
    tmp_path, capsys, monkeypatch
):
    """Kill the sweep after cell 1 of 4: the artifact holds 1 record and is
    stamped interrupted (exit 130); --resume reruns exactly the missing 3."""
    import repro.campaign.executor as executor_module

    spec_path = write_spec(
        tmp_path,
        workloads=[
            {"kind": "churn", "requests": 150, "target_live": 25},
            {"kind": "grow_shrink", "requests": 120},
        ],
    )
    out = tmp_path / "out"
    real_run_cell = executor_module.run_cell
    ran = []

    def run_one_then_die(payload):
        if ran:
            raise KeyboardInterrupt
        ran.append(payload["cell_id"])
        return real_run_cell(payload)

    monkeypatch.setattr(executor_module, "run_cell", run_one_then_die)
    assert main(["sweep", str(spec_path), "--out", str(out), "--quiet"]) == 130
    captured = capsys.readouterr()
    assert "interrupted: 1 record(s) saved" in captured.err
    assert f"--resume {out}" in captured.err
    document = load_results(out / "results.json")
    assert document["interrupted"] is True
    assert document["cells"] == 1 and document["ok"] == 1

    monkeypatch.setattr(executor_module, "run_cell", real_run_cell)
    assert main(["sweep", str(spec_path), "--resume", str(out), "--quiet"]) == 0
    assert "resumed: 1 cell(s)" in capsys.readouterr().out
    document = load_results(out / "results.json")
    assert document["cells"] == 4 and document["ok"] == 4
    assert "interrupted" not in document


def test_cli_resume_folds_journal_records_after_a_hard_crash(tmp_path, capsys):
    """A crash that never reached the artifact writer leaves the finished
    records only in the journal; --resume must still not re-run them."""
    from repro.campaign.queue import journal_dir, read_journal

    spec_path = write_spec(tmp_path)
    out, crashed = tmp_path / "out", tmp_path / "crashed"
    assert main(["sweep", str(spec_path), "--out", str(out), "--quiet"]) == 0
    # Build the crash scene: a valid (older, empty) artifact plus a journal
    # holding one finished record that never made it into results.json.
    assert main(["sweep", str(spec_path), "--out", str(crashed), "--quiet"]) == 0
    document = load_results(crashed / "results.json")
    survivor = document["records"][0]
    document["records"] = []
    document["cells"] = document["ok"] = 0
    (crashed / "results.json").write_text(json.dumps(document), encoding="utf-8")
    journal_path = journal_dir(crashed) + "/crashed-worker.jsonl"
    import os

    os.makedirs(journal_dir(crashed), exist_ok=True)
    with open(journal_path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(survivor) + "\n")
    capsys.readouterr()
    assert main(["sweep", str(spec_path), "--resume", str(crashed), "--quiet"]) == 0
    assert "resumed: 1 cell(s)" in capsys.readouterr().out
    merged = load_results(crashed / "results.json")
    assert merged["cells"] == 2 and merged["ok"] == 2
    restored = next(r for r in merged["records"] if r["cell_id"] == survivor["cell_id"])
    assert restored.get("resumed") is True
