"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list_prints_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for key in ("E1", "E5", "F3"):
        assert key in out


def test_default_command_is_list(capsys):
    assert main([]) == 0
    assert "E1" in capsys.readouterr().out


def test_run_single_experiment(capsys):
    assert main(["run", "F3"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out
    assert "flush" in out


def test_run_unknown_experiment_raises():
    with pytest.raises(KeyError):
        main(["run", "E42"])
