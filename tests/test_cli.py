"""Tests for the command-line interface."""

from repro.cli import main


def test_list_prints_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for key in ("E1", "E5", "F3"):
        assert key in out


def test_default_command_is_list(capsys):
    assert main([]) == 0
    assert "E1" in capsys.readouterr().out


def test_run_single_experiment(capsys):
    assert main(["run", "F3"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out
    assert "flush" in out


def test_run_unknown_experiment_exits_with_status_2(capsys):
    assert main(["run", "E42"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err
    assert "E1" in err  # the known-ids list is printed
