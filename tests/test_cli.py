"""Tests for the command-line interface."""

from repro.cli import main


def test_list_prints_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for key in ("E1", "E5", "F3"):
        assert key in out


def test_default_command_is_list(capsys):
    assert main([]) == 0
    assert "E1" in capsys.readouterr().out


def test_run_single_experiment(capsys):
    assert main(["run", "F3"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out
    assert "flush" in out


def test_run_unknown_experiment_exits_with_status_2(capsys):
    assert main(["run", "E42"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err
    assert "E1" in err  # the known-ids list is printed


# ------------------------------------------------------- trace convert / info
import gzip

import pytest

from repro.workloads import Request, Trace, churn_trace, load_trace, save_trace


@pytest.fixture()
def v1_trace_file(tmp_path):
    trace = churn_trace(400, target_live=40, seed=5)
    trace.metadata["seed"] = 5
    path = tmp_path / "churn.v1"
    save_trace(trace, path)
    return trace, path


def test_trace_convert_v1_to_v2_round_trips(v1_trace_file, tmp_path, capsys):
    trace, path = v1_trace_file
    out = tmp_path / "churn.v2"
    assert main(["trace", "convert", str(path), str(out), "--format", "v2", "--compress"]) == 0
    assert f"wrote {len(trace)} request(s)" in capsys.readouterr().out
    loaded = load_trace(out)
    assert len(loaded) == len(trace)
    assert loaded.label == trace.label
    assert loaded.metadata == trace.metadata
    assert out.stat().st_size < path.stat().st_size


def test_trace_convert_v2_back_to_v1(v1_trace_file, tmp_path):
    trace, path = v1_trace_file
    binary = tmp_path / "t.v2"
    text = tmp_path / "back.v1"
    assert main(["trace", "convert", str(path), str(binary)]) == 0  # default --format v2
    assert main(["trace", "convert", str(binary), str(text), "--format", "v1"]) == 0
    assert [(r.op, r.name) for r in load_trace(text)] == [
        (r.op, str(r.name)) for r in trace
    ]


def test_trace_convert_to_v0_drops_metadata_with_note(v1_trace_file, tmp_path, capsys):
    trace, path = v1_trace_file
    out = tmp_path / "t.v0"
    assert main(["trace", "convert", str(path), str(out), "--format", "v0"]) == 0
    assert "cannot carry metadata" in capsys.readouterr().err
    assert load_trace(out).metadata == {}


def test_trace_info_reports_format_and_counts(v1_trace_file, tmp_path, capsys):
    trace, path = v1_trace_file
    out = tmp_path / "t.v2z"
    main(["trace", "convert", str(path), str(out), "--compress"])
    capsys.readouterr()
    assert main(["trace", "info", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "v2 (binary, zlib body)" in printed
    assert f"requests" in printed and str(len(trace)) in printed
    assert f"peak live volume" in printed
    assert '"seed": 5' in printed


def test_trace_analyze_reads_v2_transparently(v1_trace_file, tmp_path, capsys):
    _, path = v1_trace_file
    out = tmp_path / "t.v2"
    main(["trace", "convert", str(path), str(out)])
    capsys.readouterr()
    assert main(["trace", "analyze", str(out)]) == 0
    assert "Trace analytics" in capsys.readouterr().out


def test_trace_subcommand_required(capsys):
    assert main(["trace"]) == 2
    assert "subcommand" in capsys.readouterr().err


@pytest.mark.parametrize("command", [["info"], ["convert"]])
def test_trace_commands_reject_garbage_with_exit_2(tmp_path, capsys, command):
    garbage = tmp_path / "garbage.bin"
    garbage.write_bytes(bytes(range(190, 256)) * 7)
    argv = ["trace"] + command + [str(garbage)]
    if command == ["convert"]:
        argv.append(str(tmp_path / "out.v2"))
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert "not a valid trace" in err
    assert "Traceback" not in err


def test_trace_info_truncated_v2_exit_2(tmp_path, capsys):
    whole = tmp_path / "whole.v2"
    save_trace(churn_trace(300, target_live=30, seed=2), whole, version=2)
    clipped = tmp_path / "clipped.v2"
    clipped.write_bytes(whole.read_bytes()[:150])
    assert main(["trace", "info", str(clipped)]) == 2
    err = capsys.readouterr().err
    assert "truncated" in err
    assert "Traceback" not in err


def test_trace_convert_corrupt_v2_exit_2_and_no_partial_output(tmp_path, capsys):
    whole = tmp_path / "whole.v2"
    save_trace(churn_trace(300, target_live=30, seed=2), whole, version=2)
    corrupt = tmp_path / "corrupt.v2"
    data = bytearray(whole.read_bytes())
    data[len(data) // 2] ^= 0xFF  # flip a record byte
    corrupt.write_bytes(bytes(data))
    out = tmp_path / "out.v1"
    assert main(["trace", "convert", str(corrupt), str(out), "--format", "v1"]) == 2
    err = capsys.readouterr().err
    assert "repro trace convert:" in err
    assert "Traceback" not in err
    assert not out.exists()


def test_trace_info_bad_magic_exit_2(tmp_path, capsys):
    path = tmp_path / "badmagic"
    path.write_bytes(b"\x93NOTRACE" + b"\x01" * 32)
    assert main(["trace", "info", str(path)]) == 2
    assert "bad magic" in capsys.readouterr().err


def test_trace_info_unknown_version_exit_2(tmp_path, capsys):
    path = tmp_path / "future.txt"
    path.write_text("# repro-trace v9\nI a 1\n", encoding="utf-8")
    assert main(["trace", "info", str(path)]) == 2
    assert "unsupported trace format" in capsys.readouterr().err


def test_trace_info_empty_file_exit_2(tmp_path, capsys):
    path = tmp_path / "empty"
    path.write_bytes(b"")
    assert main(["trace", "info", str(path)]) == 2
    assert "empty file" in capsys.readouterr().err


def test_trace_info_missing_file_exit_2(tmp_path, capsys):
    assert main(["trace", "info", str(tmp_path / "nope")]) == 2
    assert "No such file" in capsys.readouterr().err


def test_trace_convert_compress_requires_v2(v1_trace_file, tmp_path, capsys):
    _, path = v1_trace_file
    code = main(
        ["trace", "convert", str(path), str(tmp_path / "o"), "--format", "v1", "--compress"]
    )
    assert code == 2
    assert "v2" in capsys.readouterr().err


def test_trace_convert_refuses_in_place(v1_trace_file, capsys):
    _, path = v1_trace_file
    assert main(["trace", "convert", str(path), str(path)]) == 2
    assert "same file" in capsys.readouterr().err


def test_trace_convert_reads_gzip_container(v1_trace_file, tmp_path):
    trace, path = v1_trace_file
    gz = tmp_path / "t.v1.gz"
    gz.write_bytes(gzip.compress(path.read_bytes()))
    out = tmp_path / "from-gz.v2"
    assert main(["trace", "convert", str(gz), str(out)]) == 0
    assert len(load_trace(out)) == len(trace)


# ------------------------------------------------------------------ v3 surfaces
def test_trace_convert_to_v3_with_block_size(v1_trace_file, tmp_path, capsys):
    trace, path = v1_trace_file
    out = tmp_path / "t.v3"
    code = main(
        ["trace", "convert", str(path), str(out), "--format", "v3", "--block-size", "100"]
    )
    assert code == 0
    assert "v3" in capsys.readouterr().out
    loaded = load_trace(out)
    assert len(loaded) == len(trace)
    assert loaded.metadata == trace.metadata
    capsys.readouterr()
    assert main(["trace", "info", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "yes (4 block(s), up to 100 records per block)" in printed  # 400/100


def test_trace_info_non_v3_reports_not_seekable(v1_trace_file, tmp_path, capsys):
    _, path = v1_trace_file
    v2 = tmp_path / "t.v2"
    main(["trace", "convert", str(path), str(v2)])
    capsys.readouterr()
    assert main(["trace", "info", str(v2)]) == 0
    printed = capsys.readouterr().out
    assert "not seekable" in printed
    assert "--format v3" in printed


def test_trace_convert_block_size_requires_v3(v1_trace_file, tmp_path, capsys):
    _, path = v1_trace_file
    code = main(
        ["trace", "convert", str(path), str(tmp_path / "o"), "--format", "v2", "--block-size", "7"]
    )
    assert code == 2
    assert "v3" in capsys.readouterr().err


def test_trace_analyze_jobs_output_matches_serial(v1_trace_file, tmp_path, capsys):
    _, path = v1_trace_file
    v3 = tmp_path / "t.v3"
    main(["trace", "convert", str(path), str(v3), "--format", "v3", "--block-size", "50"])
    capsys.readouterr()
    assert main(["trace", "analyze", str(v3)]) == 0
    serial_out = capsys.readouterr().out
    assert main(["trace", "analyze", str(v3), "--jobs", "2"]) == 0
    assert capsys.readouterr().out == serial_out


def test_trace_analyze_jobs_on_unseekable_file_notes_serial_scan(
    v1_trace_file, capsys
):
    _, path = v1_trace_file  # v1 text: no block index
    assert main(["trace", "analyze", str(path), "--jobs", "4"]) == 0
    captured = capsys.readouterr()
    assert "Trace analytics" in captured.out
    assert "scanning serially" in captured.err
