"""End-to-end scenario: a block store with translation, checkpoints, crashes.

This mirrors the paper's motivating setting (TokuDB-style block translation):
a storage engine allocates, rewrites, and frees variable-sized blocks through
the checkpointed reallocator while the system takes periodic checkpoints and
occasionally crashes.  After every crash, all durable blocks must still be
reachable, and the disk footprint must stay within (1 + eps) of the live
volume.
"""

import random

import pytest

from repro.core import CheckpointedReallocator, check_invariants
from repro.costs import RotatingDiskCost
from repro.storage.devices import RotatingDiskDevice
from repro.workloads import database_trace


def test_block_store_with_periodic_checkpoints_and_crashes():
    realloc = CheckpointedReallocator(epsilon=0.25, track_recovery=True)
    device = RotatingDiskDevice()
    trace = database_trace(1500, block=32, working_set=120, seed=99)
    rng = random.Random(7)
    live = {}
    for index, request in enumerate(trace):
        if request.is_insert:
            record = realloc.insert(request.name, request.size)
            live[request.name] = request.size
        else:
            record = realloc.delete(request.name)
            live.pop(request.name, None)
        for move in record.moves:
            if move.is_reallocation:
                device.move(move.size)
            else:
                device.write(move.size)
        if index % 100 == 99:
            realloc.checkpoint()
        if index % 400 == 399:
            realloc.crash_and_recover()
    check_invariants(realloc)
    assert set(realloc.translation) == set(live)
    assert realloc.stats.max_footprint_ratio <= 1.25 + 1e-9
    assert realloc.checkpoints.violations == 0
    # The simulated disk spent time proportional to the charged cost model.
    assert device.stats.elapsed_ms > 0
    charged = realloc.stats.reallocation_cost(RotatingDiskCost())
    assert charged > 0


def test_cost_charged_after_the_fact_matches_device_accounting():
    """Cost obliviousness in practice: the allocator never sees the device,
    yet charging its recorded moves under the device's cost function agrees
    with what the device itself measured (up to the 2x read+write factor)."""
    realloc = CheckpointedReallocator(epsilon=0.5)
    device = RotatingDiskDevice()
    trace = database_trace(800, block=16, working_set=80, seed=3)
    for request in trace:
        record = (
            realloc.insert(request.name, request.size)
            if request.is_insert
            else realloc.delete(request.name)
        )
        for move in record.moves:
            if move.is_reallocation:
                device.move(move.size)
    charged = realloc.stats.reallocation_cost(device.cost_function())
    assert device.stats.moves == realloc.stats.total_moves
    assert charged <= device.stats.elapsed_ms + 1e-6
    assert charged >= device.stats.elapsed_ms / 2 - 1e-6
