"""Tests for the live allocation service (:mod:`repro.serve`).

The acceptance bar: every served session leaves a block-indexed v3 trace
that replays offline to the live session's exact state, control verbs are
ordered barriers, backpressure never loses or reorders work, and a server
crashed mid-session (fault injection) restores from its last SNAPSHOT plus
the recorded trace tail to exactly the acked prefix.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.allocators import FirstFitAllocator
from repro.campaign.spec import build_allocator
from repro.cli import main
from repro.faults import CRASH_EXIT_CODE, FaultPlan, FaultRule
from repro.metrics import run_trace
from repro.serve import (
    MAX_FRAME_BYTES,
    ProtocolError,
    ServeClient,
    ServeClientError,
    ServeConfig,
    decode_requests,
    encode_frame,
    encode_requests,
    read_frame,
    read_frame_sync,
    restore_session,
    run_load,
    start_background,
)
from repro.workloads import (
    Request,
    UniformSizes,
    churn_trace,
    load_trace,
    read_trace_tail,
    trace_info,
)

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def layout(allocator):
    return sorted(
        (name, extent.start, extent.length)
        for name, extent in allocator.space.snapshot().items()
    )


@pytest.fixture
def server(tmp_path):
    handles = []

    def _start(**overrides):
        overrides.setdefault("label", "t")
        config = ServeConfig(trace_dir=str(tmp_path), **overrides)
        handle = start_background(config)
        handles.append(handle)
        return handle

    yield _start
    for handle in handles:
        handle.stop()


# ------------------------------------------------------------------ protocol
def test_frame_round_trip_sync_and_async(tmp_path):
    messages = [
        {"op": "hello", "tenant": "t"},
        {"op": "batch", "seq": 1, "reqs": [["i", "a", 8], ["d", "a"]]},
        {"big": "x" * 300},  # multi-byte varint prefix
    ]
    blob = b"".join(encode_frame(m) for m in messages)
    path = tmp_path / "frames.bin"
    path.write_bytes(blob)
    with open(path, "rb") as handle:
        decoded = [read_frame_sync(handle) for _ in messages]
        assert read_frame_sync(handle) is None  # clean EOF
    assert decoded == messages

    async def _read_all():
        reader = asyncio.StreamReader()
        reader.feed_data(blob)
        reader.feed_eof()
        out = [await read_frame(reader) for _ in messages]
        out.append(await read_frame(reader))
        return out

    *async_decoded, eof = asyncio.run(_read_all())
    assert async_decoded == messages and eof is None


def test_frame_guards_reject_oversize_and_torn_frames(tmp_path):
    with pytest.raises(ProtocolError, match="exceeds"):
        encode_frame({"x": "y" * MAX_FRAME_BYTES})

    async def _read(blob):
        reader = asyncio.StreamReader()
        reader.feed_data(blob)
        reader.feed_eof()
        return await read_frame(reader)

    # A length prefix claiming ~34 GB is refused before any allocation.
    with pytest.raises(ProtocolError, match="exceeds"):
        asyncio.run(_read(b"\xff\xff\xff\xff\x7f"))
    # A connection cut mid-body is loud, not a silent truncation.
    frame = encode_frame({"op": "stats", "seq": 1})
    with pytest.raises(ProtocolError, match="inside a frame body"):
        asyncio.run(_read(frame[:-2]))
    with pytest.raises(ProtocolError, match="not valid JSON"):
        asyncio.run(_read(b"\x03xxx"))


def test_request_codec_round_trip_and_prefixing():
    requests = [Request.insert("a", 8), Request.delete("a"), Request.insert("b", 1)]
    wire = encode_requests(requests)
    assert wire == [["i", "a", 8], ["d", "a"], ["i", "b", 1]]
    assert decode_requests(wire) == [
        Request.insert("a", 8),
        Request.delete("a"),
        Request.insert("b", 1),
    ]
    assert decode_requests(wire, prefix="t/")[0].name == "t/a"
    with pytest.raises(ProtocolError, match="unknown request tag"):
        decode_requests([["x", "a"]])
    with pytest.raises(ProtocolError):
        decode_requests([["i", "a"]])  # insert without a size
    with pytest.raises(ProtocolError):
        decode_requests({"not": "a list"})


# ------------------------------------------------------------- basic serving
def test_batches_are_acked_applied_and_recorded(tmp_path, server):
    handle = server()
    trace = list(churn_trace(900, UniformSizes(1, 32), target_live=50, seed=3))
    with ServeClient(handle.host, handle.port, tenant="alpha") as client:
        assert client.mode == "per-tenant"
        for i in range(0, len(trace), 100):
            client.send_batch(trace[i : i + 100])
        acks = client.drain_acks()
        assert [a["ok"] for a in acks] == [True] * 9
        assert sum(a["applied"] for a in acks) == 900
        stats = client.stats()
        assert stats["requests"] == stats["recorded"] == 900
        assert stats["requests_per_second"] > 0.0
        json.dumps(stats, allow_nan=False)
    results = handle.stop()
    assert [(r["tenant"], r["requests"]) for r in results] == [("alpha", 900)]


def test_served_session_trace_replays_to_identical_state(tmp_path, server):
    """The core durability claim: live state == offline replay of the
    recorded v3 trace, for a moving allocator too."""
    for kind in ("first_fit", "logging_compacting"):
        handle = server(allocator=kind, label=f"eq-{kind}")
        trace = list(churn_trace(1200, UniformSizes(1, 64), target_live=80, seed=11))
        with ServeClient(handle.host, handle.port, tenant="w") as client:
            for i in range(0, len(trace), 150):
                client.send_batch(trace[i : i + 150])
            client.drain_acks()
            live = client.stats()
        [result] = handle.stop()

        trace_path = tmp_path / f"eq-{kind}-w.v3"
        info = trace_info(trace_path)
        assert info.requests == 1200
        offline = run_trace(build_allocator(kind), load_trace(trace_path))
        assert offline.requests == 1200
        assert offline.final_footprint == result["stats"]["footprint"]
        assert offline.final_volume == live["volume"]
        assert offline.max_footprint == live["max_footprint"]
        assert offline.total_moves == result["stats"]["moves"]


def test_tenants_get_isolated_arenas(server):
    handle = server()
    with ServeClient(handle.host, handle.port, tenant="a") as a, ServeClient(
        handle.host, handle.port, tenant="b"
    ) as b:
        a.apply([Request.insert("x", 10)])
        b.apply([Request.insert("x", 99)])  # same name, different arena: fine
        assert a.stats()["volume"] == 10
        assert b.stats()["volume"] == 99
    results = {r["tenant"]: r for r in handle.stop()}
    assert set(results) == {"a", "b"}


def test_shared_arena_namespaces_tenants(tmp_path, server):
    handle = server(shared_arena=True, label="sh")
    with ServeClient(handle.host, handle.port, tenant="a") as a, ServeClient(
        handle.host, handle.port, tenant="b"
    ) as b:
        assert a.mode == "shared"
        a.apply([Request.insert("x", 10)])
        b.apply([Request.insert("x", 7)])  # would collide without namespacing
        stats = a.stats()
        assert stats["volume"] == 17 and stats["num_objects"] == 2
        a.apply([Request.delete("x")])
        assert b.stats()["volume"] == 7
    [result] = handle.stop()
    assert result["tenant"] == "shared"
    # The shared trace carries the namespaced names and replays cleanly.
    replayed = run_trace(
        FirstFitAllocator(), load_trace(tmp_path / "sh-shared.v3")
    )
    assert replayed.requests == 3
    assert replayed.final_volume == 7


def test_backpressure_under_tiny_queue_loses_nothing(server):
    handle = server(queue_depth=2, max_batch=64)
    trace = list(churn_trace(800, UniformSizes(1, 16), target_live=40, seed=5))
    with ServeClient(handle.host, handle.port, tenant="bp") as client:
        for i in range(0, len(trace), 25):  # 32 batches >> queue depth
            client.send_batch(trace[i : i + 25])
        acks = client.drain_acks()
        assert sum(a["applied"] for a in acks) == 800
        assert [a["seq"] for a in acks] == sorted(a["seq"] for a in acks)
        drained = client.drain()
        assert drained["applied"] == drained["recorded"] == 800


def test_mid_batch_allocator_error_acks_partial_and_session_survives(server):
    handle = server()
    with ServeClient(handle.host, handle.port, tenant="err") as client:
        ack = client.apply(
            [
                Request.insert("a", 4),
                Request.insert("a", 4),  # duplicate name: allocator raises
                Request.insert("b", 4),
            ]
        )
        assert ack["ok"] is False
        assert ack["applied"] == 1
        assert "error" in ack
        # The session is still live and consistent afterwards.
        good = client.apply([Request.insert("b", 4)])
        assert good["ok"] is True
        stats = client.stats()
        assert stats["requests"] == 2  # only the applied prefix counted
        assert stats["recorded"] == 2  # ... and only that was recorded
    [result] = handle.stop()
    assert result["requests"] == 2


def test_unknown_ops_and_bad_batches_get_error_responses(server):
    handle = server()
    with ServeClient(handle.host, handle.port, tenant="bad") as client:
        client._send({"op": "frobnicate", "seq": 1})
        response = client._recv()
        assert response["ok"] is False and "unknown op" in response["error"]
        client._send({"op": "batch", "seq": 2, "reqs": [["i", "a"]]})
        response = client._recv()
        assert response["ok"] is False
        # The connection survives protocol-level errors.
        assert client.apply([Request.insert("a", 1)])["ok"] is True


def test_two_connections_can_share_one_tenant_session(server):
    handle = server()
    first = ServeClient(handle.host, handle.port, tenant="t")
    second = ServeClient(handle.host, handle.port, tenant="t")
    first.apply([Request.insert("a", 5)])
    second.apply([Request.insert("b", 7)])
    assert second.stats()["volume"] == 12
    first.close()
    # The session survives the first disconnect (refcounted), so the
    # second connection still sees — and can extend — the shared state.
    assert second.stats()["volume"] == 12
    second.apply([Request.delete("a")])
    second.close()
    results = handle.stop()
    assert [r["requests"] for r in results] == [3]


# ------------------------------------------------------- the load harness
def test_run_load_applies_everything_and_leaves_replayable_traces(
    tmp_path, server
):
    handle = server(label="load")
    report = run_load(
        handle.host, handle.port, clients=3, requests=600, batch=100, window=3, seed=2
    )
    assert report.applied == report.sent == 3 * 600
    assert report.errors == 0
    assert report.requests_per_second > 0
    document = report.to_dict()
    json.dumps(document, allow_nan=False)
    assert document["clients"] == 3
    handle.stop()
    # Each client's recorded session replays offline to its own workload.
    for i in range(3):
        replayed = run_trace(
            FirstFitAllocator(), load_trace(tmp_path / f"load-load-{i}.v3")
        )
        assert replayed.requests == 600


# -------------------------------------------------------- snapshot / restore
def test_snapshot_restore_matches_live_state(tmp_path, server):
    handle = server(label="snap")
    trace = list(churn_trace(600, UniformSizes(1, 32), target_live=60, seed=21))
    with ServeClient(handle.host, handle.port, tenant="s") as client:
        client.apply(trace[:300])
        described = client.snapshot()
        assert described["requests_applied"] == 300
        client.apply(trace[300:])
        live = client.stats()
    [result] = handle.stop()

    session, replayed = restore_session(
        tmp_path / "snap-s.snap", tmp_path / "snap-s.v3"
    )
    assert replayed == 300  # the tail beyond the snapshot watermark
    assert session.requests_applied == 600
    assert session.allocator.footprint == result["stats"]["footprint"]
    assert session.allocator.volume == live["volume"]
    # And the restored state equals a from-scratch replay of the trace.
    offline = FirstFitAllocator()
    offline.run(load_trace(tmp_path / "snap-s.v3"))
    assert layout(session.allocator) == layout(offline)


# ------------------------------------------------------------------- chaos
def _spawn_server(tmp_path, label, env_extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join([SRC] + env.get("PYTHONPATH", "").split(os.pathsep))
    env.update(env_extra or {})
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--trace-dir",
            str(tmp_path),
            "--label",
            label,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    line = process.stdout.readline().strip()
    assert line.startswith("serving on "), f"unexpected readiness line {line!r}"
    host, _, port = line[len("serving on ") :].rpartition(":")
    return process, host, int(port)


def test_crash_mid_session_restores_from_snapshot_plus_trace_tail(tmp_path):
    """ISSUE 10's chaos case: kill the server mid-session via an injected
    crash at ``serve.batch.apply``; restore must converge to the acked
    prefix exactly."""
    plan_path = tmp_path / "plan.json"
    FaultPlan(
        rules=[FaultRule(site="serve.batch.apply", action="crash", after=3)],
        seed=0,
    ).to_json(plan_path)
    process, host, port = _spawn_server(
        tmp_path, "chaos", env_extra={"REPRO_FAULTS": str(plan_path)}
    )
    trace = list(churn_trace(500, UniformSizes(1, 32), target_live=40, seed=33))
    chunks = [trace[i : i + 100] for i in range(0, 500, 100)]
    acked = 0
    try:
        client = ServeClient(host, port, tenant="c")
        # Drain each batch so batches map 1:1 onto serve.batch.apply hits.
        for index, chunk in enumerate(chunks):
            ack = client.apply(chunk)
            assert ack["ok"]
            acked += ack["applied"]
            if index == 1:
                snap = client.snapshot()
                assert snap["requests_applied"] == 200
        raise AssertionError("server should have crashed before draining all batches")
    except (ServeClientError, ProtocolError, OSError):
        pass
    assert process.wait(timeout=30) == CRASH_EXIT_CODE
    assert acked == 300  # three applies survived, the fourth crashed

    # The trailer-less trace still yields every acked request...
    tail = read_trace_tail(tmp_path / "chaos-c.v3")
    assert not tail.complete
    assert len(tail.requests) == 300
    # ...and snapshot + tail restore to exactly the acked state.
    session, replayed = restore_session(
        tmp_path / "chaos-c.snap", tmp_path / "chaos-c.v3"
    )
    assert replayed == 100
    assert session.requests_applied == 300
    offline = FirstFitAllocator()
    offline.run(trace[:300])
    assert session.allocator.footprint == offline.footprint
    assert session.allocator.volume == offline.volume
    # Names were stringified over the wire; compare layouts stringified
    # (re-sorted: string order differs from the integer order).
    assert layout(session.allocator) == sorted(
        (str(name), start, length) for name, start, length in layout(offline)
    )


# --------------------------------------------------------------------- CLI
def test_cli_serve_and_load_end_to_end(tmp_path, capsys):
    process, host, port = _spawn_server(tmp_path, "cli")
    try:
        assert (
            main(
                [
                    "load",
                    f"{host}:{port}",
                    "--clients",
                    "2",
                    "--requests",
                    "400",
                    "--batch",
                    "100",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2 client(s): 800/800 request(s) applied" in out
        assert (
            main(["load", f"{host}:{port}", "--clients", "1", "--requests", "100", "--json"])
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["applied"] == 100 and document["errors"] == 0
    finally:
        process.send_signal(signal.SIGTERM)
        stdout, stderr = process.communicate(timeout=30)
    assert process.returncode == 0, stderr
    # Graceful shutdown finalized every tenant trace with a trailer, and
    # the second load run (same tenant names, new sessions) landed in
    # numbered traces instead of overwriting the finished ones.
    for i in range(2):
        assert trace_info(tmp_path / f"cli-load-{i}.v3").requests == 400
    assert trace_info(tmp_path / "cli-load-0-r2.v3").requests == 100


def test_cli_load_usage_errors(capsys):
    assert main(["load", "nonsense"]) == 2
    assert "HOST:PORT" in capsys.readouterr().err
    assert main(["load", "127.0.0.1:1", "--clients", "0"]) == 2
    capsys.readouterr()


def test_cli_serve_rejects_bad_allocator_json(capsys):
    assert main(["serve", "--allocator", "{not json"]) == 2
    assert "not valid JSON" in capsys.readouterr().err
    assert main(["serve", "--max-batch", "0"]) == 2
    capsys.readouterr()
