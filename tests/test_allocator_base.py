"""Tests for the shared allocator bookkeeping (events, stats, tracing)."""

import pytest

from repro.core import CostObliviousReallocator
from repro.core.events import MoveEvent, RequestRecord
from repro.costs import LinearCost
from repro.storage.extent import Extent
from repro.workloads import Request, churn_trace


def test_request_records_expose_moves_and_footprint():
    realloc = CostObliviousReallocator(epsilon=0.5, trace=True)
    record = realloc.insert("a", 10)
    assert record.op == "insert"
    assert record.footprint_after == realloc.footprint
    assert record.volume_after == 10
    assert record.moved_volume == 0  # first placement is an allocation
    assert realloc.history[-1] is record


def test_move_event_reallocation_flag():
    placement = MoveEvent("a", 4, None, Extent(0, 4))
    relocation = MoveEvent("a", 4, Extent(0, 4), Extent(10, 4))
    assert not placement.is_reallocation
    assert relocation.is_reallocation
    record = RequestRecord(1, "insert", "a", 4, moves=(placement, relocation))
    assert record.moved_volume == 4
    assert record.move_count == 1


def test_history_only_kept_when_tracing():
    traced = CostObliviousReallocator(trace=True)
    untraced = CostObliviousReallocator(trace=False)
    for allocator in (traced, untraced):
        allocator.insert("a", 4)
        allocator.delete("a")
    assert len(traced.history) == 2
    assert untraced.history == []


def test_stats_allocation_histogram_counts_every_insert():
    realloc = CostObliviousReallocator()
    realloc.insert("a", 4)
    realloc.insert("b", 4)
    realloc.insert("c", 9)
    realloc.delete("a")
    stats = realloc.stats
    assert stats.allocated_sizes == {4: 2, 9: 1}
    assert stats.total_allocated_volume == 17
    assert stats.inserts == 3 and stats.deletes == 1 and stats.requests == 4
    assert stats.allocation_cost(LinearCost()) == 17


def test_request_tracking_records_per_request_moved_volume():
    realloc = CostObliviousReallocator(epsilon=0.5)
    realloc.enable_request_tracking()
    realloc.run(churn_trace(300, seed=1, target_live=40))
    volumes = realloc.stats.request_moved_volumes
    assert volumes is not None and len(volumes) == 300
    assert max(volumes) == realloc.stats.max_request_moved_volume


def test_run_accepts_request_objects():
    realloc = CostObliviousReallocator()
    realloc.run([Request.insert("x", 5), Request.insert("y", 3), Request.delete("x")])
    assert realloc.volume == 3
    assert "y" in realloc and "x" not in realloc
    assert realloc.size_of("y") == 3
    assert realloc.address_of("y") >= 0


def test_describe_and_repr_do_not_crash():
    realloc = CostObliviousReallocator(epsilon=0.25)
    assert "0.25" in realloc.describe()
    assert "objects=0" in repr(realloc)
