"""Integration tests: every registered experiment runs and supports its claim.

These are the tests that tie the library back to the paper: each experiment's
quick run must reproduce the qualitative statement of the theorem/lemma/figure
it corresponds to (see EXPERIMENTS.md for the mapping).
"""

import pytest

from repro.harness import EXPERIMENTS, get_experiment, run_experiment


@pytest.fixture(scope="module")
def results():
    """Run every experiment once (quick mode) and cache the results."""
    return {key: run_experiment(key, quick=True) for key in EXPERIMENTS}


def test_registry_lookup():
    assert get_experiment("e1").experiment_id == "E1"
    with pytest.raises(KeyError):
        get_experiment("E99")


def test_every_experiment_produces_a_table(results):
    for key, result in results.items():
        assert result.rows, f"{key} produced no rows"
        assert result.headers
        text = result.to_text()
        assert key in text


def test_e1_footprint_stays_within_every_bound(results):
    result = results["E1"]
    for row in result.rows:
        _variant, epsilon, bound, footprint_ratio, reserved_ratio, _moves = row
        assert reserved_ratio <= bound + 1e-9
        assert footprint_ratio <= bound + 1e-9
        assert reserved_ratio >= 1.0


def test_e1_smaller_epsilon_costs_more_moves(results):
    result = results["E1"]
    amortized = [row for row in result.rows if row[0].startswith("amortized")]
    moves = [row[5] for row in sorted(amortized, key=lambda r: -r[1])]
    assert moves == sorted(moves), "moves per insert should grow as epsilon shrinks"


def test_e2_cost_ratios_bounded_for_every_cost_function(results):
    result = results["E2"]
    for row in result.rows:
        for ratio in row[1:]:
            assert 0 < ratio < 60


def test_e3_only_the_cost_oblivious_reallocator_is_good_everywhere(results):
    summary = results["E3"].data["summary"]
    oblivious = next(v for k, v in summary.items() if k.startswith("cost-oblivious"))
    first_fit = summary["first-fit"]
    logging = summary["logging-compact"]
    gap = summary["size-class-gap"]
    # Non-moving allocators fragment; the reallocator does not.
    assert first_fit["fragmentation_footprint"] > 5 * oblivious["fragmentation_footprint"]
    assert oblivious["churn_footprint"] <= 1.25 + 1e-9
    # Logging keeps a 2x footprint but needs huge single-request bursts.
    assert logging["worst_single_request_moves"] > 10 * gap["worst_single_request_moves"]
    # The size-class-gap scheme pays a growing linear-cost ratio on the flood.
    assert gap["flood_linear_ratio"] > 2.0
    # The cost-oblivious reallocator stays bounded in every column.
    assert oblivious["churn_linear_ratio"] < 60
    assert oblivious["churn_constant_ratio"] < 60


def test_e4_defragmentation_respects_space_bound(results):
    for outcome in results["E4"].data["outcomes"]:
        assert outcome["peak"] <= outcome["bound"] + 1e-9
        assert outcome["min_gap"] >= 0
        names = sorted(outcome["sorted"], key=lambda n: int(n.split("-")[1]))
        addresses = [outcome["sorted"][n] for n in names]
        assert addresses == sorted(addresses)


def test_e5_checkpoints_track_one_over_epsilon(results):
    rows = results["E5"].rows
    means = {row[0]: row[2] for row in rows}
    # More precision (smaller epsilon) => at least as many checkpoints per flush.
    assert means[0.0625] >= means[0.25] >= means[0.5] * 0.8
    for row in rows:
        assert row[3] < 200  # max checkpoints per request stays far from O(n)


def test_e6_transient_footprint_within_bound(results):
    for row in results["E6"].rows:
        assert row[-1] is True


def test_e7_deamortized_bound_respected(results):
    data = results["E7"].data["deamortized (Sec. 3.3)"]
    assert data["violations"] == 0


def test_e8_lower_bound_is_matched(results):
    result = results["E8"]
    for (delta, _label), worst in result.data.items():
        # Some request costs at least f(Delta) under the linear cost (where
        # f(Delta) = Delta), as Lemma 3.7 requires.
        assert worst["linear"] >= delta


def test_e9_scaling_rows_cover_every_length(results):
    lengths = {row[0] for row in results["E9"].rows}
    assert len(lengths) == 3


def test_f1_reallocation_closes_holes(results):
    rows = {row[0]: row for row in results["F1"].rows}
    oblivious = next(v for k, v in rows.items() if k.startswith("cost-oblivious"))
    first_fit = rows["first-fit"]
    assert oblivious[3] < 1.3
    assert first_fit[3] > 3


def test_f2_layout_lists_regions_in_class_order(results):
    classes = [row[0] for row in results["F2"].rows]
    assert classes == sorted(classes)
    assert "class" in results["F2"].notes[0]


def test_f3_flush_walkthrough_shows_moves_and_empty_buffers(results):
    result = results["F3"]
    reasons = {row[5] for row in result.rows}
    assert any(reason.startswith("flush:") for reason in reasons)
    assert "Invariant 2.4" in result.notes[-1]
