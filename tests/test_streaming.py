"""Streaming replay equivalence: a trace replayed from disk one request at a
time must be indistinguishable — metric for metric, table row for table row —
from the same trace replayed out of memory.

The battery replays a fixed-seed churn trace through ``run_trace`` and
through the observers behind the E1/E3/E7/E8 experiment tables, once with
the in-memory :class:`Trace` and once with a :class:`TraceFileSource` over
the compressed binary v2 file, and requires byte-identical results.
"""

from dataclasses import asdict

import pytest

from repro.allocators import FirstFitAllocator, LoggingCompactingReallocator
from repro.core import CostObliviousReallocator, DeamortizedReallocator
from repro.costs import ConstantCost, LinearCost, RotatingDiskCost
from repro.engine import SimulationEngine
from repro.harness.runners import (
    _ReservedSpaceObserver,
    _WorstCaseBoundObserver,
    _WorstRequestCostObserver,
    _WorstRequestObserver,
)
from repro.metrics import run_trace
from repro.workloads import TraceFileSource, UniformSizes, churn_trace, iter_trace, save_trace

COSTS = (LinearCost(), ConstantCost(), RotatingDiskCost())


@pytest.fixture(scope="module")
def trace_and_source(tmp_path_factory):
    trace = churn_trace(3000, UniformSizes(1, 64), target_live=150, seed=11)
    path = tmp_path_factory.mktemp("stream") / "churn.v2z"
    save_trace(trace, path, version=2, compress=True)
    return trace, TraceFileSource(path)


ALLOCATOR_FACTORIES = [
    ("cost-oblivious", lambda: CostObliviousReallocator(epsilon=0.25)),
    ("deamortized", lambda: DeamortizedReallocator(epsilon=0.25)),
    ("first-fit", FirstFitAllocator),
    ("logging-compacting", LoggingCompactingReallocator),
]


def metrics_dict(metrics):
    out = asdict(metrics)
    out.pop("elapsed_seconds")
    return out


@pytest.mark.parametrize(
    "name,factory", ALLOCATOR_FACTORIES, ids=[n for n, _ in ALLOCATOR_FACTORIES]
)
def test_streaming_run_trace_metrics_identical(trace_and_source, name, factory):
    trace, source = trace_and_source
    in_memory = run_trace(factory(), trace, cost_functions=COSTS, sample_every=50)
    streamed = run_trace(factory(), source, cost_functions=COSTS, sample_every=50)
    assert metrics_dict(in_memory) == metrics_dict(streamed)


def test_e1_reserved_space_table_identical(trace_and_source):
    trace, source = trace_and_source

    def rows(replayable):
        out = []
        for epsilon in (0.5, 0.25):
            allocator = CostObliviousReallocator(epsilon=epsilon)
            watcher = _ReservedSpaceObserver()
            run_trace(allocator, replayable, observers=[watcher])
            out.append(
                (
                    epsilon,
                    watcher.footprint_ratio,
                    watcher.reserved_ratio,
                    allocator.stats.amortized_moves_per_insert,
                )
            )
        return out

    assert repr(rows(trace)) == repr(rows(source))


def test_e3_worst_request_table_identical(trace_and_source):
    trace, source = trace_and_source

    def rows(replayable):
        out = []
        for _, factory in ALLOCATOR_FACTORIES:
            allocator = factory()
            watcher = _WorstRequestObserver()
            metrics = run_trace(allocator, replayable, observers=[watcher], cost_functions=COSTS)
            out.append(
                (
                    allocator.describe(),
                    watcher.worst_moves,
                    round(metrics.max_footprint_ratio, 6),
                    {k: round(v, 6) for k, v in metrics.cost_ratios.items()},
                )
            )
        return out

    assert repr(rows(trace)) == repr(rows(source))


def test_e7_worst_case_bound_table_identical(trace_and_source):
    trace, source = trace_and_source

    def rows(replayable):
        out = []
        for cls in (CostObliviousReallocator, DeamortizedReallocator):
            allocator = cls(epsilon=0.25)
            watcher = _WorstCaseBoundObserver(0.25)
            run_trace(allocator, replayable, observers=[watcher])
            out.append(
                (
                    cls.__name__,
                    watcher.worst_moved,
                    watcher.worst_bound,
                    watcher.violations,
                    allocator.stats.amortized_moved_volume_per_request,
                )
            )
        return out

    assert repr(rows(trace)) == repr(rows(source))


def test_e8_worst_request_cost_table_identical(trace_and_source):
    trace, source = trace_and_source

    def rows(replayable):
        allocator = CostObliviousReallocator(epsilon=0.5)
        watcher = _WorstRequestCostObserver(COSTS)
        run_trace(allocator, replayable, observers=[watcher], finish_pending=False)
        return (watcher.worst_moved, watcher.worst_moves, watcher.worst_cost)

    assert repr(rows(trace)) == repr(rows(source))


def test_engine_accepts_bare_request_iterator(trace_and_source):
    """A one-shot generator (no label, no len) replays fine; the request
    count comes from what the allocator served."""
    trace, source = trace_and_source
    run = SimulationEngine(FirstFitAllocator()).run(iter_trace(source.path))
    assert run.requests == len(trace)
    assert run.label == "trace"


def test_engine_run_label_comes_from_source(trace_and_source):
    trace, source = trace_and_source
    run = SimulationEngine(FirstFitAllocator()).run(source)
    assert run.label == trace.label
    assert run.requests == len(trace)


def test_streaming_replay_serves_every_request_without_a_trace(trace_and_source):
    """The allocator end state after a streaming replay matches the
    in-memory replay exactly."""
    trace, source = trace_and_source
    streamed, materialized = FirstFitAllocator(), FirstFitAllocator()
    SimulationEngine(streamed).run(source)
    SimulationEngine(materialized).run(trace)
    assert streamed.stats.requests == materialized.stats.requests == len(trace)
    assert streamed.footprint == materialized.footprint
    assert streamed.volume == materialized.volume
    assert streamed.stats.max_footprint_ratio == materialized.stats.max_footprint_ratio
