"""Tests for the Theorem 2.7 cost-oblivious defragmenter."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import Defragmenter
from repro.costs import ConstantCost, LinearCost


def _fragmented_layout(sizes, epsilon, seed=0):
    """Scatter the objects over (1+eps)V space with random holes."""
    rng = random.Random(seed)
    volume = sum(size for _, size in sizes)
    slack = int(epsilon * volume)
    order = list(sizes)
    rng.shuffle(order)
    allocation = {}
    cursor = 0
    for name, size in order:
        hole = rng.randint(0, max(0, slack // max(1, len(sizes) // 3)))
        hole = min(hole, slack)
        cursor += hole
        slack -= hole
        allocation[name] = cursor
        cursor += size
    return allocation


def test_objects_end_up_sorted_and_packed():
    objects = [(f"o{i}", (i * 7) % 50 + 1) for i in range(60)]
    allocation = _fragmented_layout(objects, epsilon=0.5, seed=1)
    defrag = Defragmenter(epsilon=0.5, key=lambda name: int(name[1:]))
    result = defrag.defragment(objects, allocation)
    ordered = sorted(result.layout, key=lambda name: int(name[1:]))
    addresses = [result.layout[name] for name in ordered]
    assert addresses == sorted(addresses)
    # Packed: consecutive objects touch exactly.
    sizes = dict(objects)
    for left, right in zip(ordered, ordered[1:]):
        assert result.layout[left] + sizes[left] == result.layout[right]


def test_space_never_exceeds_bound():
    objects = [(f"o{i}", (i % 40) + 1) for i in range(120)]
    allocation = _fragmented_layout(objects, epsilon=0.25, seed=2)
    result = Defragmenter(epsilon=0.25, key=lambda n: n).defragment(objects, allocation)
    volume = sum(size for _, size in objects)
    delta = max(size for _, size in objects)
    assert result.peak_footprint <= (1 + 0.25) * volume + delta + 1e-9
    # The reallocator prefix never caught up with the remaining suffix.
    assert result.min_prefix_suffix_gap >= 0


def test_cost_ratio_is_bounded_under_multiple_cost_functions():
    objects = [(f"o{i}", (i % 16) + 1) for i in range(100)]
    allocation = _fragmented_layout(objects, epsilon=0.5, seed=3)
    result = Defragmenter(epsilon=0.5, key=lambda n: n).defragment(objects, allocation)
    assert 0 < result.cost_ratio(LinearCost()) < 80
    assert 0 < result.cost_ratio(ConstantCost()) < 80
    assert result.moves_per_object < 80


def test_rejects_bad_inputs():
    defrag = Defragmenter(epsilon=0.5)
    with pytest.raises(ValueError):
        Defragmenter(epsilon=0.9)
    with pytest.raises(ValueError):
        defrag.defragment([("a", 5), ("a", 6)], {"a": 0})
    with pytest.raises(ValueError):
        defrag.defragment([("a", 5)], {})
    # Initial layout too spread out for the promised slack.
    with pytest.raises(ValueError):
        defrag.defragment([("a", 5), ("b", 5)], {"a": 0, "b": 100})


def test_empty_input_is_a_noop():
    result = Defragmenter(epsilon=0.5).defragment([], {})
    assert result.layout == {}
    assert result.total_moves == 0


def test_single_object_moves_to_the_suffix():
    result = Defragmenter(epsilon=0.5).defragment([("only", 10)], {"only": 0})
    assert list(result.layout) == ["only"]
    assert result.peak_footprint <= 15 + 10  # (1+eps)V + Delta


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    sizes=st.lists(st.integers(1, 32), min_size=1, max_size=40),
    epsilon=st.sampled_from([0.5, 0.25]),
)
def test_property_sortedness_and_space(sizes, epsilon):
    objects = [(f"o{i:03d}", size) for i, size in enumerate(sizes)]
    allocation = _fragmented_layout(objects, epsilon=epsilon, seed=len(sizes))
    result = Defragmenter(epsilon=epsilon, key=lambda n: n).defragment(objects, allocation)
    volume = sum(sizes)
    delta = max(sizes)
    assert result.peak_footprint <= (1 + epsilon) * volume + delta + 1e-9
    ordered = sorted(result.layout)
    addresses = [result.layout[name] for name in ordered]
    assert addresses == sorted(addresses)
    assert set(result.layout) == {name for name, _ in objects}
